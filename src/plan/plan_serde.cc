#include "plan/plan_serde.h"

#include <utility>

#include "expr/function_registry.h"

namespace presto {

namespace {

// Bump when the encoding changes shape; workers reject unknown versions so
// a mixed-version cluster fails loudly instead of misreading plans.
constexpr int64_t kWireVersion = 1;

Json IntVectorToJson(const std::vector<int>& values) {
  Json out = Json::Array();
  for (int v : values) out.Append(Json::Int(v));
  return out;
}

Result<std::vector<int>> IntVectorFromJson(const Json& json) {
  std::vector<int> out;
  for (const Json& item : json.items()) {
    if (!item.is_int()) return Status::InvalidArgument("expected int array");
    out.push_back(static_cast<int>(item.int_value()));
  }
  return out;
}

Result<TypeKind> TypeFromJsonString(const std::string& name) {
  auto type = TypeFromString(name);
  if (!type.has_value() && name == "UNKNOWN") return TypeKind::kUnknown;
  if (!type.has_value()) {
    return Status::InvalidArgument("unknown type in plan json: " + name);
  }
  return *type;
}

Json SortKeysToJson(const std::vector<SortKey>& keys) {
  Json out = Json::Array();
  for (const SortKey& key : keys) {
    Json k = Json::Object();
    k.Set("col", Json::Int(key.column)).Set("asc", Json::Bool(key.ascending));
    out.Append(std::move(k));
  }
  return out;
}

Result<std::vector<SortKey>> SortKeysFromJson(const Json& json) {
  std::vector<SortKey> out;
  for (const Json& item : json.items()) {
    PRESTO_ASSIGN_OR_RETURN(int64_t col, item.GetInt("col"));
    PRESTO_ASSIGN_OR_RETURN(bool asc, item.GetBool("asc"));
    out.push_back(SortKey{static_cast<int>(col), asc});
  }
  return out;
}

Json AggregateSignatureToJson(const AggregateSignature& sig) {
  Json out = Json::Object();
  out.Set("kind", Json::Int(static_cast<int64_t>(sig.kind)))
      .Set("arg", Json::Str(TypeToString(sig.arg_type)))
      .Set("result", Json::Str(TypeToString(sig.result_type)))
      .Set("inter", Json::Str(TypeToString(sig.intermediate_type)));
  return out;
}

Result<AggregateSignature> AggregateSignatureFromJson(const Json& json) {
  PRESTO_ASSIGN_OR_RETURN(int64_t kind, json.GetInt("kind"));
  PRESTO_ASSIGN_OR_RETURN(std::string arg, json.GetString("arg"));
  PRESTO_ASSIGN_OR_RETURN(std::string result, json.GetString("result"));
  PRESTO_ASSIGN_OR_RETURN(std::string inter, json.GetString("inter"));
  if (kind < 0 || kind > static_cast<int64_t>(AggKind::kVariance)) {
    return Status::InvalidArgument("bad aggregate kind in plan json");
  }
  AggregateSignature sig;
  sig.kind = static_cast<AggKind>(kind);
  PRESTO_ASSIGN_OR_RETURN(sig.arg_type, TypeFromJsonString(arg));
  PRESTO_ASSIGN_OR_RETURN(sig.result_type, TypeFromJsonString(result));
  PRESTO_ASSIGN_OR_RETURN(sig.intermediate_type, TypeFromJsonString(inter));
  return sig;
}

Json PredicatesToJson(const std::vector<ColumnPredicate>& predicates) {
  Json out = Json::Array();
  for (const ColumnPredicate& pred : predicates) {
    Json p = Json::Object();
    Json values = Json::Array();
    for (const Value& v : pred.values) values.Append(ValueToJson(v));
    p.Set("col", Json::Str(pred.column))
        .Set("op", Json::Int(static_cast<int64_t>(pred.op)))
        .Set("vals", std::move(values));
    out.Append(std::move(p));
  }
  return out;
}

Result<std::vector<ColumnPredicate>> PredicatesFromJson(const Json& json) {
  std::vector<ColumnPredicate> out;
  for (const Json& item : json.items()) {
    ColumnPredicate pred;
    PRESTO_ASSIGN_OR_RETURN(pred.column, item.GetString("col"));
    PRESTO_ASSIGN_OR_RETURN(int64_t op, item.GetInt("op"));
    if (op < 0 || op > static_cast<int64_t>(ColumnPredicate::Op::kIn)) {
      return Status::InvalidArgument("bad predicate op in plan json");
    }
    pred.op = static_cast<ColumnPredicate::Op>(op);
    PRESTO_ASSIGN_OR_RETURN(const Json* values, item.GetArray("vals"));
    for (const Json& v : values->items()) {
      PRESTO_ASSIGN_OR_RETURN(Value value, ValueFromJson(v));
      pred.values.push_back(std::move(value));
    }
    out.push_back(std::move(pred));
  }
  return out;
}

Json NodeToJson(const PlanNode& node);

Result<PlanNodePtr> NodeFromJson(const Json& json, const Catalog& catalog);

Json NodeToJson(const PlanNode& node) {
  Json out = Json::Object();
  out.Set("kind", Json::Int(static_cast<int64_t>(node.kind())))
      .Set("id", Json::Int(node.id()))
      .Set("output", SchemaToJson(node.output()));
  Json children = Json::Array();
  for (const PlanNodePtr& child : node.children()) {
    children.Append(NodeToJson(*child));
  }
  out.Set("children", std::move(children));

  switch (node.kind()) {
    case PlanNodeKind::kTableScan: {
      const auto& scan = static_cast<const TableScanNode&>(node);
      out.Set("connector", Json::Str(scan.connector()))
          .Set("table", Json::Str(scan.table()->name()))
          .Set("columns", IntVectorToJson(scan.columns()))
          .Set("predicates", PredicatesToJson(scan.predicates()))
          .Set("layout", Json::Str(scan.layout_id()))
          .Set("rows", Json::Int(scan.stats().row_count));
      break;
    }
    case PlanNodeKind::kFilter: {
      const auto& filter = static_cast<const FilterNode&>(node);
      out.Set("predicate", ExprToJson(*filter.predicate()));
      break;
    }
    case PlanNodeKind::kProject: {
      const auto& project = static_cast<const ProjectNode&>(node);
      Json exprs = Json::Array();
      for (const ExprPtr& e : project.expressions()) {
        exprs.Append(ExprToJson(*e));
      }
      out.Set("exprs", std::move(exprs));
      break;
    }
    case PlanNodeKind::kAggregate: {
      const auto& agg = static_cast<const AggregateNode&>(node);
      Json calls = Json::Array();
      for (const AggregateCall& call : agg.aggregates()) {
        Json c = Json::Object();
        c.Set("sig", AggregateSignatureToJson(call.signature))
            .Set("arg", Json::Int(call.arg_column))
            .Set("name", Json::Str(call.output_name));
        calls.Append(std::move(c));
      }
      out.Set("step", Json::Int(static_cast<int64_t>(agg.step())))
          .Set("groupKeys", IntVectorToJson(agg.group_keys()))
          .Set("aggregates", std::move(calls));
      break;
    }
    case PlanNodeKind::kJoin: {
      const auto& join = static_cast<const JoinNode&>(node);
      out.Set("joinType", Json::Int(static_cast<int64_t>(join.join_type())))
          .Set("leftKeys", IntVectorToJson(join.left_keys()))
          .Set("rightKeys", IntVectorToJson(join.right_keys()))
          .Set("distribution",
               Json::Int(static_cast<int64_t>(join.distribution())));
      if (join.residual_filter() != nullptr) {
        out.Set("residual", ExprToJson(*join.residual_filter()));
      }
      break;
    }
    case PlanNodeKind::kSort: {
      const auto& sort = static_cast<const SortNode&>(node);
      out.Set("keys", SortKeysToJson(sort.keys()));
      break;
    }
    case PlanNodeKind::kTopN: {
      const auto& topn = static_cast<const TopNNode&>(node);
      out.Set("keys", SortKeysToJson(topn.keys()))
          .Set("n", Json::Int(topn.n()))
          .Set("partial", Json::Bool(topn.partial()));
      break;
    }
    case PlanNodeKind::kLimit: {
      const auto& limit = static_cast<const LimitNode&>(node);
      out.Set("n", Json::Int(limit.n()))
          .Set("partial", Json::Bool(limit.partial()));
      break;
    }
    case PlanNodeKind::kWindow: {
      const auto& window = static_cast<const WindowNode&>(node);
      Json functions = Json::Array();
      for (const WindowFunction& fn : window.functions()) {
        Json f = Json::Object();
        f.Set("kind", Json::Int(static_cast<int64_t>(fn.kind)))
            .Set("sig", AggregateSignatureToJson(fn.signature))
            .Set("arg", Json::Int(fn.arg_column))
            .Set("name", Json::Str(fn.output_name))
            .Set("result", Json::Str(TypeToString(fn.result_type)));
        functions.Append(std::move(f));
      }
      out.Set("partitionKeys", IntVectorToJson(window.partition_keys()))
          .Set("orderKeys", SortKeysToJson(window.order_keys()))
          .Set("functions", std::move(functions));
      break;
    }
    case PlanNodeKind::kValues: {
      const auto& values = static_cast<const ValuesNode&>(node);
      Json rows = Json::Array();
      for (const auto& row : values.rows()) {
        Json r = Json::Array();
        for (const Value& v : row) r.Append(ValueToJson(v));
        rows.Append(std::move(r));
      }
      out.Set("rows", std::move(rows));
      break;
    }
    case PlanNodeKind::kUnionAll:
      break;
    case PlanNodeKind::kOutput: {
      const auto& output = static_cast<const OutputNode&>(node);
      Json names = Json::Array();
      for (const std::string& name : output.column_names()) {
        names.Append(Json::Str(name));
      }
      out.Set("names", std::move(names));
      break;
    }
    case PlanNodeKind::kTableWrite: {
      const auto& write = static_cast<const TableWriteNode&>(node);
      out.Set("connector", Json::Str(write.connector()))
          .Set("table", Json::Str(write.table()->name()));
      break;
    }
    case PlanNodeKind::kExchange: {
      const auto& exchange = static_cast<const ExchangeNode&>(node);
      out.Set("exchangeKind",
              Json::Int(static_cast<int64_t>(exchange.exchange_kind())))
          .Set("scope", Json::Int(static_cast<int64_t>(exchange.scope())))
          .Set("partitionKeys", IntVectorToJson(exchange.partition_keys()));
      break;
    }
    case PlanNodeKind::kRemoteSource: {
      const auto& remote = static_cast<const RemoteSourceNode&>(node);
      out.Set("sourceFragment", Json::Int(remote.source_fragment()))
          .Set("exchangeKind",
               Json::Int(static_cast<int64_t>(remote.exchange_kind())));
      break;
    }
  }
  return out;
}

Result<PlanNodePtr> NodeFromJson(const Json& json, const Catalog& catalog) {
  PRESTO_ASSIGN_OR_RETURN(int64_t kind_int, json.GetInt("kind"));
  if (kind_int < 0 ||
      kind_int > static_cast<int64_t>(PlanNodeKind::kRemoteSource)) {
    return Status::InvalidArgument("bad plan node kind in plan json");
  }
  auto kind = static_cast<PlanNodeKind>(kind_int);
  PRESTO_ASSIGN_OR_RETURN(int64_t id64, json.GetInt("id"));
  int id = static_cast<int>(id64);
  PRESTO_ASSIGN_OR_RETURN(const Json* output_json, json.GetArray("output"));
  PRESTO_ASSIGN_OR_RETURN(RowSchema output, SchemaFromJson(*output_json));
  PRESTO_ASSIGN_OR_RETURN(const Json* children_json,
                          json.GetArray("children"));
  std::vector<PlanNodePtr> children;
  for (const Json& child : children_json->items()) {
    PRESTO_ASSIGN_OR_RETURN(PlanNodePtr node, NodeFromJson(child, catalog));
    children.push_back(std::move(node));
  }
  auto require_children = [&](size_t n) -> Status {
    if (children.size() != n) {
      return Status::InvalidArgument("plan json: node kind " +
                                     std::to_string(kind_int) + " expects " +
                                     std::to_string(n) + " children");
    }
    return Status::OK();
  };

  switch (kind) {
    case PlanNodeKind::kTableScan: {
      PRESTO_RETURN_IF_ERROR(require_children(0));
      PRESTO_ASSIGN_OR_RETURN(std::string connector_name,
                              json.GetString("connector"));
      PRESTO_ASSIGN_OR_RETURN(std::string table_name, json.GetString("table"));
      PRESTO_ASSIGN_OR_RETURN(Connector * connector,
                              catalog.Get(connector_name));
      PRESTO_ASSIGN_OR_RETURN(TableHandlePtr table,
                              connector->metadata().GetTable(table_name));
      PRESTO_ASSIGN_OR_RETURN(const Json* columns_json,
                              json.GetArray("columns"));
      PRESTO_ASSIGN_OR_RETURN(std::vector<int> columns,
                              IntVectorFromJson(*columns_json));
      PRESTO_ASSIGN_OR_RETURN(const Json* preds_json,
                              json.GetArray("predicates"));
      PRESTO_ASSIGN_OR_RETURN(std::vector<ColumnPredicate> predicates,
                              PredicatesFromJson(*preds_json));
      PRESTO_ASSIGN_OR_RETURN(std::string layout, json.GetString("layout"));
      PRESTO_ASSIGN_OR_RETURN(int64_t rows, json.GetInt("rows"));
      TableStats stats;
      stats.row_count = rows;
      return PlanNodePtr(std::make_shared<TableScanNode>(
          id, std::move(connector_name), std::move(table), std::move(columns),
          std::move(output), std::move(predicates), std::move(layout),
          std::move(stats)));
    }
    case PlanNodeKind::kFilter: {
      PRESTO_RETURN_IF_ERROR(require_children(1));
      PRESTO_ASSIGN_OR_RETURN(const Json* pred_json,
                              json.GetObject("predicate"));
      PRESTO_ASSIGN_OR_RETURN(ExprPtr predicate, ExprFromJson(*pred_json));
      return PlanNodePtr(std::make_shared<FilterNode>(id, std::move(predicate),
                                                      children[0]));
    }
    case PlanNodeKind::kProject: {
      PRESTO_RETURN_IF_ERROR(require_children(1));
      PRESTO_ASSIGN_OR_RETURN(const Json* exprs_json, json.GetArray("exprs"));
      std::vector<ExprPtr> exprs;
      for (const Json& e : exprs_json->items()) {
        PRESTO_ASSIGN_OR_RETURN(ExprPtr expr, ExprFromJson(e));
        exprs.push_back(std::move(expr));
      }
      return PlanNodePtr(std::make_shared<ProjectNode>(
          id, std::move(exprs), std::move(output), children[0]));
    }
    case PlanNodeKind::kAggregate: {
      PRESTO_RETURN_IF_ERROR(require_children(1));
      PRESTO_ASSIGN_OR_RETURN(int64_t step, json.GetInt("step"));
      if (step < 0 || step > static_cast<int64_t>(AggregationStep::kFinal)) {
        return Status::InvalidArgument("bad aggregation step in plan json");
      }
      PRESTO_ASSIGN_OR_RETURN(const Json* keys_json,
                              json.GetArray("groupKeys"));
      PRESTO_ASSIGN_OR_RETURN(std::vector<int> group_keys,
                              IntVectorFromJson(*keys_json));
      PRESTO_ASSIGN_OR_RETURN(const Json* calls_json,
                              json.GetArray("aggregates"));
      std::vector<AggregateCall> calls;
      for (const Json& c : calls_json->items()) {
        AggregateCall call;
        PRESTO_ASSIGN_OR_RETURN(const Json* sig_json, c.GetObject("sig"));
        PRESTO_ASSIGN_OR_RETURN(call.signature,
                                AggregateSignatureFromJson(*sig_json));
        PRESTO_ASSIGN_OR_RETURN(int64_t arg, c.GetInt("arg"));
        call.arg_column = static_cast<int>(arg);
        PRESTO_ASSIGN_OR_RETURN(call.output_name, c.GetString("name"));
        calls.push_back(std::move(call));
      }
      return PlanNodePtr(std::make_shared<AggregateNode>(
          id, static_cast<AggregationStep>(step), std::move(group_keys),
          std::move(calls), std::move(output), children[0]));
    }
    case PlanNodeKind::kJoin: {
      PRESTO_RETURN_IF_ERROR(require_children(2));
      PRESTO_ASSIGN_OR_RETURN(int64_t join_type, json.GetInt("joinType"));
      if (join_type < 0 ||
          join_type > static_cast<int64_t>(sql::JoinType::kCross)) {
        return Status::InvalidArgument("bad join type in plan json");
      }
      PRESTO_ASSIGN_OR_RETURN(const Json* left_json, json.GetArray("leftKeys"));
      PRESTO_ASSIGN_OR_RETURN(std::vector<int> left_keys,
                              IntVectorFromJson(*left_json));
      PRESTO_ASSIGN_OR_RETURN(const Json* right_json,
                              json.GetArray("rightKeys"));
      PRESTO_ASSIGN_OR_RETURN(std::vector<int> right_keys,
                              IntVectorFromJson(*right_json));
      PRESTO_ASSIGN_OR_RETURN(int64_t distribution,
                              json.GetInt("distribution"));
      if (distribution < 0 ||
          distribution > static_cast<int64_t>(JoinDistribution::kColocated)) {
        return Status::InvalidArgument("bad join distribution in plan json");
      }
      ExprPtr residual;
      if (const Json* residual_json = json.Find("residual")) {
        PRESTO_ASSIGN_OR_RETURN(residual, ExprFromJson(*residual_json));
      }
      return PlanNodePtr(std::make_shared<JoinNode>(
          id, static_cast<sql::JoinType>(join_type), std::move(left_keys),
          std::move(right_keys), std::move(residual),
          static_cast<JoinDistribution>(distribution), std::move(output),
          children[0], children[1]));
    }
    case PlanNodeKind::kSort: {
      PRESTO_RETURN_IF_ERROR(require_children(1));
      PRESTO_ASSIGN_OR_RETURN(const Json* keys_json, json.GetArray("keys"));
      PRESTO_ASSIGN_OR_RETURN(std::vector<SortKey> keys,
                              SortKeysFromJson(*keys_json));
      return PlanNodePtr(
          std::make_shared<SortNode>(id, std::move(keys), children[0]));
    }
    case PlanNodeKind::kTopN: {
      PRESTO_RETURN_IF_ERROR(require_children(1));
      PRESTO_ASSIGN_OR_RETURN(const Json* keys_json, json.GetArray("keys"));
      PRESTO_ASSIGN_OR_RETURN(std::vector<SortKey> keys,
                              SortKeysFromJson(*keys_json));
      PRESTO_ASSIGN_OR_RETURN(int64_t n, json.GetInt("n"));
      PRESTO_ASSIGN_OR_RETURN(bool partial, json.GetBool("partial"));
      return PlanNodePtr(std::make_shared<TopNNode>(id, std::move(keys), n,
                                                    partial, children[0]));
    }
    case PlanNodeKind::kLimit: {
      PRESTO_RETURN_IF_ERROR(require_children(1));
      PRESTO_ASSIGN_OR_RETURN(int64_t n, json.GetInt("n"));
      PRESTO_ASSIGN_OR_RETURN(bool partial, json.GetBool("partial"));
      return PlanNodePtr(
          std::make_shared<LimitNode>(id, n, partial, children[0]));
    }
    case PlanNodeKind::kWindow: {
      PRESTO_RETURN_IF_ERROR(require_children(1));
      PRESTO_ASSIGN_OR_RETURN(const Json* partition_json,
                              json.GetArray("partitionKeys"));
      PRESTO_ASSIGN_OR_RETURN(std::vector<int> partition_keys,
                              IntVectorFromJson(*partition_json));
      PRESTO_ASSIGN_OR_RETURN(const Json* order_json,
                              json.GetArray("orderKeys"));
      PRESTO_ASSIGN_OR_RETURN(std::vector<SortKey> order_keys,
                              SortKeysFromJson(*order_json));
      PRESTO_ASSIGN_OR_RETURN(const Json* fns_json,
                              json.GetArray("functions"));
      std::vector<WindowFunction> functions;
      for (const Json& f : fns_json->items()) {
        WindowFunction fn;
        PRESTO_ASSIGN_OR_RETURN(int64_t fn_kind, f.GetInt("kind"));
        if (fn_kind < 0 ||
            fn_kind > static_cast<int64_t>(WindowFunction::Kind::kAggregate)) {
          return Status::InvalidArgument("bad window function in plan json");
        }
        fn.kind = static_cast<WindowFunction::Kind>(fn_kind);
        PRESTO_ASSIGN_OR_RETURN(const Json* sig_json, f.GetObject("sig"));
        PRESTO_ASSIGN_OR_RETURN(fn.signature,
                                AggregateSignatureFromJson(*sig_json));
        PRESTO_ASSIGN_OR_RETURN(int64_t arg, f.GetInt("arg"));
        fn.arg_column = static_cast<int>(arg);
        PRESTO_ASSIGN_OR_RETURN(fn.output_name, f.GetString("name"));
        PRESTO_ASSIGN_OR_RETURN(std::string result, f.GetString("result"));
        PRESTO_ASSIGN_OR_RETURN(fn.result_type, TypeFromJsonString(result));
        functions.push_back(std::move(fn));
      }
      return PlanNodePtr(std::make_shared<WindowNode>(
          id, std::move(partition_keys), std::move(order_keys),
          std::move(functions), std::move(output), children[0]));
    }
    case PlanNodeKind::kValues: {
      PRESTO_RETURN_IF_ERROR(require_children(0));
      PRESTO_ASSIGN_OR_RETURN(const Json* rows_json, json.GetArray("rows"));
      std::vector<std::vector<Value>> rows;
      for (const Json& r : rows_json->items()) {
        std::vector<Value> row;
        for (const Json& v : r.items()) {
          PRESTO_ASSIGN_OR_RETURN(Value value, ValueFromJson(v));
          row.push_back(std::move(value));
        }
        rows.push_back(std::move(row));
      }
      return PlanNodePtr(std::make_shared<ValuesNode>(id, std::move(output),
                                                      std::move(rows)));
    }
    case PlanNodeKind::kUnionAll:
      return PlanNodePtr(std::make_shared<UnionAllNode>(id, std::move(output),
                                                        std::move(children)));
    case PlanNodeKind::kOutput: {
      PRESTO_RETURN_IF_ERROR(require_children(1));
      PRESTO_ASSIGN_OR_RETURN(const Json* names_json, json.GetArray("names"));
      std::vector<std::string> names;
      for (const Json& n : names_json->items()) {
        if (!n.is_string()) {
          return Status::InvalidArgument("plan json: bad output names");
        }
        names.push_back(n.string_value());
      }
      return PlanNodePtr(
          std::make_shared<OutputNode>(id, std::move(names), children[0]));
    }
    case PlanNodeKind::kTableWrite: {
      PRESTO_RETURN_IF_ERROR(require_children(1));
      PRESTO_ASSIGN_OR_RETURN(std::string connector_name,
                              json.GetString("connector"));
      PRESTO_ASSIGN_OR_RETURN(std::string table_name, json.GetString("table"));
      PRESTO_ASSIGN_OR_RETURN(Connector * connector,
                              catalog.Get(connector_name));
      PRESTO_ASSIGN_OR_RETURN(TableHandlePtr table,
                              connector->metadata().GetTable(table_name));
      return PlanNodePtr(std::make_shared<TableWriteNode>(
          id, std::move(connector_name), std::move(table), std::move(output),
          children[0]));
    }
    case PlanNodeKind::kExchange: {
      PRESTO_RETURN_IF_ERROR(require_children(1));
      PRESTO_ASSIGN_OR_RETURN(int64_t exchange_kind,
                              json.GetInt("exchangeKind"));
      PRESTO_ASSIGN_OR_RETURN(int64_t scope, json.GetInt("scope"));
      if (exchange_kind < 0 ||
          exchange_kind > static_cast<int64_t>(ExchangeKind::kRoundRobin) ||
          scope < 0 || scope > static_cast<int64_t>(ExchangeScope::kLocal)) {
        return Status::InvalidArgument("bad exchange in plan json");
      }
      PRESTO_ASSIGN_OR_RETURN(const Json* keys_json,
                              json.GetArray("partitionKeys"));
      PRESTO_ASSIGN_OR_RETURN(std::vector<int> keys,
                              IntVectorFromJson(*keys_json));
      return PlanNodePtr(std::make_shared<ExchangeNode>(
          id, static_cast<ExchangeKind>(exchange_kind),
          static_cast<ExchangeScope>(scope), std::move(keys), children[0]));
    }
    case PlanNodeKind::kRemoteSource: {
      PRESTO_RETURN_IF_ERROR(require_children(0));
      PRESTO_ASSIGN_OR_RETURN(int64_t source, json.GetInt("sourceFragment"));
      PRESTO_ASSIGN_OR_RETURN(int64_t exchange_kind,
                              json.GetInt("exchangeKind"));
      if (exchange_kind < 0 ||
          exchange_kind > static_cast<int64_t>(ExchangeKind::kRoundRobin)) {
        return Status::InvalidArgument("bad exchange kind in plan json");
      }
      return PlanNodePtr(std::make_shared<RemoteSourceNode>(
          id, static_cast<int>(source),
          static_cast<ExchangeKind>(exchange_kind), std::move(output)));
    }
  }
  return Status::InvalidArgument("unhandled plan node kind in plan json");
}

}  // namespace

Json ValueToJson(const Value& value) {
  Json out = Json::Object();
  out.Set("t", Json::Str(TypeToString(value.type())));
  if (value.is_null()) return out;
  switch (value.type()) {
    case TypeKind::kBoolean:
      out.Set("v", Json::Bool(value.AsBoolean()));
      break;
    case TypeKind::kBigint:
      out.Set("v", Json::Int(value.AsBigint()));
      break;
    case TypeKind::kDate:
      out.Set("v", Json::Int(value.AsDate()));
      break;
    case TypeKind::kDouble:
      out.Set("v", Json::Real(value.AsDouble()));
      break;
    case TypeKind::kVarchar:
      out.Set("v", Json::Str(value.AsVarchar()));
      break;
    case TypeKind::kUnknown:
      break;
  }
  return out;
}

Result<Value> ValueFromJson(const Json& json) {
  PRESTO_ASSIGN_OR_RETURN(std::string type_name, json.GetString("t"));
  PRESTO_ASSIGN_OR_RETURN(TypeKind type, TypeFromJsonString(type_name));
  const Json* v = json.Find("v");
  if (v == nullptr) return Value::Null(type);
  switch (type) {
    case TypeKind::kBoolean:
      if (!v->is_bool()) break;
      return Value::Boolean(v->bool_value());
    case TypeKind::kBigint:
      if (!v->is_int()) break;
      return Value::Bigint(v->int_value());
    case TypeKind::kDate:
      if (!v->is_int()) break;
      return Value::Date(v->int_value());
    case TypeKind::kDouble:
      if (!v->is_number()) break;
      return Value::Double(v->double_value());
    case TypeKind::kVarchar:
      if (!v->is_string()) break;
      return Value::Varchar(v->string_value());
    case TypeKind::kUnknown:
      return Value::Null(type);
  }
  return Status::InvalidArgument("value json: payload does not match type " +
                                 type_name);
}

Json ExprToJson(const Expr& expr) {
  Json out = Json::Object();
  out.Set("k", Json::Int(static_cast<int64_t>(expr.kind())))
      .Set("t", Json::Str(TypeToString(expr.type())));
  switch (expr.kind()) {
    case ExprKind::kColumnRef:
      out.Set("col", Json::Int(expr.column()));
      return out;
    case ExprKind::kLiteral:
      out.Set("lit", ValueToJson(expr.literal()));
      return out;
    case ExprKind::kCall:
      out.Set("fn", Json::Str(expr.function()->name));
      break;
    case ExprKind::kCase:
      out.Set("else", Json::Bool(expr.has_else()));
      break;
    default:
      break;
  }
  Json children = Json::Array();
  for (const ExprPtr& child : expr.children()) {
    children.Append(ExprToJson(*child));
  }
  out.Set("c", std::move(children));
  return out;
}

Result<ExprPtr> ExprFromJson(const Json& json) {
  PRESTO_ASSIGN_OR_RETURN(int64_t kind_int, json.GetInt("k"));
  if (kind_int < 0 || kind_int > static_cast<int64_t>(ExprKind::kCoalesce)) {
    return Status::InvalidArgument("bad expr kind in plan json");
  }
  auto kind = static_cast<ExprKind>(kind_int);
  PRESTO_ASSIGN_OR_RETURN(std::string type_name, json.GetString("t"));
  PRESTO_ASSIGN_OR_RETURN(TypeKind type, TypeFromJsonString(type_name));

  if (kind == ExprKind::kColumnRef) {
    PRESTO_ASSIGN_OR_RETURN(int64_t col, json.GetInt("col"));
    return Expr::MakeColumn(static_cast<int>(col), type);
  }
  if (kind == ExprKind::kLiteral) {
    PRESTO_ASSIGN_OR_RETURN(const Json* lit_json, json.GetObject("lit"));
    PRESTO_ASSIGN_OR_RETURN(Value value, ValueFromJson(*lit_json));
    return Expr::MakeLiteral(std::move(value));
  }

  PRESTO_ASSIGN_OR_RETURN(const Json* children_json, json.GetArray("c"));
  std::vector<ExprPtr> children;
  for (const Json& c : children_json->items()) {
    PRESTO_ASSIGN_OR_RETURN(ExprPtr child, ExprFromJson(c));
    children.push_back(std::move(child));
  }

  switch (kind) {
    case ExprKind::kCall: {
      PRESTO_ASSIGN_OR_RETURN(std::string fn_name, json.GetString("fn"));
      std::vector<TypeKind> arg_types;
      for (const ExprPtr& child : children) arg_types.push_back(child->type());
      PRESTO_ASSIGN_OR_RETURN(
          const ScalarFunction* fn,
          FunctionRegistry::Instance().Resolve(fn_name, arg_types));
      // The serialized call had exactly matching argument types (the
      // analyzer inserts casts), so resolution must be exact here too.
      if (fn->arg_types != arg_types) {
        return Status::InvalidArgument(
            "plan json: function '" + fn_name +
            "' resolved to a different overload than serialized");
      }
      return Expr::MakeCall(fn, std::move(children));
    }
    case ExprKind::kCast: {
      if (children.size() != 1) {
        return Status::InvalidArgument("plan json: cast expects one child");
      }
      return Expr::MakeCast(type, children[0]);
    }
    case ExprKind::kAnd:
      return Expr::MakeAnd(std::move(children));
    case ExprKind::kOr:
      return Expr::MakeOr(std::move(children));
    case ExprKind::kCase: {
      PRESTO_ASSIGN_OR_RETURN(bool has_else, json.GetBool("else"));
      return Expr::MakeCase(std::move(children), has_else, type);
    }
    case ExprKind::kIn:
      return Expr::MakeIn(std::move(children));
    case ExprKind::kIsNull: {
      if (children.size() != 1) {
        return Status::InvalidArgument("plan json: is_null expects one child");
      }
      return Expr::MakeIsNull(children[0]);
    }
    case ExprKind::kCoalesce:
      return Expr::MakeCoalesce(std::move(children), type);
    case ExprKind::kColumnRef:
    case ExprKind::kLiteral:
      break;
  }
  return Status::InvalidArgument("unhandled expr kind in plan json");
}

Json SchemaToJson(const RowSchema& schema) {
  Json out = Json::Array();
  for (const Column& column : schema.columns()) {
    Json c = Json::Object();
    c.Set("name", Json::Str(column.name))
        .Set("type", Json::Str(TypeToString(column.type)));
    out.Append(std::move(c));
  }
  return out;
}

Result<RowSchema> SchemaFromJson(const Json& json) {
  RowSchema schema;
  for (const Json& item : json.items()) {
    PRESTO_ASSIGN_OR_RETURN(std::string name, item.GetString("name"));
    PRESTO_ASSIGN_OR_RETURN(std::string type_name, item.GetString("type"));
    PRESTO_ASSIGN_OR_RETURN(TypeKind type, TypeFromJsonString(type_name));
    schema.Add(std::move(name), type);
  }
  return schema;
}

Result<Json> PlanFragmentToJson(const PlanFragment& fragment) {
  if (fragment.root == nullptr) {
    return Status::InvalidArgument("cannot serialize fragment without root");
  }
  Json out = Json::Object();
  out.Set("v", Json::Int(kWireVersion))
      .Set("id", Json::Int(fragment.id))
      .Set("partitioning", Json::Int(static_cast<int64_t>(fragment.partitioning)))
      .Set("bucketCount", Json::Int(fragment.bucket_count))
      .Set("outputKind", Json::Int(static_cast<int64_t>(fragment.output_kind)))
      .Set("outputKeys", IntVectorToJson(fragment.output_keys))
      .Set("consumer", Json::Int(fragment.consumer))
      .Set("inputs", IntVectorToJson(fragment.inputs))
      .Set("buildDeps", IntVectorToJson(fragment.build_dependencies))
      .Set("root", NodeToJson(*fragment.root));
  return out;
}

Result<PlanFragment> PlanFragmentFromJson(const Json& json,
                                          const Catalog& catalog) {
  PRESTO_ASSIGN_OR_RETURN(int64_t version, json.GetInt("v"));
  if (version != kWireVersion) {
    return Status::InvalidArgument("unsupported plan wire version " +
                                   std::to_string(version));
  }
  PlanFragment fragment;
  PRESTO_ASSIGN_OR_RETURN(int64_t id, json.GetInt("id"));
  fragment.id = static_cast<int>(id);
  PRESTO_ASSIGN_OR_RETURN(int64_t partitioning, json.GetInt("partitioning"));
  if (partitioning < 0 ||
      partitioning > static_cast<int64_t>(PartitioningKind::kColocated)) {
    return Status::InvalidArgument("bad partitioning in plan json");
  }
  fragment.partitioning = static_cast<PartitioningKind>(partitioning);
  PRESTO_ASSIGN_OR_RETURN(int64_t bucket_count, json.GetInt("bucketCount"));
  fragment.bucket_count = static_cast<int>(bucket_count);
  PRESTO_ASSIGN_OR_RETURN(int64_t output_kind, json.GetInt("outputKind"));
  if (output_kind < 0 ||
      output_kind > static_cast<int64_t>(ExchangeKind::kRoundRobin)) {
    return Status::InvalidArgument("bad output kind in plan json");
  }
  fragment.output_kind = static_cast<ExchangeKind>(output_kind);
  PRESTO_ASSIGN_OR_RETURN(const Json* keys_json, json.GetArray("outputKeys"));
  PRESTO_ASSIGN_OR_RETURN(fragment.output_keys, IntVectorFromJson(*keys_json));
  PRESTO_ASSIGN_OR_RETURN(int64_t consumer, json.GetInt("consumer"));
  fragment.consumer = static_cast<int>(consumer);
  PRESTO_ASSIGN_OR_RETURN(const Json* inputs_json, json.GetArray("inputs"));
  PRESTO_ASSIGN_OR_RETURN(fragment.inputs, IntVectorFromJson(*inputs_json));
  PRESTO_ASSIGN_OR_RETURN(const Json* deps_json, json.GetArray("buildDeps"));
  PRESTO_ASSIGN_OR_RETURN(fragment.build_dependencies,
                          IntVectorFromJson(*deps_json));
  PRESTO_ASSIGN_OR_RETURN(const Json* root_json, json.GetObject("root"));
  PRESTO_ASSIGN_OR_RETURN(fragment.root, NodeFromJson(*root_json, catalog));
  return fragment;
}

}  // namespace presto
