#include "plan/planner.h"

#include <algorithm>

#include "common/string_utils.h"
#include "expr/function_registry.h"
#include "metadata/metadata_snapshot.h"

namespace presto {

Planner::Planner(const Catalog* catalog)
    : catalog_(catalog),
      owned_snapshot_(std::make_unique<MetadataSnapshot>(catalog)),
      resolver_(owned_snapshot_.get()) {}

Planner::Planner(MetadataResolver* resolver)
    : catalog_(resolver->catalog()), resolver_(resolver) {}

Planner::~Planner() = default;

namespace {

using sql::AstExpr;
using sql::AstExprKind;
using sql::AstExprPtr;
using sql::ExprBinder;
using sql::Scope;
using sql::SelectStmt;
using sql::TableRef;
using sql::TableRefKind;

// Deep copy of an AST expression tree.
AstExprPtr CloneAst(const AstExpr& ast) {
  auto copy = std::make_shared<AstExpr>(ast);
  copy->children.clear();
  for (const auto& c : ast.children) copy->children.push_back(CloneAst(*c));
  if (ast.window != nullptr) {
    auto w = std::make_shared<sql::WindowSpec>();
    for (const auto& p : ast.window->partition_by) {
      w->partition_by.push_back(CloneAst(*p));
    }
    for (const auto& [k, asc] : ast.window->order_by) {
      w->order_by.emplace_back(CloneAst(*k), asc);
    }
    copy->window = std::move(w);
  }
  return copy;
}

// A substitution target: an AST shape to be replaced by a synthetic column.
struct Substitution {
  const AstExpr* pattern;
  std::string synthetic_name;  // identifier to substitute
  // For identifier patterns: the resolved base-scope index, so that `a` and
  // `t.a` match when they refer to the same column.
  int resolved_column = -1;
};

bool MatchesPattern(const AstExpr& ast, const Substitution& sub,
                    const Scope* base_scope) {
  if (sql::AstExprEquals(ast, *sub.pattern)) return true;
  if (sub.resolved_column >= 0 && ast.kind == AstExprKind::kIdentifier &&
      base_scope != nullptr) {
    auto r = base_scope->Resolve(ast.parts);
    if (r.ok() && *r == sub.resolved_column) return true;
  }
  return false;
}

// Clones `ast`, replacing any subtree matching a substitution with an
// identifier referring to the synthetic aggregate/window output scope.
AstExprPtr SubstituteAst(const AstExpr& ast,
                         const std::vector<Substitution>& subs,
                         const Scope* base_scope) {
  for (const auto& sub : subs) {
    if (MatchesPattern(ast, sub, base_scope)) {
      auto id = std::make_shared<AstExpr>();
      id->kind = AstExprKind::kIdentifier;
      id->parts = {sub.synthetic_name};
      return id;
    }
  }
  auto copy = std::make_shared<AstExpr>(ast);
  copy->children.clear();
  for (const auto& c : ast.children) {
    copy->children.push_back(SubstituteAst(*c, subs, base_scope));
  }
  return copy;
}

// Derives an output column name for a select item.
std::string DeriveName(const AstExpr& expr, size_t index) {
  if (expr.kind == AstExprKind::kIdentifier) return expr.parts.back();
  if (expr.kind == AstExprKind::kFunctionCall) {
    return ToLowerAscii(expr.function_name);
  }
  return "_col" + std::to_string(index);
}

// Splits an expression into top-level AND conjuncts.
void SplitConjunctsAst(const AstExprPtr& expr,
                       std::vector<AstExprPtr>* conjuncts) {
  if (expr->kind == AstExprKind::kBinaryOp && expr->op == "and") {
    SplitConjunctsAst(expr->children[0], conjuncts);
    SplitConjunctsAst(expr->children[1], conjuncts);
    return;
  }
  conjuncts->push_back(expr);
}

}  // namespace

Result<PlanNodePtr> Planner::Plan(const sql::Statement& stmt) {
  PRESTO_ASSIGN_OR_RETURN(RelationPlan query, PlanQuery(*stmt.select));
  if (stmt.kind == sql::StatementKind::kSelect) {
    std::vector<std::string> names;
    for (const auto& col : query.node->output().columns()) {
      names.push_back(col.name);
    }
    return PlanNodePtr(std::make_shared<OutputNode>(NewId(), std::move(names),
                                                    query.node));
  }
  return PlanWrite(stmt, std::move(query));
}

Result<PlanNodePtr> Planner::PlanWrite(const sql::Statement& stmt,
                                       RelationPlan query) {
  // Resolve target connector + table name.
  std::string connector_name;
  std::string table_name;
  if (stmt.target_name.size() == 1) {
    connector_name = catalog_->default_name();
    table_name = stmt.target_name[0];
  } else if (stmt.target_name.size() == 2) {
    connector_name = stmt.target_name[0];
    table_name = stmt.target_name[1];
  } else {
    return Status::InvalidArgument("invalid table name");
  }
  PRESTO_ASSIGN_OR_RETURN(Connector * connector,
                          catalog_->Get(connector_name));

  TableHandlePtr target;
  if (stmt.kind == sql::StatementKind::kCreateTableAs) {
    PRESTO_ASSIGN_OR_RETURN(
        target, connector->metadata().BeginCreateTable(
                    table_name, query.node->output()));
  } else {
    // Resolve through the snapshot: the INSERT target's version becomes a
    // plan dependency like any read table's.
    PRESTO_ASSIGN_OR_RETURN(const ResolvedTable* resolved,
                            resolver_->Resolve(connector_name, table_name));
    target = resolved->handle;
    // Schema compatibility: positional, with implicit coercions.
    const RowSchema& src = query.node->output();
    const RowSchema& dst = target->schema();
    if (src.size() != dst.size()) {
      return Status::InvalidArgument(
          "INSERT column count mismatch: query produces " +
          std::to_string(src.size()) + " columns, table has " +
          std::to_string(dst.size()));
    }
    bool needs_cast = false;
    for (size_t i = 0; i < src.size(); ++i) {
      if (src.at(i).type != dst.at(i).type) {
        if (!IsImplicitlyCoercible(src.at(i).type, dst.at(i).type)) {
          return Status::InvalidArgument(
              "INSERT type mismatch for column " + dst.at(i).name);
        }
        needs_cast = true;
      }
    }
    if (needs_cast) {
      std::vector<ExprPtr> exprs;
      RowSchema schema;
      for (size_t i = 0; i < src.size(); ++i) {
        ExprPtr col = Expr::MakeColumn(static_cast<int>(i), src.at(i).type);
        if (src.at(i).type != dst.at(i).type) {
          col = Expr::MakeCast(dst.at(i).type, std::move(col));
        }
        exprs.push_back(std::move(col));
        schema.Add(dst.at(i).name, dst.at(i).type);
      }
      query.node = std::make_shared<ProjectNode>(NewId(), std::move(exprs),
                                                 std::move(schema),
                                                 query.node);
    }
  }
  RowSchema write_output;
  write_output.Add("rows", TypeKind::kBigint);
  auto write = std::make_shared<TableWriteNode>(
      NewId(), connector_name, std::move(target), write_output, query.node);
  // Each writer task emits its own row count; a global SUM produces the
  // single "rows written" result the client sees.
  PRESTO_ASSIGN_OR_RETURN(AggregateSignature sum_sig,
                          ResolveAggregate("sum", TypeKind::kBigint, false));
  auto total = std::make_shared<AggregateNode>(
      NewId(), AggregationStep::kSingle, std::vector<int>{},
      std::vector<AggregateCall>{{sum_sig, 0, "rows"}}, write_output,
      std::move(write));
  return PlanNodePtr(std::make_shared<OutputNode>(
      NewId(), std::vector<std::string>{"rows"}, std::move(total)));
}

Result<Planner::RelationPlan> Planner::PlanQuery(const SelectStmt& stmt) {
  PRESTO_ASSIGN_OR_RETURN(RelationPlan plan, PlanQuerySpec(stmt));

  // UNION ALL chain: unify schemas with implicit coercions.
  if (stmt.union_next != nullptr) {
    std::vector<RelationPlan> branches;
    branches.push_back(plan);
    const SelectStmt* next = stmt.union_next.get();
    while (next != nullptr) {
      PRESTO_ASSIGN_OR_RETURN(RelationPlan b, PlanQuerySpec(*next));
      branches.push_back(std::move(b));
      next = next->union_next.get();
    }
    size_t width = branches[0].node->output().size();
    RowSchema unified = branches[0].node->output();
    for (const auto& b : branches) {
      if (b.node->output().size() != width) {
        return Status::InvalidArgument(
            "UNION ALL branches have different column counts");
      }
    }
    std::vector<Column> cols(unified.columns());
    for (size_t c = 0; c < width; ++c) {
      TypeKind t = cols[c].type;
      for (const auto& b : branches) {
        auto super = CommonSuperType(t, b.node->output().at(c).type);
        if (!super.has_value()) {
          return Status::InvalidArgument(
              "UNION ALL branch type mismatch for column " + cols[c].name);
        }
        t = *super;
      }
      cols[c].type = t;
    }
    unified = RowSchema(std::move(cols));
    std::vector<PlanNodePtr> children;
    for (auto& b : branches) {
      bool needs_cast = false;
      for (size_t c = 0; c < width; ++c) {
        if (b.node->output().at(c).type != unified.at(c).type) {
          needs_cast = true;
        }
      }
      if (needs_cast) {
        std::vector<ExprPtr> exprs;
        for (size_t c = 0; c < width; ++c) {
          ExprPtr col = Expr::MakeColumn(static_cast<int>(c),
                                         b.node->output().at(c).type);
          if (b.node->output().at(c).type != unified.at(c).type) {
            col = Expr::MakeCast(unified.at(c).type, std::move(col));
          }
          exprs.push_back(std::move(col));
        }
        b.node = std::make_shared<ProjectNode>(NewId(), std::move(exprs),
                                               unified, b.node);
      }
      children.push_back(b.node);
    }
    plan.node = std::make_shared<UnionAllNode>(NewId(), unified,
                                               std::move(children));
    Scope scope;
    for (const auto& col : unified.columns()) {
      scope.Add("", col.name, col.type);
    }
    plan.scope = std::move(scope);
  }

  // ORDER BY / LIMIT apply to the (possibly unioned) result. ORDER BY may
  // reference output columns by name or ordinal.
  if (!stmt.order_by.empty()) {
    std::vector<SortKey> keys;
    const RowSchema& out = plan.node->output();
    for (const auto& item : stmt.order_by) {
      const AstExpr& e = *item.expr;
      int column = -1;
      if (e.kind == AstExprKind::kLiteral &&
          e.value.type() == TypeKind::kBigint) {
        int64_t ord = e.value.AsBigint();
        if (ord < 1 || ord > static_cast<int64_t>(out.size())) {
          return Status::InvalidArgument("ORDER BY ordinal out of range");
        }
        column = static_cast<int>(ord - 1);
      } else if (e.kind == AstExprKind::kIdentifier) {
        auto idx = out.IndexOf(e.parts.back());
        if (!idx.has_value()) {
          return Status::InvalidArgument("ORDER BY column not in output: " +
                                         e.parts.back());
        }
        column = static_cast<int>(*idx);
      } else {
        return Status::Unsupported(
            "ORDER BY expressions must be output columns or ordinals");
      }
      keys.push_back({column, item.ascending});
    }
    if (stmt.limit.has_value()) {
      plan.node = std::make_shared<TopNNode>(NewId(), std::move(keys),
                                             *stmt.limit, /*partial=*/false,
                                             plan.node);
      return plan;
    }
    plan.node = std::make_shared<SortNode>(NewId(), std::move(keys),
                                           plan.node);
  }
  if (stmt.limit.has_value()) {
    plan.node = std::make_shared<LimitNode>(NewId(), *stmt.limit,
                                            /*partial=*/false, plan.node);
  }
  return plan;
}

Result<Planner::RelationPlan> Planner::PlanTableRef(const TableRef& ref) {
  switch (ref.kind) {
    case TableRefKind::kNamed:
      return PlanNamedTable(ref);
    case TableRefKind::kSubquery: {
      PRESTO_ASSIGN_OR_RETURN(RelationPlan inner, PlanQuery(*ref.subquery));
      Scope scope;
      for (const auto& col : inner.node->output().columns()) {
        scope.Add(ref.alias, col.name, col.type);
      }
      inner.scope = std::move(scope);
      return inner;
    }
    case TableRefKind::kJoin:
      return PlanJoin(ref);
  }
  return Status::Internal("unhandled table ref kind");
}

Result<Planner::RelationPlan> Planner::PlanNamedTable(const TableRef& ref) {
  std::string connector_name;
  std::string table_name;
  if (ref.name_parts.size() == 1) {
    connector_name = catalog_->default_name();
    table_name = ref.name_parts[0];
  } else if (ref.name_parts.size() == 2) {
    connector_name = ref.name_parts[0];
    table_name = ref.name_parts[1];
  } else {
    return Status::InvalidArgument("invalid table name: " +
                                   Join(ref.name_parts, "."));
  }
  // One resolver round trip per distinct table per query: the snapshot
  // memoizes, so a self-join's second reference reuses this bundle (and
  // the same MetadataVersion) instead of re-invoking Connector::GetTable.
  PRESTO_ASSIGN_OR_RETURN(const ResolvedTable* resolved,
                          resolver_->Resolve(connector_name, table_name));
  TableHandlePtr table = resolved->handle;
  TableStats stats = resolved->stats;
  const RowSchema& schema = table->schema();
  std::vector<int> columns;
  for (size_t i = 0; i < schema.size(); ++i) {
    columns.push_back(static_cast<int>(i));
  }
  auto scan = std::make_shared<TableScanNode>(
      NewId(), connector_name, table, std::move(columns), schema,
      std::vector<ColumnPredicate>{}, /*layout_id=*/"", std::move(stats));
  std::string qualifier = ref.alias.empty() ? table_name : ref.alias;
  Scope scope;
  for (const auto& col : schema.columns()) {
    scope.Add(qualifier, col.name, col.type);
  }
  return RelationPlan{std::move(scan), std::move(scope)};
}

Result<Planner::RelationPlan> Planner::PlanJoin(const TableRef& ref) {
  PRESTO_ASSIGN_OR_RETURN(RelationPlan left, PlanTableRef(*ref.left));
  PRESTO_ASSIGN_OR_RETURN(RelationPlan right, PlanTableRef(*ref.right));
  const auto left_width = static_cast<int>(left.node->output().size());

  // Combined scope (left columns then right columns).
  Scope combined;
  for (const auto& col : left.scope.columns()) {
    combined.Add(col.qualifier, col.name, col.type);
  }
  for (const auto& col : right.scope.columns()) {
    combined.Add(col.qualifier, col.name, col.type);
  }

  RowSchema output;
  for (const auto& col : left.node->output().columns()) {
    output.Add(col.name, col.type);
  }
  for (const auto& col : right.node->output().columns()) {
    output.Add(col.name, col.type);
  }

  std::vector<int> left_keys;
  std::vector<int> right_keys;
  ExprPtr residual;
  std::vector<int> scope_hidden_right_keys;  // for USING

  if (ref.join_type != sql::JoinType::kCross) {
    if (!ref.using_columns.empty()) {
      for (const auto& name : ref.using_columns) {
        PRESTO_ASSIGN_OR_RETURN(int l, left.scope.Resolve({name}));
        PRESTO_ASSIGN_OR_RETURN(int r, right.scope.Resolve({name}));
        left_keys.push_back(l);
        right_keys.push_back(r);
        scope_hidden_right_keys.push_back(r + left_width);
      }
    } else if (ref.on_condition != nullptr) {
      std::vector<AstExprPtr> conjuncts;
      SplitConjunctsAst(ref.on_condition, &conjuncts);
      ExprBinder binder(&combined);
      std::vector<ExprPtr> residual_conjuncts;
      for (const auto& conj : conjuncts) {
        // Equi conjunct: col = col with sides from different inputs.
        bool is_equi = false;
        if (conj->kind == AstExprKind::kBinaryOp && conj->op == "=" &&
            conj->children[0]->kind == AstExprKind::kIdentifier &&
            conj->children[1]->kind == AstExprKind::kIdentifier) {
          auto a = combined.Resolve(conj->children[0]->parts);
          auto b = combined.Resolve(conj->children[1]->parts);
          if (a.ok() && b.ok()) {
            int ai = *a;
            int bi = *b;
            if (ai >= left_width && bi < left_width) std::swap(ai, bi);
            if (ai < left_width && bi >= left_width) {
              TypeKind lt = combined.columns()[static_cast<size_t>(ai)].type;
              TypeKind rt = combined.columns()[static_cast<size_t>(bi)].type;
              if (lt == rt) {
                left_keys.push_back(ai);
                right_keys.push_back(bi - left_width);
                is_equi = true;
              }
            }
          }
        }
        if (!is_equi) {
          PRESTO_ASSIGN_OR_RETURN(ExprPtr bound, binder.Bind(*conj));
          PRESTO_ASSIGN_OR_RETURN(
              bound, ExprBinder::Coerce(std::move(bound), TypeKind::kBoolean));
          residual_conjuncts.push_back(std::move(bound));
        }
      }
      if (!residual_conjuncts.empty()) {
        residual = residual_conjuncts.size() == 1
                       ? residual_conjuncts[0]
                       : Expr::MakeAnd(std::move(residual_conjuncts));
      }
      if (left_keys.empty() && ref.join_type != sql::JoinType::kInner) {
        return Status::Unsupported(
            "outer joins require at least one equi-join condition");
      }
    } else {
      return Status::InvalidArgument("JOIN requires ON or USING");
    }
  }

  auto join = std::make_shared<JoinNode>(
      NewId(), ref.join_type, std::move(left_keys), std::move(right_keys),
      std::move(residual), JoinDistribution::kUnset, std::move(output),
      left.node, right.node);

  // Scope: all columns, except that USING hides the right-side key copies.
  Scope scope;
  int index = 0;
  for (const auto& col : combined.columns()) {
    bool hidden = std::find(scope_hidden_right_keys.begin(),
                            scope_hidden_right_keys.end(),
                            index) != scope_hidden_right_keys.end();
    // Hidden columns still occupy an index; register them under an
    // unresolvable name so positions stay aligned.
    if (hidden) {
      scope.Add("$hidden", "$using_dup_" + std::to_string(index), col.type);
    } else {
      scope.Add(col.qualifier, col.name, col.type);
    }
    ++index;
  }
  return RelationPlan{std::move(join), std::move(scope)};
}

Result<Planner::RelationPlan> Planner::PlanQuerySpec(const SelectStmt& stmt) {
  // ---- FROM ----
  RelationPlan rel;
  if (stmt.from != nullptr) {
    PRESTO_ASSIGN_OR_RETURN(rel, PlanTableRef(*stmt.from));
  } else {
    // SELECT without FROM: single empty row.
    rel.node = std::make_shared<ValuesNode>(
        NewId(), RowSchema{}, std::vector<std::vector<Value>>{{}});
  }

  // ---- WHERE ----
  if (stmt.where != nullptr) {
    if (sql::ContainsAggregate(*stmt.where)) {
      return Status::InvalidArgument("WHERE cannot contain aggregates");
    }
    ExprBinder binder(&rel.scope);
    PRESTO_ASSIGN_OR_RETURN(ExprPtr predicate, binder.Bind(*stmt.where));
    PRESTO_ASSIGN_OR_RETURN(
        predicate, ExprBinder::Coerce(std::move(predicate),
                                      TypeKind::kBoolean));
    rel.node = std::make_shared<FilterNode>(NewId(), std::move(predicate),
                                            rel.node);
  }

  // ---- Aggregation analysis ----
  std::vector<const AstExpr*> aggregates;
  for (const auto& item : stmt.items) {
    if (!item.is_star) sql::CollectAggregates(*item.expr, &aggregates);
  }
  if (stmt.having != nullptr) {
    sql::CollectAggregates(*stmt.having, &aggregates);
  }
  bool has_aggregation = !aggregates.empty() || !stmt.group_by.empty();

  // Group-by expressions, with ordinal support (GROUP BY 1).
  std::vector<AstExprPtr> group_exprs;
  for (const auto& g : stmt.group_by) {
    if (g->kind == AstExprKind::kLiteral &&
        g->value.type() == TypeKind::kBigint) {
      int64_t ord = g->value.AsBigint();
      if (ord < 1 || ord > static_cast<int64_t>(stmt.items.size()) ||
          stmt.items[static_cast<size_t>(ord - 1)].is_star) {
        return Status::InvalidArgument("GROUP BY ordinal out of range");
      }
      group_exprs.push_back(stmt.items[static_cast<size_t>(ord - 1)].expr);
    } else {
      group_exprs.push_back(g);
    }
  }

  std::vector<Substitution> substitutions;
  Scope base_scope = rel.scope;  // scope before aggregation, for matching

  if (has_aggregation) {
    ExprBinder binder(&rel.scope);
    // Pre-projection: group keys followed by aggregate arguments.
    std::vector<ExprPtr> pre_exprs;
    RowSchema pre_schema;
    std::vector<TypeKind> key_types;
    for (size_t k = 0; k < group_exprs.size(); ++k) {
      if (sql::ContainsAggregate(*group_exprs[k])) {
        return Status::InvalidArgument("GROUP BY cannot contain aggregates");
      }
      PRESTO_ASSIGN_OR_RETURN(ExprPtr bound, binder.Bind(*group_exprs[k]));
      key_types.push_back(bound->type());
      pre_schema.Add("$key" + std::to_string(k), bound->type());
      pre_exprs.push_back(std::move(bound));
    }
    std::vector<AggregateCall> calls;
    for (size_t a = 0; a < aggregates.size(); ++a) {
      const AstExpr& agg = *aggregates[a];
      std::optional<TypeKind> arg_type;
      int arg_column = -1;
      if (!agg.children.empty() &&
          agg.children[0]->kind != AstExprKind::kStar) {
        if (agg.children.size() != 1) {
          return Status::Unsupported(
              "aggregates take exactly one argument");
        }
        PRESTO_ASSIGN_OR_RETURN(ExprPtr bound, binder.Bind(*agg.children[0]));
        arg_type = bound->type();
        arg_column = static_cast<int>(pre_exprs.size());
        pre_schema.Add("$arg" + std::to_string(a), bound->type());
        pre_exprs.push_back(std::move(bound));
      }
      PRESTO_ASSIGN_OR_RETURN(
          AggregateSignature sig,
          ResolveAggregate(agg.function_name, arg_type, agg.distinct));
      calls.push_back({sig, arg_column, "$agg" + std::to_string(a)});
    }
    rel.node = std::make_shared<ProjectNode>(NewId(), std::move(pre_exprs),
                                             pre_schema, rel.node);
    // Aggregate output schema: keys then aggregate results.
    RowSchema agg_schema;
    std::vector<int> group_keys;
    for (size_t k = 0; k < group_exprs.size(); ++k) {
      group_keys.push_back(static_cast<int>(k));
      agg_schema.Add("$key" + std::to_string(k), key_types[k]);
    }
    for (const auto& call : calls) {
      agg_schema.Add(call.output_name, call.signature.result_type);
    }
    rel.node = std::make_shared<AggregateNode>(
        NewId(), AggregationStep::kSingle, std::move(group_keys),
        std::move(calls), agg_schema, rel.node);

    // Build the post-aggregation scope and substitutions.
    Scope agg_scope;
    for (size_t k = 0; k < group_exprs.size(); ++k) {
      std::string name = "$key" + std::to_string(k);
      agg_scope.Add("", name, key_types[k]);
      Substitution sub;
      sub.pattern = group_exprs[k].get();
      sub.synthetic_name = name;
      if (group_exprs[k]->kind == AstExprKind::kIdentifier) {
        auto r = base_scope.Resolve(group_exprs[k]->parts);
        if (r.ok()) sub.resolved_column = *r;
      }
      substitutions.push_back(std::move(sub));
    }
    for (size_t a = 0; a < aggregates.size(); ++a) {
      std::string name = "$agg" + std::to_string(a);
      agg_scope.Add("", name,
                    rel.node->output().at(group_exprs.size() + a).type);
      substitutions.push_back({aggregates[a], name, -1});
    }
    rel.scope = std::move(agg_scope);
  }

  // ---- HAVING ----
  if (stmt.having != nullptr) {
    if (!has_aggregation) {
      return Status::InvalidArgument("HAVING requires GROUP BY or aggregates");
    }
    AstExprPtr substituted =
        SubstituteAst(*stmt.having, substitutions, &base_scope);
    ExprBinder binder(&rel.scope);
    PRESTO_ASSIGN_OR_RETURN(ExprPtr predicate, binder.Bind(*substituted));
    PRESTO_ASSIGN_OR_RETURN(
        predicate,
        ExprBinder::Coerce(std::move(predicate), TypeKind::kBoolean));
    rel.node = std::make_shared<FilterNode>(NewId(), std::move(predicate),
                                            rel.node);
  }

  // ---- Window functions ----
  std::vector<const AstExpr*> window_calls;
  for (const auto& item : stmt.items) {
    if (!item.is_star) sql::CollectWindowCalls(*item.expr, &window_calls);
  }
  if (!window_calls.empty()) {
    if (has_aggregation) {
      return Status::Unsupported(
          "window functions over aggregated queries are not supported");
    }
    // All window calls must share the same PARTITION BY / ORDER BY for the
    // single Window node we plan (common case in the Dev/Advertiser
    // analytics workloads).
    const sql::WindowSpec& spec = *window_calls[0]->window;
    for (const auto* call : window_calls) {
      if (!call->window) continue;
      if (call->window->partition_by.size() != spec.partition_by.size() ||
          call->window->order_by.size() != spec.order_by.size()) {
        return Status::Unsupported(
            "all window functions in a query must share one window spec");
      }
    }
    ExprBinder binder(&rel.scope);
    // Pre-project: identity columns + partition keys + order keys + args.
    std::vector<ExprPtr> pre_exprs;
    RowSchema pre_schema;
    int width = static_cast<int>(rel.node->output().size());
    for (int i = 0; i < width; ++i) {
      const auto& col = rel.node->output().at(static_cast<size_t>(i));
      pre_exprs.push_back(Expr::MakeColumn(i, col.type));
      pre_schema.Add(col.name, col.type);
    }
    auto add_expr = [&](const AstExpr& ast) -> Result<int> {
      PRESTO_ASSIGN_OR_RETURN(ExprPtr bound, binder.Bind(ast));
      // Reuse identity columns for plain refs.
      if (bound->kind() == ExprKind::kColumnRef && bound->column() < width) {
        return bound->column();
      }
      int idx = static_cast<int>(pre_exprs.size());
      pre_schema.Add("$w" + std::to_string(idx), bound->type());
      pre_exprs.push_back(std::move(bound));
      return idx;
    };
    std::vector<int> partition_keys;
    for (const auto& p : spec.partition_by) {
      PRESTO_ASSIGN_OR_RETURN(int idx, add_expr(*p));
      partition_keys.push_back(idx);
    }
    std::vector<SortKey> order_keys;
    for (const auto& [k, asc] : spec.order_by) {
      PRESTO_ASSIGN_OR_RETURN(int idx, add_expr(*k));
      order_keys.push_back({idx, asc});
    }
    std::vector<WindowFunction> functions;
    for (size_t w = 0; w < window_calls.size(); ++w) {
      const AstExpr& call = *window_calls[w];
      std::string fname = ToLowerAscii(call.function_name);
      WindowFunction fn;
      fn.output_name = "$win" + std::to_string(w);
      if (fname == "row_number") {
        fn.kind = WindowFunction::Kind::kRowNumber;
        fn.result_type = TypeKind::kBigint;
      } else if (fname == "rank") {
        fn.kind = WindowFunction::Kind::kRank;
        fn.result_type = TypeKind::kBigint;
      } else if (fname == "dense_rank") {
        fn.kind = WindowFunction::Kind::kDenseRank;
        fn.result_type = TypeKind::kBigint;
      } else if (sql::IsAggregateFunctionName(fname)) {
        fn.kind = WindowFunction::Kind::kAggregate;
        std::optional<TypeKind> arg_type;
        if (!call.children.empty() &&
            call.children[0]->kind != AstExprKind::kStar) {
          PRESTO_ASSIGN_OR_RETURN(int idx, add_expr(*call.children[0]));
          fn.arg_column = idx;
          arg_type = pre_schema.at(static_cast<size_t>(idx)).type;
        }
        PRESTO_ASSIGN_OR_RETURN(
            fn.signature,
            ResolveAggregate(fname, arg_type, call.distinct));
        fn.result_type = fn.signature.result_type;
      } else {
        return Status::Unsupported("unknown window function: " + fname);
      }
      functions.push_back(std::move(fn));
    }
    rel.node = std::make_shared<ProjectNode>(NewId(), std::move(pre_exprs),
                                             pre_schema, rel.node);
    RowSchema window_schema = pre_schema;
    for (const auto& fn : functions) {
      window_schema.Add(fn.output_name, fn.result_type);
    }
    rel.node = std::make_shared<WindowNode>(
        NewId(), std::move(partition_keys), std::move(order_keys), functions,
        window_schema, rel.node);
    // Extend the scope with synthetic window outputs and register
    // substitutions.
    Scope new_scope;
    for (const auto& col : rel.scope.columns()) {
      new_scope.Add(col.qualifier, col.name, col.type);
    }
    // Account for appended pre-projection columns ($w...) so scope indices
    // align with the window node's output.
    for (size_t i = new_scope.size(); i < pre_schema.size(); ++i) {
      new_scope.Add("$hidden", pre_schema.at(i).name, pre_schema.at(i).type);
    }
    for (size_t w = 0; w < functions.size(); ++w) {
      new_scope.Add("", functions[w].output_name, functions[w].result_type);
      substitutions.push_back(
          {window_calls[w], functions[w].output_name, -1});
    }
    rel.scope = std::move(new_scope);
  }

  // ---- SELECT items ----
  std::vector<ExprPtr> projections;
  RowSchema out_schema;
  ExprBinder binder(&rel.scope);
  for (const auto& item : stmt.items) {
    if (item.is_star) {
      if (has_aggregation) {
        return Status::InvalidArgument(
            "SELECT * cannot be used with aggregation");
      }
      std::vector<int> cols = rel.scope.ColumnsForQualifier(
          item.star_qualifier);
      // Exclude hidden columns (USING duplicates, window temps).
      if (cols.empty()) {
        return Status::InvalidArgument("no columns for " +
                                       item.star_qualifier + ".*");
      }
      for (int c : cols) {
        const auto& col = rel.scope.columns()[static_cast<size_t>(c)];
        if (col.qualifier == "$hidden") continue;
        projections.push_back(Expr::MakeColumn(c, col.type));
        out_schema.Add(col.name, col.type);
      }
      continue;
    }
    AstExprPtr substituted =
        SubstituteAst(*item.expr, substitutions, &base_scope);
    PRESTO_ASSIGN_OR_RETURN(ExprPtr bound, binder.Bind(*substituted));
    std::string name = !item.alias.empty()
                           ? item.alias
                           : DeriveName(*item.expr, out_schema.size());
    out_schema.Add(name, bound->type());
    projections.push_back(std::move(bound));
  }
  rel.node = std::make_shared<ProjectNode>(NewId(), std::move(projections),
                                           out_schema, rel.node);
  Scope out_scope;
  for (const auto& col : out_schema.columns()) {
    out_scope.Add("", col.name, col.type);
  }
  rel.scope = std::move(out_scope);

  // ---- DISTINCT ----
  if (stmt.distinct) {
    std::vector<int> keys;
    for (size_t i = 0; i < out_schema.size(); ++i) {
      keys.push_back(static_cast<int>(i));
    }
    rel.node = std::make_shared<AggregateNode>(
        NewId(), AggregationStep::kSingle, std::move(keys),
        std::vector<AggregateCall>{}, out_schema, rel.node);
  }
  return rel;
}

}  // namespace presto
