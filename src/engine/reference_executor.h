#ifndef PRESTOCPP_ENGINE_REFERENCE_EXECUTOR_H_
#define PRESTOCPP_ENGINE_REFERENCE_EXECUTOR_H_

#include <vector>

#include "connector/connector.h"
#include "plan/plan_node.h"

namespace presto {

/// Single-threaded, row-at-a-time execution of a *logical* plan (before
/// fragmentation) using the boxed interpreter. Deliberately simple and
/// independent of the vectorized distributed engine; integration tests run
/// every query through both and compare results (differential testing).
Result<std::vector<std::vector<Value>>> ExecuteReference(
    const Catalog& catalog, const PlanNodePtr& plan);

/// Order-insensitive multiset comparison of row sets (for tests). Returns
/// true when both contain the same rows (using Value::Compare semantics,
/// treating NULLs as equal for comparison purposes).
bool SameRowsIgnoringOrder(const std::vector<std::vector<Value>>& a,
                           const std::vector<std::vector<Value>>& b);

}  // namespace presto

#endif  // PRESTOCPP_ENGINE_REFERENCE_EXECUTOR_H_
