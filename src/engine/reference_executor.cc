#include "engine/reference_executor.h"

#include <algorithm>
#include <map>

#include "expr/evaluator.h"
#include "vector/block_builder.h"

namespace presto {

namespace {

using Rows = std::vector<std::vector<Value>>;

// Materializes boxed rows into a page for expression evaluation.
Page RowsToPage(const RowSchema& schema, const Rows& rows) {
  std::vector<TypeKind> types;
  for (const auto& col : schema.columns()) types.push_back(col.type);
  PageBuilder builder(types);
  for (const auto& row : rows) builder.AppendRow(row);
  return builder.Build();
}

struct RowLess {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

class ReferenceExecutor {
 public:
  explicit ReferenceExecutor(const Catalog& catalog) : catalog_(catalog) {}

  Result<Rows> Run(const PlanNodePtr& node) {
    switch (node->kind()) {
      case PlanNodeKind::kOutput:
        return Run(node->child());
      case PlanNodeKind::kValues: {
        const auto& values = static_cast<const ValuesNode&>(*node);
        return values.rows();
      }
      case PlanNodeKind::kTableScan:
        return RunScan(static_cast<const TableScanNode&>(*node));
      case PlanNodeKind::kFilter:
        return RunFilter(static_cast<const FilterNode&>(*node));
      case PlanNodeKind::kProject:
        return RunProject(static_cast<const ProjectNode&>(*node));
      case PlanNodeKind::kAggregate:
        return RunAggregate(static_cast<const AggregateNode&>(*node));
      case PlanNodeKind::kJoin:
        return RunJoin(static_cast<const JoinNode&>(*node));
      case PlanNodeKind::kSort:
      case PlanNodeKind::kTopN:
        return RunSort(*node);
      case PlanNodeKind::kLimit: {
        const auto& limit = static_cast<const LimitNode&>(*node);
        PRESTO_ASSIGN_OR_RETURN(Rows rows, Run(node->child()));
        if (static_cast<int64_t>(rows.size()) > limit.n()) {
          rows.resize(static_cast<size_t>(limit.n()));
        }
        return rows;
      }
      case PlanNodeKind::kUnionAll: {
        Rows all;
        for (const auto& child : node->children()) {
          PRESTO_ASSIGN_OR_RETURN(Rows rows, Run(child));
          for (auto& row : rows) all.push_back(std::move(row));
        }
        return all;
      }
      case PlanNodeKind::kWindow:
        return RunWindow(static_cast<const WindowNode&>(*node));
      default:
        return Status::Unsupported(
            "reference executor does not support node: " + node->Label());
    }
  }

 private:
  Result<Rows> RunScan(const TableScanNode& scan) {
    PRESTO_ASSIGN_OR_RETURN(Connector * connector,
                            catalog_.Get(scan.connector()));
    ScanSpec spec;
    spec.table = scan.table();
    spec.layout_id = scan.layout_id();
    spec.columns = scan.columns();
    spec.predicates = scan.predicates();
    PRESTO_ASSIGN_OR_RETURN(auto splits, connector->GetSplits(spec));
    Rows rows;
    for (;;) {
      PRESTO_ASSIGN_OR_RETURN(auto batch, splits->NextBatch(64));
      if (batch.empty()) break;
      for (const auto& split : batch) {
        PRESTO_ASSIGN_OR_RETURN(auto source,
                                connector->CreateDataSource(*split, spec));
        for (;;) {
          PRESTO_ASSIGN_OR_RETURN(auto page, source->NextPage());
          if (!page.has_value()) break;
          for (int64_t r = 0; r < page->num_rows(); ++r) {
            rows.push_back(page->GetRow(r));
          }
        }
      }
    }
    return rows;
  }

  Result<Rows> RunFilter(const FilterNode& filter) {
    PRESTO_ASSIGN_OR_RETURN(Rows rows, Run(filter.child()));
    Page page = RowsToPage(filter.child()->output(), rows);
    Rows out;
    for (int64_t r = 0; r < page.num_rows(); ++r) {
      PRESTO_ASSIGN_OR_RETURN(Value keep,
                              EvalExprRow(*filter.predicate(), page, r));
      if (!keep.is_null() && keep.AsBoolean()) {
        out.push_back(rows[static_cast<size_t>(r)]);
      }
    }
    return out;
  }

  Result<Rows> RunProject(const ProjectNode& project) {
    PRESTO_ASSIGN_OR_RETURN(Rows rows, Run(project.child()));
    Page page = RowsToPage(project.child()->output(), rows);
    Rows out;
    out.reserve(rows.size());
    for (int64_t r = 0; r < page.num_rows(); ++r) {
      std::vector<Value> row;
      row.reserve(project.expressions().size());
      for (size_t e = 0; e < project.expressions().size(); ++e) {
        PRESTO_ASSIGN_OR_RETURN(
            Value v, EvalExprRow(*project.expressions()[e], page, r));
        // Normalize to the declared output type.
        TypeKind want = project.output().at(e).type;
        if (!v.is_null() && v.type() != want) v = CastValue(want, v);
        if (v.is_null()) v = Value::Null(want);
        row.push_back(std::move(v));
      }
      out.push_back(std::move(row));
    }
    return out;
  }

  Result<Rows> RunAggregate(const AggregateNode& agg) {
    PRESTO_ASSIGN_OR_RETURN(Rows input, Run(agg.child()));
    if (agg.step() != AggregationStep::kSingle) {
      return Status::Unsupported("reference executor needs logical plans");
    }
    // Group rows.
    std::map<std::vector<Value>, std::vector<size_t>, RowLess> groups;
    for (size_t r = 0; r < input.size(); ++r) {
      std::vector<Value> key;
      for (int k : agg.group_keys()) {
        key.push_back(input[r][static_cast<size_t>(k)]);
      }
      groups[std::move(key)].push_back(r);
    }
    if (agg.group_keys().empty() && groups.empty()) {
      groups[{}] = {};
    }
    Rows out;
    for (const auto& [key, members] : groups) {
      std::vector<Value> row = key;
      for (const auto& call : agg.aggregates()) {
        // Reuse the engine accumulators in single-group mode.
        auto acc = CreateAccumulator(call.signature);
        acc->Resize(1);
        std::vector<int32_t> gid(members.size(), 0);
        std::vector<Value> args;
        args.reserve(members.size());
        for (size_t m : members) {
          args.push_back(call.arg_column >= 0
                             ? input[m][static_cast<size_t>(call.arg_column)]
                             : Value::Bigint(1));
        }
        BlockPtr arg_block =
            call.arg_column >= 0
                ? MakeBlockFromValues(call.signature.arg_type, args)
                : nullptr;
        if (!members.empty()) {
          acc->Add(gid.data(), arg_block,
                   static_cast<int64_t>(members.size()));
        }
        row.push_back(acc->BuildFinal(1)->GetValue(0));
      }
      out.push_back(std::move(row));
    }
    return out;
  }

  Result<Rows> RunJoin(const JoinNode& join) {
    PRESTO_ASSIGN_OR_RETURN(Rows left, Run(join.child(0)));
    PRESTO_ASSIGN_OR_RETURN(Rows right, Run(join.child(1)));
    size_t left_width = join.child(0)->output().size();
    size_t right_width = join.child(1)->output().size();
    Rows out;
    std::vector<bool> right_matched(right.size(), false);
    Page combined_probe;  // for residual eval we build pages ad hoc

    auto keys_match = [&](const std::vector<Value>& l,
                          const std::vector<Value>& r) {
      for (size_t k = 0; k < join.left_keys().size(); ++k) {
        const Value& lv = l[static_cast<size_t>(join.left_keys()[k])];
        const Value& rv = r[static_cast<size_t>(join.right_keys()[k])];
        if (!lv.SqlEquals(rv)) return false;
      }
      return true;
    };
    auto residual_ok = [&](const std::vector<Value>& row) -> Result<bool> {
      if (join.residual_filter() == nullptr) return true;
      Page page = RowsToPage(join.output(), {row});
      PRESTO_ASSIGN_OR_RETURN(Value v,
                              EvalExprRow(*join.residual_filter(), page, 0));
      return !v.is_null() && v.AsBoolean();
    };

    for (size_t l = 0; l < left.size(); ++l) {
      bool matched = false;
      for (size_t r = 0; r < right.size(); ++r) {
        if (!join.left_keys().empty() && !keys_match(left[l], right[r])) {
          continue;
        }
        std::vector<Value> row = left[l];
        row.insert(row.end(), right[r].begin(), right[r].end());
        PRESTO_ASSIGN_OR_RETURN(bool ok, residual_ok(row));
        if (!ok) continue;
        matched = true;
        right_matched[r] = true;
        out.push_back(std::move(row));
      }
      if (!matched && (join.join_type() == sql::JoinType::kLeft ||
                       join.join_type() == sql::JoinType::kFull)) {
        std::vector<Value> row = left[l];
        for (size_t c = 0; c < right_width; ++c) {
          row.push_back(Value::Null(
              join.output().at(left_width + c).type));
        }
        out.push_back(std::move(row));
      }
    }
    if (join.join_type() == sql::JoinType::kRight ||
        join.join_type() == sql::JoinType::kFull) {
      for (size_t r = 0; r < right.size(); ++r) {
        if (right_matched[r]) continue;
        std::vector<Value> row;
        for (size_t c = 0; c < left_width; ++c) {
          row.push_back(Value::Null(join.output().at(c).type));
        }
        row.insert(row.end(), right[r].begin(), right[r].end());
        out.push_back(std::move(row));
      }
    }
    (void)combined_probe;
    return out;
  }

  Result<Rows> RunSort(const PlanNode& node) {
    const std::vector<SortKey>& keys =
        node.kind() == PlanNodeKind::kSort
            ? static_cast<const SortNode&>(node).keys()
            : static_cast<const TopNNode&>(node).keys();
    PRESTO_ASSIGN_OR_RETURN(Rows rows, Run(node.child()));
    std::stable_sort(rows.begin(), rows.end(),
                     [&keys](const std::vector<Value>& a,
                             const std::vector<Value>& b) {
                       for (const auto& key : keys) {
                         int c = a[static_cast<size_t>(key.column)].Compare(
                             b[static_cast<size_t>(key.column)]);
                         if (c != 0) return (key.ascending ? c : -c) < 0;
                       }
                       return false;
                     });
    if (node.kind() == PlanNodeKind::kTopN) {
      auto n = static_cast<size_t>(static_cast<const TopNNode&>(node).n());
      if (rows.size() > n) rows.resize(n);
    }
    return rows;
  }

  Result<Rows> RunWindow(const WindowNode& window) {
    PRESTO_ASSIGN_OR_RETURN(Rows rows, Run(window.child()));
    // Sort by partition keys + order keys.
    std::vector<SortKey> keys;
    for (int p : window.partition_keys()) keys.push_back({p, true});
    for (const auto& k : window.order_keys()) keys.push_back(k);
    std::vector<size_t> order(rows.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                       for (const auto& key : keys) {
                         int c = rows[a][static_cast<size_t>(key.column)]
                                     .Compare(
                                         rows[b][static_cast<size_t>(
                                             key.column)]);
                         if (c != 0) return (key.ascending ? c : -c) < 0;
                       }
                       return false;
                     });
    auto same = [&](const std::vector<SortKey>& ks, size_t a, size_t b) {
      for (const auto& key : ks) {
        if (rows[a][static_cast<size_t>(key.column)].Compare(
                rows[b][static_cast<size_t>(key.column)]) != 0) {
          return false;
        }
      }
      return true;
    };
    std::vector<SortKey> part_keys;
    for (int p : window.partition_keys()) part_keys.push_back({p, true});

    Rows out;
    size_t start = 0;
    while (start < order.size()) {
      size_t end = start + 1;
      while (end < order.size() &&
             (part_keys.empty() || same(part_keys, order[start], order[end]))) {
        ++end;
      }
      for (size_t i = start; i < end; ++i) {
        std::vector<Value> row = rows[order[i]];
        for (const auto& fn : window.functions()) {
          switch (fn.kind) {
            case WindowFunction::Kind::kRowNumber:
              row.push_back(Value::Bigint(static_cast<int64_t>(i - start + 1)));
              break;
            case WindowFunction::Kind::kRank:
            case WindowFunction::Kind::kDenseRank: {
              int64_t rank = 1;
              int64_t dense = 1;
              for (size_t j = start + 1; j <= i; ++j) {
                if (!same(window.order_keys(), order[j - 1], order[j])) {
                  rank = static_cast<int64_t>(j - start + 1);
                  ++dense;
                }
              }
              row.push_back(Value::Bigint(
                  fn.kind == WindowFunction::Kind::kRank ? rank : dense));
              break;
            }
            case WindowFunction::Kind::kAggregate: {
              // Frame: whole partition without ORDER BY; otherwise rows up
              // to and including the current peer group.
              size_t frame_end = end;
              if (!window.order_keys().empty()) {
                frame_end = i + 1;
                while (frame_end < end &&
                       same(window.order_keys(), order[i],
                            order[frame_end])) {
                  ++frame_end;
                }
              }
              int64_t count = 0;
              double sum = 0;
              Value min_v, max_v;
              for (size_t j = start; j < frame_end; ++j) {
                Value v = fn.arg_column >= 0
                              ? rows[order[j]][static_cast<size_t>(
                                    fn.arg_column)]
                              : Value::Bigint(1);
                if (fn.arg_column >= 0 && v.is_null()) continue;
                ++count;
                if (v.type() != TypeKind::kVarchar &&
                    v.type() != TypeKind::kBoolean) {
                  sum += v.AsDouble();
                }
                if (min_v.is_null() || v.Compare(min_v) < 0) min_v = v;
                if (max_v.is_null() || v.Compare(max_v) > 0) max_v = v;
              }
              switch (fn.signature.kind) {
                case AggKind::kCount:
                case AggKind::kCountAll:
                  row.push_back(Value::Bigint(count));
                  break;
                case AggKind::kSum:
                  if (count == 0) {
                    row.push_back(Value::Null(fn.result_type));
                  } else if (fn.result_type == TypeKind::kBigint) {
                    row.push_back(Value::Bigint(static_cast<int64_t>(sum)));
                  } else {
                    row.push_back(Value::Double(sum));
                  }
                  break;
                case AggKind::kAvg:
                  row.push_back(count == 0
                                    ? Value::Null(TypeKind::kDouble)
                                    : Value::Double(
                                          sum / static_cast<double>(count)));
                  break;
                case AggKind::kMin:
                  row.push_back(min_v);
                  break;
                case AggKind::kMax:
                  row.push_back(max_v);
                  break;
                default:
                  row.push_back(Value::Null(fn.result_type));
              }
              break;
            }
          }
        }
        out.push_back(std::move(row));
      }
      start = end;
    }
    return out;
  }

  const Catalog& catalog_;
};

}  // namespace

Result<std::vector<std::vector<Value>>> ExecuteReference(
    const Catalog& catalog, const PlanNodePtr& plan) {
  ReferenceExecutor executor(catalog);
  return executor.Run(plan);
}

bool SameRowsIgnoringOrder(const std::vector<std::vector<Value>>& a,
                           const std::vector<std::vector<Value>>& b) {
  if (a.size() != b.size()) return false;
  auto key = [](const std::vector<Value>& row) {
    std::string out;
    for (const auto& v : row) {
      // Round doubles to tolerate accumulation-order differences.
      if (!v.is_null() && v.type() == TypeKind::kDouble) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.9g", v.AsDouble());
        out += buf;
      } else {
        out += v.ToString();
      }
      out += "|";
    }
    return out;
  };
  std::vector<std::string> ka, kb;
  ka.reserve(a.size());
  kb.reserve(b.size());
  for (const auto& row : a) ka.push_back(key(row));
  for (const auto& row : b) kb.push_back(key(row));
  std::sort(ka.begin(), ka.end());
  std::sort(kb.begin(), kb.end());
  return ka == kb;
}

}  // namespace presto
