#include "engine/observability_http.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include "common/json.h"
#include "engine/engine.h"
#include "exchange/http/http_io.h"
#include "stats/trace.h"
#include "worker/task_protocol.h"

namespace presto {

namespace {

HttpResponse MakeError(int status, const std::string& reason,
                       const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.reason = reason;
  response.headers["content-type"] = "text/plain";
  response.body = message;
  return response;
}

HttpResponse MakeOk(std::string content_type, std::string body) {
  HttpResponse response;
  response.headers["content-type"] = std::move(content_type);
  response.body = std::move(body);
  return response;
}

std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> segments;
  size_t begin = 0;
  while (begin <= path.size()) {
    size_t end = path.find('/', begin);
    if (end == std::string::npos) end = path.size();
    if (end > begin) segments.push_back(path.substr(begin, end - begin));
    begin = end + 1;
  }
  return segments;
}

void AppendQueryInfoJson(const QueryInfo& info, std::string* out) {
  out->append("{\"queryId\":\"");
  out->append(JsonEscape(info.query_id));
  out->append("\",\"sql\":\"");
  out->append(JsonEscape(info.sql));
  out->append("\",\"state\":\"");
  out->append(QueryStateToString(info.state));
  out->append("\",\"error\":\"");
  out->append(JsonEscape(info.final_status.ok()
                             ? ""
                             : info.final_status.ToString()));
  out->append("\",\"createUnixMillis\":");
  out->append(std::to_string(info.create_unix_millis));
  out->append(",\"queuedNanos\":");
  out->append(std::to_string(info.queued_nanos));
  out->append(",\"planningNanos\":");
  out->append(std::to_string(info.planning_nanos));
  out->append(",\"executionNanos\":");
  out->append(std::to_string(info.execution_nanos));
  out->append(",\"endToEndNanos\":");
  out->append(std::to_string(info.end_to_end_nanos));
  out->append(",\"stats\":{\"cpuNanos\":");
  out->append(std::to_string(info.stats.total_cpu_nanos));
  out->append(",\"blockedNanos\":");
  out->append(std::to_string(info.stats.total_blocked_nanos));
  out->append(",\"rawInputRows\":");
  out->append(std::to_string(info.stats.raw_input_rows));
  out->append(",\"rawInputBytes\":");
  out->append(std::to_string(info.stats.raw_input_bytes));
  out->append(",\"outputRows\":");
  out->append(std::to_string(info.stats.output_rows));
  out->append(",\"peakUserMemoryBytes\":");
  out->append(std::to_string(info.stats.peak_user_memory_bytes));
  out->append(",\"spilledBytes\":");
  out->append(std::to_string(info.stats.total_spilled_bytes));
  out->append(",\"numTasks\":");
  out->append(std::to_string(info.stats.num_tasks));
  out->append(",\"numDrivers\":");
  out->append(std::to_string(info.stats.num_drivers));
  out->append("},\"fragmentTaskCounts\":{");
  bool first = true;
  for (const auto& [fragment, tasks] : info.fragment_task_counts) {
    if (!first) out->append(",");
    first = false;
    out->append("\"");
    out->append(std::to_string(fragment));
    out->append("\":");
    out->append(std::to_string(tasks));
  }
  // ISSUE 10: live per-task progress from the coordinator's status caches
  // (empty once the query is terminal).
  out->append("},\"taskProgress\":[");
  first = true;
  for (const TaskProgress& task : info.task_progress) {
    if (!first) out->append(",");
    first = false;
    out->append("{\"fragment\":");
    out->append(std::to_string(task.fragment_id));
    out->append(",\"task\":");
    out->append(std::to_string(task.task_index));
    out->append(",\"worker\":");
    out->append(std::to_string(task.worker));
    out->append(",\"generation\":");
    out->append(std::to_string(task.generation));
    out->append(",\"rowsOut\":");
    out->append(std::to_string(task.rows_out));
    out->append(",\"progressAgeMicros\":");
    out->append(std::to_string(task.progress_age_micros));
    out->append("}");
  }
  out->append("]}");
}

/// One Prometheus family reassembled from text expositions (ISSUE 10
/// federation): HELP/TYPE plus every sample line, possibly from several
/// processes.
struct MetricFamily {
  std::string help;
  std::string type;
  std::vector<std::string> samples;
};

/// Inserts worker="<worker>" as the first label of one sample line.
std::string RelabelSample(const std::string& line,
                          const std::string& worker) {
  std::string label = "worker=\"" + worker + "\"";
  size_t brace = line.find('{');
  size_t space = line.find(' ');
  if (brace != std::string::npos &&
      (space == std::string::npos || brace < space)) {
    return line.substr(0, brace + 1) + label + "," + line.substr(brace + 1);
  }
  if (space == std::string::npos) return line;  // malformed; keep verbatim
  return line.substr(0, space) + "{" + label + "}" + line.substr(space);
}

/// Parses one text exposition into `families`, re-labeling every sample
/// with worker="<worker>" unless `worker` is empty. When `sums` is given,
/// accumulates each sample's value keyed by its base metric name (for
/// cluster roll-ups). Histogram/summary child samples (name_bucket, _sum,
/// _count) attach to the family announced by the preceding HELP/TYPE.
void ParseExposition(const std::string& text, const std::string& worker,
                     std::map<std::string, MetricFamily>* families,
                     std::map<std::string, double>* sums) {
  std::string current;
  size_t begin = 0;
  while (begin < text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(begin, end - begin);
    begin = end + 1;
    if (line.empty()) continue;
    bool is_help = line.rfind("# HELP ", 0) == 0;
    bool is_type = line.rfind("# TYPE ", 0) == 0;
    if (is_help || is_type) {
      size_t name_end = line.find(' ', 7);
      if (name_end == std::string::npos) continue;
      current = line.substr(7, name_end - 7);
      MetricFamily& family = (*families)[current];
      std::string rest = line.substr(name_end + 1);
      (is_help ? family.help : family.type) = std::move(rest);
      continue;
    }
    if (line[0] == '#') continue;
    size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos) continue;
    std::string name = line.substr(0, name_end);
    if (sums != nullptr) {
      size_t value_begin = line.rfind(' ');
      if (value_begin != std::string::npos) {
        (*sums)[name] += strtod(line.c_str() + value_begin + 1, nullptr);
      }
    }
    const std::string& key =
        !current.empty() && name.compare(0, current.size(), current) == 0
            ? current
            : name;
    (*families)[key].samples.push_back(
        worker.empty() ? std::move(line) : RelabelSample(line, worker));
  }
}

std::string RenderFamilies(const std::map<std::string, MetricFamily>& families) {
  std::string out;
  for (const auto& [name, family] : families) {
    if (!family.help.empty()) {
      out += "# HELP " + name + " " + family.help + "\n";
    }
    if (!family.type.empty()) {
      out += "# TYPE " + name + " " + family.type + "\n";
    }
    for (const std::string& sample : family.samples) {
      out += sample + "\n";
    }
  }
  return out;
}

}  // namespace

HttpResponse ObservabilityHttpService::HandleClusterMetrics() {
  std::map<std::string, MetricFamily> families;
  ParseExposition(engine_->metrics().RenderText(), "", &families, nullptr);

  Cluster& cluster = engine_->cluster();
  WorkerLivenessTracker& liveness = cluster.liveness();
  const int num_workers = cluster.num_workers();
  // A hung worker must not hang the scrape: short per-worker receive
  // timeout, dead workers skipped entirely.
  constexpr int64_t kScrapeTimeoutMicros = 500'000;
  double scraped = 0, failures = 0;
  double total_memory_bytes = 0, total_running_drivers = 0;
  for (int w = 0; w < num_workers; ++w) {
    int port = cluster.metrics_port(w);
    if (port <= 0 || !liveness.IsAlive(w)) continue;
    bool ok = false;
    if (auto conn_or = ConnectToLoopback(port, kScrapeTimeoutMicros);
        conn_or.ok()) {
      HttpRequest request;
      request.method = "GET";
      request.path = "/v1/metrics";
      if (conn_or.value()->WriteRequest(request).ok()) {
        auto response_or = conn_or.value()->ReadResponse();
        if (response_or.ok() && response_or.value().status == 200) {
          std::map<std::string, double> sums;
          ParseExposition(response_or.value().body, "w" + std::to_string(w),
                          &families, &sums);
          total_memory_bytes +=
              sums["presto_worker_memory_general_used_bytes"];
          total_running_drivers += sums["presto_worker_running_drivers"];
          ok = true;
        }
      }
    }
    ok ? ++scraped : ++failures;
  }

  auto add_gauge = [&families](const std::string& name,
                               const std::string& help,
                               const std::string& labels, double value) {
    MetricFamily& family = families[name];
    family.help = help;
    family.type = "gauge";
    char formatted[64];
    snprintf(formatted, sizeof(formatted), "%g", value);
    family.samples.push_back(
        labels.empty() ? name + " " + formatted
                       : name + "{" + labels + "} " + formatted);
  };
  // (presto_cluster_alive_workers is already a coordinator-registry gauge
  // and arrives via the exposition parsed above.)
  add_gauge("presto_cluster_scraped_workers",
            "Workers whose /v1/metrics answered this federation scrape", "",
            scraped);
  add_gauge("presto_cluster_scrape_failures",
            "Live workers whose /v1/metrics scrape failed", "", failures);
  add_gauge("presto_cluster_worker_memory_used_bytes",
            "Sum of scraped workers' general-pool bytes in use", "",
            total_memory_bytes);
  add_gauge("presto_cluster_running_drivers",
            "Sum of scraped workers' registered, undrained drivers", "",
            total_running_drivers);
  for (int w = 0; w < num_workers; ++w) {
    int64_t rtt = liveness.last_rtt_micros(w);
    if (rtt < 0) continue;
    add_gauge("presto_cluster_worker_rtt_micros",
              "Last heartbeat round trip reported by each worker",
              "worker=\"w" + std::to_string(w) + "\"",
              static_cast<double>(rtt));
  }
  return MakeOk("text/plain; version=0.0.4", RenderFamilies(families));
}

HttpResponse ObservabilityHttpService::HandleHeartbeat(
    const HttpRequest& request) {
  Result<Json> body = Json::Parse(request.body);
  if (!body.ok()) {
    return MakeError(400, "Bad Request",
                     "malformed heartbeat: " + body.status().message());
  }
  Result<int64_t> worker_id = body->GetInt("worker");
  if (!worker_id.ok()) {
    return MakeError(400, "Bad Request",
                     "heartbeat missing integer 'worker'");
  }
  int64_t rtt_micros = 0;
  Result<int64_t> rtt = body->GetInt("rttMicros");
  if (rtt.ok()) rtt_micros = *rtt;
  engine_->cluster().liveness().Heartbeat(static_cast<int>(*worker_id),
                                          rtt_micros);
  // Observability-port advertisement (ISSUE 10): lets /v1/cluster/metrics
  // scrape the worker without static port configuration.
  if (Result<int64_t> metrics_port = body->GetInt("metricsPort");
      metrics_port.ok()) {
    engine_->cluster().liveness().SetMetricsPort(
        static_cast<int>(*worker_id), static_cast<int>(*metrics_port));
  }
  HttpResponse response;
  response.headers["content-type"] = "application/json";
  response.body = "{}";
  return response;
}

HttpResponse ObservabilityHttpService::HandleInfo() {
  NodeInfo info;
  info.node_id = "coordinator";
  info.state = "ACTIVE";
  info.uptime_millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - started_)
                           .count();
  info.active_tasks = engine_->coordinator().running_queries();
  info.heartbeats = engine_->cluster().liveness().heartbeats_received();
  info.alive_workers =
      engine_->cluster().liveness().AliveCount(engine_->cluster().num_workers());
  return MakeOk("application/json", info.ToJson().Serialize());
}

HttpResponse ObservabilityHttpService::Handle(const HttpRequest& request) {
  if (request.method == "POST" && request.path == "/v1/heartbeat") {
    return HandleHeartbeat(request);
  }
  if (request.method != "GET") {
    return MakeError(405, "Method Not Allowed",
                     "only GET (and POST /v1/heartbeat) is supported");
  }
  std::vector<std::string> segments = SplitPath(request.path);
  if (segments.size() < 2 || segments[0] != "v1") {
    return MakeError(404, "Not Found", "unknown path: " + request.path);
  }
  if (segments[1] == "metrics" && segments.size() == 2) {
    return MakeOk("text/plain; version=0.0.4",
                  engine_->metrics().RenderText());
  }
  if (segments[1] == "info" && segments.size() == 2) {
    return HandleInfo();
  }
  // ISSUE 10: federated cluster metrics plane.
  if (segments[1] == "cluster" && segments.size() == 3 &&
      segments[2] == "metrics") {
    return HandleClusterMetrics();
  }
  // ISSUE 8: planning-path cache observability — per-layer sizes, hit
  // ratios, invalidation counts, and per-table live metadata versions.
  if (segments[1] == "metadata" && segments.size() == 3 &&
      segments[2] == "cache") {
    return MakeOk("application/json", engine_->metadata_manager().ToJson());
  }
  if (segments[1] != "query") {
    return MakeError(404, "Not Found", "unknown path: " + request.path);
  }
  if (segments.size() == 2) {
    std::string body = "[";
    bool first = true;
    for (const QueryInfo& info : engine_->ListQueries()) {
      if (!first) body += ",";
      first = false;
      AppendQueryInfoJson(info, &body);
    }
    body += "]";
    return MakeOk("application/json", std::move(body));
  }
  const std::string& query_id = segments[2];
  if (segments.size() == 3) {
    Result<QueryInfo> info = engine_->QueryInfoFor(query_id);
    if (!info.ok()) {
      return MakeError(404, "Not Found", info.status().message());
    }
    std::string body;
    AppendQueryInfoJson(*info, &body);
    return MakeOk("application/json", std::move(body));
  }
  if (segments.size() == 4 && segments[3] == "trace") {
    Result<std::string> trace = engine_->QueryTraceJson(query_id);
    if (!trace.ok()) {
      return MakeError(404, "Not Found", trace.status().message());
    }
    return MakeOk("application/json", std::move(*trace));
  }
  return MakeError(404, "Not Found", "unknown path: " + request.path);
}

}  // namespace presto
