#include "engine/observability_http.h"

#include <vector>

#include "common/json.h"
#include "engine/engine.h"
#include "stats/trace.h"
#include "worker/task_protocol.h"

namespace presto {

namespace {

HttpResponse MakeError(int status, const std::string& reason,
                       const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.reason = reason;
  response.headers["content-type"] = "text/plain";
  response.body = message;
  return response;
}

HttpResponse MakeOk(std::string content_type, std::string body) {
  HttpResponse response;
  response.headers["content-type"] = std::move(content_type);
  response.body = std::move(body);
  return response;
}

std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> segments;
  size_t begin = 0;
  while (begin <= path.size()) {
    size_t end = path.find('/', begin);
    if (end == std::string::npos) end = path.size();
    if (end > begin) segments.push_back(path.substr(begin, end - begin));
    begin = end + 1;
  }
  return segments;
}

void AppendQueryInfoJson(const QueryInfo& info, std::string* out) {
  out->append("{\"queryId\":\"");
  out->append(JsonEscape(info.query_id));
  out->append("\",\"sql\":\"");
  out->append(JsonEscape(info.sql));
  out->append("\",\"state\":\"");
  out->append(QueryStateToString(info.state));
  out->append("\",\"error\":\"");
  out->append(JsonEscape(info.final_status.ok()
                             ? ""
                             : info.final_status.ToString()));
  out->append("\",\"createUnixMillis\":");
  out->append(std::to_string(info.create_unix_millis));
  out->append(",\"queuedNanos\":");
  out->append(std::to_string(info.queued_nanos));
  out->append(",\"planningNanos\":");
  out->append(std::to_string(info.planning_nanos));
  out->append(",\"executionNanos\":");
  out->append(std::to_string(info.execution_nanos));
  out->append(",\"endToEndNanos\":");
  out->append(std::to_string(info.end_to_end_nanos));
  out->append(",\"stats\":{\"cpuNanos\":");
  out->append(std::to_string(info.stats.total_cpu_nanos));
  out->append(",\"blockedNanos\":");
  out->append(std::to_string(info.stats.total_blocked_nanos));
  out->append(",\"rawInputRows\":");
  out->append(std::to_string(info.stats.raw_input_rows));
  out->append(",\"rawInputBytes\":");
  out->append(std::to_string(info.stats.raw_input_bytes));
  out->append(",\"outputRows\":");
  out->append(std::to_string(info.stats.output_rows));
  out->append(",\"peakUserMemoryBytes\":");
  out->append(std::to_string(info.stats.peak_user_memory_bytes));
  out->append(",\"spilledBytes\":");
  out->append(std::to_string(info.stats.total_spilled_bytes));
  out->append(",\"numTasks\":");
  out->append(std::to_string(info.stats.num_tasks));
  out->append(",\"numDrivers\":");
  out->append(std::to_string(info.stats.num_drivers));
  out->append("},\"fragmentTaskCounts\":{");
  bool first = true;
  for (const auto& [fragment, tasks] : info.fragment_task_counts) {
    if (!first) out->append(",");
    first = false;
    out->append("\"");
    out->append(std::to_string(fragment));
    out->append("\":");
    out->append(std::to_string(tasks));
  }
  out->append("}}");
}

}  // namespace

HttpResponse ObservabilityHttpService::HandleHeartbeat(
    const HttpRequest& request) {
  Result<Json> body = Json::Parse(request.body);
  if (!body.ok()) {
    return MakeError(400, "Bad Request",
                     "malformed heartbeat: " + body.status().message());
  }
  Result<int64_t> worker_id = body->GetInt("worker");
  if (!worker_id.ok()) {
    return MakeError(400, "Bad Request",
                     "heartbeat missing integer 'worker'");
  }
  int64_t rtt_micros = 0;
  Result<int64_t> rtt = body->GetInt("rttMicros");
  if (rtt.ok()) rtt_micros = *rtt;
  engine_->cluster().liveness().Heartbeat(static_cast<int>(*worker_id),
                                          rtt_micros);
  HttpResponse response;
  response.headers["content-type"] = "application/json";
  response.body = "{}";
  return response;
}

HttpResponse ObservabilityHttpService::HandleInfo() {
  NodeInfo info;
  info.node_id = "coordinator";
  info.state = "ACTIVE";
  info.uptime_millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - started_)
                           .count();
  info.active_tasks = engine_->coordinator().running_queries();
  info.heartbeats = engine_->cluster().liveness().heartbeats_received();
  info.alive_workers =
      engine_->cluster().liveness().AliveCount(engine_->cluster().num_workers());
  return MakeOk("application/json", info.ToJson().Serialize());
}

HttpResponse ObservabilityHttpService::Handle(const HttpRequest& request) {
  if (request.method == "POST" && request.path == "/v1/heartbeat") {
    return HandleHeartbeat(request);
  }
  if (request.method != "GET") {
    return MakeError(405, "Method Not Allowed",
                     "only GET (and POST /v1/heartbeat) is supported");
  }
  std::vector<std::string> segments = SplitPath(request.path);
  if (segments.size() < 2 || segments[0] != "v1") {
    return MakeError(404, "Not Found", "unknown path: " + request.path);
  }
  if (segments[1] == "metrics" && segments.size() == 2) {
    return MakeOk("text/plain; version=0.0.4",
                  engine_->metrics().RenderText());
  }
  if (segments[1] == "info" && segments.size() == 2) {
    return HandleInfo();
  }
  // ISSUE 8: planning-path cache observability — per-layer sizes, hit
  // ratios, invalidation counts, and per-table live metadata versions.
  if (segments[1] == "metadata" && segments.size() == 3 &&
      segments[2] == "cache") {
    return MakeOk("application/json", engine_->metadata_manager().ToJson());
  }
  if (segments[1] != "query") {
    return MakeError(404, "Not Found", "unknown path: " + request.path);
  }
  if (segments.size() == 2) {
    std::string body = "[";
    bool first = true;
    for (const QueryInfo& info : engine_->ListQueries()) {
      if (!first) body += ",";
      first = false;
      AppendQueryInfoJson(info, &body);
    }
    body += "]";
    return MakeOk("application/json", std::move(body));
  }
  const std::string& query_id = segments[2];
  if (segments.size() == 3) {
    Result<QueryInfo> info = engine_->QueryInfoFor(query_id);
    if (!info.ok()) {
      return MakeError(404, "Not Found", info.status().message());
    }
    std::string body;
    AppendQueryInfoJson(*info, &body);
    return MakeOk("application/json", std::move(body));
  }
  if (segments.size() == 4 && segments[3] == "trace") {
    Result<std::string> trace = engine_->QueryTraceJson(query_id);
    if (!trace.ok()) {
      return MakeError(404, "Not Found", trace.status().message());
    }
    return MakeOk("application/json", std::move(*trace));
  }
  return MakeError(404, "Not Found", "unknown path: " + request.path);
}

}  // namespace presto
