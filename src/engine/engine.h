#ifndef PRESTOCPP_ENGINE_ENGINE_H_
#define PRESTOCPP_ENGINE_ENGINE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "connector/connector.h"
#include "optimizer/optimizer.h"
#include "schedule/cluster.h"
#include "schedule/coordinator.h"

namespace presto {

/// Engine-wide options: the simulated cluster plus optimizer settings.
struct EngineOptions {
  ClusterConfig cluster;
  OptimizerOptions optimizer;
};

/// A client-held handle to a running query: streams result pages as they
/// are produced (§IV-E: "Presto is capable of returning results before all
/// the data is processed").
class QueryResult {
 public:
  const RowSchema& schema() const { return execution_->schema(); }
  const std::string& query_id() const { return execution_->query_id(); }

  /// Next result page; nullopt at end; error if the query failed.
  Result<std::optional<Page>> Next();

  /// Drains the remaining pages into one vector (waits for completion).
  Result<std::vector<Page>> FetchAll();

  /// Drains and boxes every row (testing convenience).
  Result<std::vector<std::vector<Value>>> FetchAllRows();

  /// Cancels the query (client abandons it; e.g. after enough rows).
  void Cancel();

  /// Blocks until all tasks finished; the query's final status.
  Status Wait() { return execution_->Wait(); }

  QueryExecution& execution() { return *execution_; }

 private:
  friend class PrestoEngine;
  std::shared_ptr<QueryExecution> execution_;
  // CTAS/INSERT target to commit once the stream completes successfully.
  Connector* write_connector_ = nullptr;
  TableHandlePtr write_target_;
  bool write_committed_ = false;
};

/// The embedded engine: catalog + simulated cluster + the full query
/// pipeline (parse -> analyze/plan -> optimize -> fragment -> schedule ->
/// execute).
class PrestoEngine {
 public:
  explicit PrestoEngine(EngineOptions options = {});

  Catalog& catalog() { return catalog_; }
  Cluster& cluster() { return *cluster_; }
  Coordinator& coordinator() { return *coordinator_; }
  const EngineOptions& options() const { return options_; }

  /// Runs a statement; for EXPLAIN the result contains a single VARCHAR
  /// column with the distributed plan text.
  Result<QueryResult> Execute(const std::string& sql);

  /// Returns the optimized, fragmented plan text for a statement.
  Result<std::string> Explain(const std::string& sql);

  /// Convenience: executes and drains all rows.
  Result<std::vector<std::vector<Value>>> ExecuteAndFetch(
      const std::string& sql);

 private:
  EngineOptions options_;
  Catalog catalog_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Coordinator> coordinator_;
  std::atomic<int64_t> next_query_id_{0};
};

}  // namespace presto

#endif  // PRESTOCPP_ENGINE_ENGINE_H_
