#ifndef PRESTOCPP_ENGINE_ENGINE_H_
#define PRESTOCPP_ENGINE_ENGINE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "connector/connector.h"
#include "metadata/metadata_manager.h"
#include "optimizer/optimizer.h"
#include "schedule/cluster.h"
#include "schedule/coordinator.h"
#include "stats/event_listener.h"
#include "stats/metrics_registry.h"
#include "stats/query_stats.h"

namespace presto {

class ObservabilityHttpService;

/// Engine-wide options: the simulated cluster plus optimizer settings and
/// the planning-path cache configuration (ISSUE 8).
struct EngineOptions {
  ClusterConfig cluster;
  OptimizerOptions optimizer;
  MetadataManagerOptions metadata;
};

/// A client-held handle to a running query: streams result pages as they
/// are produced (§IV-E: "Presto is capable of returning results before all
/// the data is processed").
class QueryResult {
 public:
  const RowSchema& schema() const { return execution_->schema(); }
  const std::string& query_id() const { return execution_->query_id(); }

  /// Next result page; nullopt at end; error if the query failed.
  Result<std::optional<Page>> Next();

  /// Drains the remaining pages into one vector (waits for completion).
  Result<std::vector<Page>> FetchAll();

  /// Drains and boxes every row (testing convenience).
  Result<std::vector<std::vector<Value>>> FetchAllRows();

  /// Cancels the query (client abandons it; e.g. after enough rows).
  void Cancel();

  /// Blocks until all tasks finished; the query's final status.
  Status Wait() { return execution_->Wait(); }

  QueryExecution& execution() { return *execution_; }

 private:
  friend class PrestoEngine;
  std::shared_ptr<QueryExecution> execution_;
  // CTAS/INSERT target to commit once the stream completes successfully.
  Connector* write_connector_ = nullptr;
  TableHandlePtr write_target_;
  bool write_committed_ = false;
};

/// The embedded engine: catalog + simulated cluster + the full query
/// pipeline (parse -> analyze/plan -> optimize -> fragment -> schedule ->
/// execute), plus the observability surface: per-query lifecycle info,
/// EXPLAIN ANALYZE, event listeners, and an engine-wide metrics registry.
class PrestoEngine {
 public:
  explicit PrestoEngine(EngineOptions options = {});
  ~PrestoEngine();

  Catalog& catalog() { return catalog_; }
  Cluster& cluster() { return *cluster_; }
  Coordinator& coordinator() { return *coordinator_; }
  const EngineOptions& options() const { return options_; }

  /// Runs a statement. EXPLAIN [ANALYZE] statements are rejected here —
  /// their result is a plan text, not a row stream; use Explain /
  /// ExplainAnalyze / ExecuteAndFetch.
  Result<QueryResult> Execute(const std::string& sql);

  /// Returns the optimized, fragmented plan text for a statement.
  Result<std::string> Explain(const std::string& sql);

  /// Executes the statement to completion (discarding its rows) and returns
  /// the fragmented plan annotated with actual per-operator runtime stats
  /// next to the optimizer estimates. Accepts both "EXPLAIN ANALYZE <query>"
  /// and a bare query.
  Result<std::string> ExplainAnalyze(const std::string& sql);

  /// Convenience: executes and drains all rows. EXPLAIN [ANALYZE] returns a
  /// single VARCHAR row holding the plan text.
  Result<std::vector<std::vector<Value>>> ExecuteAndFetch(
      const std::string& sql);

  /// Lifecycle snapshot of one query (running or completed).
  Result<QueryInfo> QueryInfoFor(const std::string& query_id) const;

  /// Snapshots of every query this engine has seen (bounded history).
  std::vector<QueryInfo> ListQueries() const;

  /// Registers a listener for QueryCreated/QueryCompleted events.
  void AddEventListener(std::shared_ptr<EventListener> listener);

  /// Engine-wide counters/gauges/histograms (Prometheus RenderText()).
  MetricsRegistry& metrics() { return *metrics_; }

  /// The planning-path cache subsystem (metadata/split/plan caches).
  MetadataManager& metadata_manager() { return *metadata_manager_; }

  /// Drops (catalog, table) from all planning-path caches without touching
  /// connector state — for out-of-band mutations no invalidation hook saw.
  /// Empty `table` drops every table of that catalog.
  Status InvalidateMetadata(const std::string& catalog,
                            const std::string& table);

  /// Chrome trace_event JSON of one query's distributed trace (load in
  /// Perfetto / chrome://tracing). Available while the query runs and for
  /// as long as it stays in the tracked-query history.
  Result<std::string> QueryTraceJson(const std::string& query_id) const;

  /// Resolves query/trace ids for the exchange's `x-presto-trace` headers.
  TraceRegistry& traces() { return traces_; }

  /// Starts the HTTP observability plane (GET /v1/metrics, /v1/query,
  /// /v1/query/{id}, /v1/query/{id}/trace) on 127.0.0.1:<ephemeral>.
  /// Idempotent; observability_port() is -1 until started.
  Status StartObservability();
  void StopObservability();
  int observability_port() const;

 private:
  /// plan -> optimize -> fragment (shared by Execute/Explain/ExplainAnalyze),
  /// fronted by the plan cache: a SELECT whose canonical SQL fingerprint is
  /// cached (and whose metadata dependencies are still at their recorded
  /// versions) skips all three phases. With a recorder, each phase gets a
  /// coordinator-side span and cache hits get instant events.
  Result<FragmentedPlan> PlanStatement(const sql::Statement& stmt,
                                       const std::string& sql,
                                       TraceRecorder* trace = nullptr);

  /// Registers the lifecycle, plans, and launches the statement.
  Result<std::shared_ptr<QueryExecution>> Launch(
      const sql::Statement& stmt, const std::string& sql,
      const std::string& query_id);

  void RegisterEngineGauges();

  EngineOptions options_;
  Catalog catalog_;
  // Destroyed after everything that plans (coordinator, observability);
  // needs only catalog_ alive beneath it for hook removal.
  std::unique_ptr<MetadataManager> metadata_manager_;
  // Declaration order is destruction-order-sensitive: lifecycles hold a
  // pointer to the tracker, which holds a pointer to the registry; the
  // cluster's exchange holds a pointer to the trace registry; the
  // observability server reads everything, so it is torn down first.
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<QueryTracker> tracker_;
  TraceRegistry traces_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<ObservabilityHttpService> observability_;
  std::atomic<int64_t> next_query_id_{0};
};

}  // namespace presto

#endif  // PRESTOCPP_ENGINE_ENGINE_H_
