#ifndef PRESTOCPP_ENGINE_OBSERVABILITY_HTTP_H_
#define PRESTOCPP_ENGINE_OBSERVABILITY_HTTP_H_

#include <chrono>
#include <string>

#include "common/status.h"
#include "exchange/http/http_server.h"

namespace presto {

class PrestoEngine;

/// Coordinator-side observability + cluster-membership endpoints, the
/// embedded analogue of Presto's REST UI/monitoring surface, served over
/// the same HttpServer the exchange transport uses:
///
///   GET  /v1/metrics           Prometheus text exposition (MetricsRegistry)
///   GET  /v1/cluster/metrics   Federated exposition (ISSUE 10): scrapes
///                              every live worker's /v1/metrics, re-labels
///                              each sample with worker="w<i>", merges the
///                              families with the coordinator's own, and
///                              appends cluster roll-up gauges (total
///                              worker memory, total running drivers,
///                              per-worker heartbeat RTT, scrape failures)
///   GET  /v1/info              Coordinator NodeInfo JSON (uptime, running
///                              queries, heartbeats, alive workers)
///   GET  /v1/query             JSON list of every tracked query
///   GET  /v1/query/{id}        One query's lifecycle + QueryStats as JSON
///   GET  /v1/query/{id}/trace  Chrome trace_event JSON (load in Perfetto)
///   GET  /v1/metadata/cache    Planning-path cache layers: sizes, hit
///                              ratios, invalidations, live per-table
///                              metadata versions (ISSUE 8)
///   POST /v1/heartbeat         Worker liveness beat {"worker","rttMicros"}
///                              (ISSUE 6 failure detection)
///
/// Unknown paths and unknown/malformed query ids are 404s. The service
/// reads only through the engine's thread-safe accessors (tracker
/// snapshots, weak trace registry, liveness tracker), so scrapes may race
/// query teardown freely.
class ObservabilityHttpService {
 public:
  explicit ObservabilityHttpService(PrestoEngine* engine)
      : engine_(engine),
        started_(std::chrono::steady_clock::now()),
        server_([this](const HttpRequest& request) {
          return Handle(request);
        }) {}

  Status Start() { return server_.Start(); }
  void Stop() { server_.Stop(); }
  int port() const { return server_.port(); }

  /// Exposed for tests; normal traffic arrives via the server.
  HttpResponse Handle(const HttpRequest& request);

 private:
  HttpResponse HandleHeartbeat(const HttpRequest& request);
  HttpResponse HandleInfo();
  HttpResponse HandleClusterMetrics();

  PrestoEngine* engine_;
  std::chrono::steady_clock::time_point started_;
  HttpServer server_;
};

}  // namespace presto

#endif  // PRESTOCPP_ENGINE_OBSERVABILITY_HTTP_H_
