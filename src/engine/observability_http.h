#ifndef PRESTOCPP_ENGINE_OBSERVABILITY_HTTP_H_
#define PRESTOCPP_ENGINE_OBSERVABILITY_HTTP_H_

#include <string>

#include "common/status.h"
#include "exchange/http/http_server.h"

namespace presto {

class PrestoEngine;

/// Coordinator-side observability endpoints, the embedded analogue of
/// Presto's REST UI/monitoring surface, served over the same HttpServer the
/// exchange transport uses:
///
///   GET /v1/metrics           Prometheus text exposition (MetricsRegistry)
///   GET /v1/query             JSON list of every tracked query
///   GET /v1/query/{id}        One query's lifecycle + QueryStats as JSON
///   GET /v1/query/{id}/trace  Chrome trace_event JSON (load in Perfetto)
///
/// Unknown paths and unknown/malformed query ids are 404s. The service
/// reads only through the engine's thread-safe accessors (tracker
/// snapshots, weak trace registry), so scrapes may race query teardown
/// freely.
class ObservabilityHttpService {
 public:
  explicit ObservabilityHttpService(PrestoEngine* engine)
      : engine_(engine),
        server_([this](const HttpRequest& request) {
          return Handle(request);
        }) {}

  Status Start() { return server_.Start(); }
  void Stop() { server_.Stop(); }
  int port() const { return server_.port(); }

  /// Exposed for tests; normal traffic arrives via the server.
  HttpResponse Handle(const HttpRequest& request);

 private:
  PrestoEngine* engine_;
  HttpServer server_;
};

}  // namespace presto

#endif  // PRESTOCPP_ENGINE_OBSERVABILITY_HTTP_H_
