#include "engine/engine.h"

#include "fragment/fragmenter.h"
#include "plan/planner.h"
#include "sql/parser.h"

namespace presto {

Result<std::optional<Page>> QueryResult::Next() {
  PRESTO_ASSIGN_OR_RETURN(std::optional<Page> page,
                          execution_->results().Next());
  if (!page.has_value() && write_connector_ != nullptr && !write_committed_) {
    // Stream completed successfully: commit the CTAS/INSERT target.
    write_committed_ = true;
    PRESTO_RETURN_IF_ERROR(
        write_connector_->metadata().FinishWrite(*write_target_));
  }
  return page;
}

Result<std::vector<Page>> QueryResult::FetchAll() {
  std::vector<Page> pages;
  for (;;) {
    PRESTO_ASSIGN_OR_RETURN(std::optional<Page> page, Next());
    if (!page.has_value()) break;
    pages.push_back(std::move(*page));
  }
  PRESTO_RETURN_IF_ERROR(Wait());
  return pages;
}

Result<std::vector<std::vector<Value>>> QueryResult::FetchAllRows() {
  PRESTO_ASSIGN_OR_RETURN(std::vector<Page> pages, FetchAll());
  std::vector<std::vector<Value>> rows;
  for (const auto& page : pages) {
    for (int64_t r = 0; r < page.num_rows(); ++r) {
      rows.push_back(page.GetRow(r));
    }
  }
  return rows;
}

void QueryResult::Cancel() {
  execution_->Cancel(Status::Cancelled("cancelled by client"));
}

PrestoEngine::PrestoEngine(EngineOptions options)
    : options_(std::move(options)),
      cluster_(std::make_unique<Cluster>(options_.cluster)),
      coordinator_(std::make_unique<Coordinator>(cluster_.get(), &catalog_)) {
}

Result<std::string> PrestoEngine::Explain(const std::string& sql) {
  PRESTO_ASSIGN_OR_RETURN(sql::StatementPtr stmt, sql::ParseStatement(sql));
  Planner planner(&catalog_);
  PRESTO_ASSIGN_OR_RETURN(PlanNodePtr plan, planner.Plan(*stmt));
  Optimizer optimizer(&catalog_, options_.optimizer);
  PRESTO_ASSIGN_OR_RETURN(plan, optimizer.Optimize(std::move(plan)));
  Fragmenter fragmenter;
  PRESTO_ASSIGN_OR_RETURN(FragmentedPlan fragments,
                          fragmenter.Fragment(plan));
  return fragments.ToString();
}

Result<QueryResult> PrestoEngine::Execute(const std::string& sql) {
  PRESTO_ASSIGN_OR_RETURN(sql::StatementPtr stmt, sql::ParseStatement(sql));
  if (stmt->explain) {
    // EXPLAIN executes no tasks; return nothing through a Values plan.
    return Status::Unsupported(
        "use PrestoEngine::Explain for EXPLAIN statements");
  }
  Planner planner(&catalog_);
  PRESTO_ASSIGN_OR_RETURN(PlanNodePtr plan, planner.Plan(*stmt));
  Optimizer optimizer(&catalog_, options_.optimizer);
  PRESTO_ASSIGN_OR_RETURN(plan, optimizer.Optimize(std::move(plan)));
  Fragmenter fragmenter;
  PRESTO_ASSIGN_OR_RETURN(FragmentedPlan fragments,
                          fragmenter.Fragment(plan));
  std::string query_id =
      "query_" + std::to_string(next_query_id_.fetch_add(1));
  PRESTO_ASSIGN_OR_RETURN(std::shared_ptr<QueryExecution> execution,
                          coordinator_->Execute(query_id,
                                                std::move(fragments)));
  QueryResult result;
  result.execution_ = std::move(execution);
  // CTAS/INSERT: remember the target for commit after completion.
  if (stmt->kind == sql::StatementKind::kCreateTableAs ||
      stmt->kind == sql::StatementKind::kInsert) {
    std::string connector_name = stmt->target_name.size() == 2
                                     ? stmt->target_name[0]
                                     : catalog_.default_name();
    std::string table_name = stmt->target_name.back();
    PRESTO_ASSIGN_OR_RETURN(Connector * connector,
                            catalog_.Get(connector_name));
    PRESTO_ASSIGN_OR_RETURN(TableHandlePtr target,
                            connector->metadata().GetTable(table_name));
    result.write_connector_ = connector;
    result.write_target_ = std::move(target);
  }
  return result;
}

Result<std::vector<std::vector<Value>>> PrestoEngine::ExecuteAndFetch(
    const std::string& sql) {
  PRESTO_ASSIGN_OR_RETURN(QueryResult result, Execute(sql));
  return result.FetchAllRows();
}

}  // namespace presto
