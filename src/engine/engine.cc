#include "engine/engine.h"

#include "engine/observability_http.h"
#include "exec/spiller.h"
#include "fragment/fragmenter.h"
#include "plan/planner.h"
#include "sql/parser.h"

namespace presto {

Result<std::optional<Page>> QueryResult::Next() {
  PRESTO_ASSIGN_OR_RETURN(std::optional<Page> page,
                          execution_->results().Next());
  if (!page.has_value() && write_connector_ != nullptr && !write_committed_) {
    // Stream completed successfully: commit the CTAS/INSERT target.
    write_committed_ = true;
    PRESTO_RETURN_IF_ERROR(
        write_connector_->metadata().FinishWrite(*write_target_));
  }
  return page;
}

Result<std::vector<Page>> QueryResult::FetchAll() {
  std::vector<Page> pages;
  for (;;) {
    PRESTO_ASSIGN_OR_RETURN(std::optional<Page> page, Next());
    if (!page.has_value()) break;
    pages.push_back(std::move(*page));
  }
  PRESTO_RETURN_IF_ERROR(Wait());
  return pages;
}

Result<std::vector<std::vector<Value>>> QueryResult::FetchAllRows() {
  PRESTO_ASSIGN_OR_RETURN(std::vector<Page> pages, FetchAll());
  std::vector<std::vector<Value>> rows;
  for (const auto& page : pages) {
    for (int64_t r = 0; r < page.num_rows(); ++r) {
      rows.push_back(page.GetRow(r));
    }
  }
  return rows;
}

void QueryResult::Cancel() {
  execution_->Cancel(Status::Cancelled("cancelled by client"));
}

PrestoEngine::PrestoEngine(EngineOptions options)
    : options_(std::move(options)),
      metadata_manager_(
          std::make_unique<MetadataManager>(&catalog_, options_.metadata)),
      metrics_(std::make_unique<MetricsRegistry>()),
      tracker_(std::make_unique<QueryTracker>(metrics_.get())),
      cluster_(std::make_unique<Cluster>(options_.cluster)),
      coordinator_(std::make_unique<Coordinator>(cluster_.get(), &catalog_)) {
  coordinator_->SetMetadataManager(metadata_manager_.get());
  RegisterEngineGauges();
  cluster_->exchange().SetTraceRegistry(&traces_);
  // Latency histograms, installed into the executors/exchange as raw
  // pointers (the registry owns them and outlives both, member order).
  Histogram* quantum = metrics_->RegisterHistogram(
      "presto_executor_quantum_seconds",
      "Duration of MLFQ scheduling quanta",
      LogBuckets(0.00001, 4, 10));
  for (int i = 0; i < cluster_->local_workers(); ++i) {
    cluster_->worker(i).executor().set_quantum_histogram(quantum);
  }
  cluster_->exchange().set_poll_wait_histogram(metrics_->RegisterHistogram(
      "presto_exchange_poll_wait_seconds",
      "Server-side exchange long-poll wait per GET",
      LogBuckets(0.0001, 4, 8)));
  cluster_->exchange().set_http_request_histogram(
      metrics_->RegisterHistogram(
          "presto_exchange_http_request_seconds",
          "Client-side exchange HTTP request round-trip time per attempt",
          LogBuckets(0.0001, 4, 8)));
  // ISSUE 6: worker heartbeat round trips, as reported by the workers in
  // their next beat (micros; empty in kThreads mode).
  cluster_->liveness().set_rtt_histogram(metrics_->RegisterHistogram(
      "presto_heartbeat_rtt_micros",
      "Worker heartbeat POST round-trip time in microseconds",
      LogBuckets(100, 4, 8)));
  // ISSUE 7: task retry on worker death — how often tasks were re-created
  // and how long a recovery round takes end to end.
  // Each counter is labeled with the trace-instant name the coordinator
  // records at the same event (ISSUE 10), so a Prometheus sample can be
  // cross-referenced against the query's Chrome trace timeline. Readers
  // must register with the identical label set (labels are part of a
  // sample's identity).
  coordinator_->SetRecoveryInstruments(
      metrics_->RegisterCounter(
          "presto_task_retries_total",
          "Tasks re-created on a replacement worker after a worker death",
          {{"trace_instant", "task_recovery"}}),
      metrics_->RegisterHistogram(
          "presto_task_recovery_seconds",
          "Latency of one recovery round: restart-set computation through "
          "replacement launch and split-journal replay",
          LogBuckets(0.001, 4, 8)));
  // ISSUE 9: speculative execution of stragglers — replicas launched and
  // replicas that beat their original to completion.
  coordinator_->SetSpeculationInstruments(
      metrics_->RegisterCounter(
          "presto_task_speculations_total",
          "Speculative replicas launched against straggling tasks",
          {{"trace_instant", "task_speculate"}}),
      metrics_->RegisterCounter(
          "presto_speculation_wins_total",
          "Speculative replicas that finished before their original and "
          "were promoted",
          {{"trace_instant", "speculation_win"}}));
  // ISSUE 10: cross-process trace shipping, per hosting worker — spans
  // merged into coordinator traces and spans the worker's bounded recorder
  // dropped before they could ship.
  std::vector<Counter*> trace_shipped, trace_dropped;
  for (int w = 0; w < cluster_->num_workers(); ++w) {
    MetricLabels labels = {{"worker", "w" + std::to_string(w)}};
    trace_shipped.push_back(metrics_->RegisterCounter(
        "presto_trace_shipped_spans_total",
        "Worker trace spans merged into coordinator query traces", labels));
    trace_dropped.push_back(metrics_->RegisterCounter(
        "presto_trace_dropped_spans_total",
        "Worker trace spans dropped at the per-query cap before shipping",
        labels));
  }
  coordinator_->SetTraceShippingInstruments(std::move(trace_shipped),
                                            std::move(trace_dropped));
}

PrestoEngine::~PrestoEngine() { StopObservability(); }

Result<std::string> PrestoEngine::QueryTraceJson(
    const std::string& query_id) const {
  std::shared_ptr<QueryLifecycle> lifecycle = tracker_->Lookup(query_id);
  if (lifecycle == nullptr) {
    return Status::NotFound("no such query: " + query_id);
  }
  return lifecycle->trace()->ToChromeTraceJson();
}

Status PrestoEngine::StartObservability() {
  if (observability_ != nullptr) return Status::OK();
  auto service = std::make_unique<ObservabilityHttpService>(this);
  PRESTO_RETURN_IF_ERROR(service->Start());
  observability_ = std::move(service);
  return Status::OK();
}

void PrestoEngine::StopObservability() {
  if (observability_ == nullptr) return;
  observability_->Stop();
  observability_.reset();
}

int PrestoEngine::observability_port() const {
  return observability_ != nullptr ? observability_->port() : -1;
}

void PrestoEngine::RegisterEngineGauges() {
  // Gauges capture `this`; the registry outlives cluster_/coordinator_
  // (member order), and nothing renders metrics during destruction.
  metrics_->RegisterGauge(
      "presto_queries_running", "Queries currently holding an admission slot",
      [this] { return static_cast<double>(coordinator_->running_queries()); });
  metrics_->RegisterGauge(
      "presto_queries_queued", "Queries waiting for an admission slot",
      [this] { return static_cast<double>(coordinator_->queued_queries()); });
  metrics_->RegisterGauge(
      "presto_cluster_alive_workers",
      "Workers currently considered alive by the heartbeat failure detector",
      [this] {
        return static_cast<double>(
            cluster_->liveness().AliveCount(cluster_->num_workers()));
      });
  metrics_->RegisterGauge(
      "presto_memory_general_used_bytes",
      "General-pool bytes in use across all workers", [this] {
        int64_t total = 0;
        for (int i = 0; i < cluster_->local_workers(); ++i) {
          total += cluster_->worker(i).memory().general_used();
        }
        return static_cast<double>(total);
      });
  metrics_->RegisterGauge(
      "presto_memory_general_peak_bytes",
      "High-water mark of general-pool usage across all workers", [this] {
        int64_t total = 0;
        for (int i = 0; i < cluster_->local_workers(); ++i) {
          total += cluster_->worker(i).memory().peak_general_used();
        }
        return static_cast<double>(total);
      });
  metrics_->RegisterGauge(
      "presto_memory_reserved_used_bytes",
      "Reserved-pool bytes in use across all workers", [this] {
        int64_t total = 0;
        for (int i = 0; i < cluster_->local_workers(); ++i) {
          total += cluster_->worker(i).memory().reserved_used();
        }
        return static_cast<double>(total);
      });
  metrics_->RegisterGauge(
      "presto_memory_revocations_total",
      "Memory revocation (spill) requests issued across all workers", [this] {
        int64_t total = 0;
        for (int i = 0; i < cluster_->local_workers(); ++i) {
          total += cluster_->worker(i).memory().revocations();
        }
        return static_cast<double>(total);
      });
  metrics_->RegisterGauge(
      "presto_exchange_buffered_bytes",
      "Bytes currently buffered in the shuffle fabric", [this] {
        return static_cast<double>(cluster_->exchange().TotalBufferedBytes());
      });
  metrics_->RegisterGauge(
      "presto_exchange_transferred_bytes_total",
      "Cumulative bytes moved through the shuffle fabric", [this] {
        return static_cast<double>(cluster_->exchange().transferred_bytes());
      });
  metrics_->RegisterGauge(
      "presto_exchange_serialized_bytes",
      "Cumulative serialized (wire) bytes enqueued into exchange buffers",
      [this] {
        return static_cast<double>(
            cluster_->exchange().serialized_wire_bytes());
      });
  metrics_->RegisterGauge(
      "presto_exchange_compression_ratio",
      "Raw page bytes divided by serialized wire bytes across all shuffles",
      [this] {
        int64_t wire = cluster_->exchange().serialized_wire_bytes();
        if (wire == 0) return 1.0;
        return static_cast<double>(
                   cluster_->exchange().serialized_raw_bytes()) /
               static_cast<double>(wire);
      });
  metrics_->RegisterGauge(
      "presto_exchange_http_requests",
      "HTTP exchange requests attempted (including retried attempts)",
      [this] {
        return static_cast<double>(cluster_->exchange().http_requests());
      });
  metrics_->RegisterGauge(
      "presto_exchange_http_retries",
      "HTTP exchange attempts beyond the first per round trip", [this] {
        return static_cast<double>(cluster_->exchange().http_retries());
      });
  metrics_->RegisterGauge(
      "presto_exchange_inflight_bytes",
      "Wire bytes sent to consumers but not yet acknowledged", [this] {
        return static_cast<double>(cluster_->exchange().TotalInflightBytes());
      });
  metrics_->RegisterGauge(
      "presto_spill_compressed_bytes",
      "Cumulative compressed bytes written to spill files", [] {
        return static_cast<double>(Spiller::TotalCompressedBytes());
      });
  metrics_->RegisterGauge(
      "presto_executor_busy_nanos_total",
      "Cumulative executor busy time across all workers", [this] {
        return static_cast<double>(cluster_->total_busy_nanos());
      });
  // One labeled family instead of five level-suffixed names, so Prometheus
  // can aggregate/filter across levels.
  for (int level = 0; level < 5; ++level) {
    metrics_->RegisterGauge(
        "presto_executor_quanta_total",
        "Scheduling quanta executed per MLFQ level",
        [this, level] {
          int64_t total = 0;
          for (int i = 0; i < cluster_->local_workers(); ++i) {
            total += cluster_->worker(i).executor().quanta_at_level(level);
          }
          return static_cast<double>(total);
        },
        {{"level", std::to_string(level)}});
  }
  // ISSUE 8: planning-path cache layers. Gauges read the caches' internal
  // monotonic counters, so /v1/metrics always reports live totals.
  MetadataManager* mm = metadata_manager_.get();
  metrics_->RegisterGauge("presto_metadata_cache_hits",
                          "Metadata cache lookups served from cache",
                          [mm] {
                            return static_cast<double>(
                                mm->metadata_cache().hits());
                          });
  metrics_->RegisterGauge("presto_metadata_cache_misses",
                          "Metadata cache lookups that fetched from the "
                          "connector",
                          [mm] {
                            return static_cast<double>(
                                mm->metadata_cache().misses());
                          });
  metrics_->RegisterGauge("presto_metadata_cache_invalidations",
                          "Metadata cache entries dropped by version bumps "
                          "or explicit invalidation",
                          [mm] {
                            return static_cast<double>(
                                mm->metadata_cache().invalidations());
                          });
  metrics_->RegisterGauge("presto_split_cache_hits",
                          "Split enumerations replayed from cache", [mm] {
                            return static_cast<double>(
                                mm->split_cache().hits());
                          });
  metrics_->RegisterGauge("presto_split_cache_misses",
                          "Split enumerations that ran against the connector",
                          [mm] {
                            return static_cast<double>(
                                mm->split_cache().misses());
                          });
  metrics_->RegisterGauge("presto_split_cache_invalidations",
                          "Cached split enumerations dropped by table "
                          "mutations",
                          [mm] {
                            return static_cast<double>(
                                mm->split_cache().invalidations());
                          });
  metrics_->RegisterGauge("presto_plan_cache_hits",
                          "Queries planned from a cached fragmented plan",
                          [mm] {
                            return static_cast<double>(
                                mm->plan_cache().hits());
                          });
  metrics_->RegisterGauge("presto_plan_cache_misses",
                          "Queries that ran the full planning pipeline",
                          [mm] {
                            return static_cast<double>(
                                mm->plan_cache().misses());
                          });
  metrics_->RegisterGauge("presto_plan_cache_invalidations",
                          "Cached plans dropped because a dependency table "
                          "mutated",
                          [mm] {
                            return static_cast<double>(
                                mm->plan_cache().invalidations());
                          });
}

Status PrestoEngine::InvalidateMetadata(const std::string& catalog,
                                        const std::string& table) {
  PRESTO_ASSIGN_OR_RETURN(Connector * connector, catalog_.Get(catalog));
  if (!table.empty()) {
    metadata_manager_->Invalidate(catalog, table);
    return Status::OK();
  }
  for (const auto& name : connector->metadata().ListTables()) {
    metadata_manager_->Invalidate(catalog, name);
  }
  return Status::OK();
}

Result<FragmentedPlan> PrestoEngine::PlanStatement(
    const sql::Statement& stmt, const std::string& sql,
    TraceRecorder* trace) {
  auto timed = [trace](const char* name, auto fn) {
    int64_t start = trace != nullptr ? trace->NowNanos() : 0;
    auto result = fn();
    if (trace != nullptr) {
      trace->RecordSpan("coordinator", name, /*pid=*/0, /*tid=*/0, start,
                        trace->NowNanos() - start);
    }
    return result;
  };
  // Only SELECT plans are cacheable: CTAS/INSERT planning calls
  // BeginCreateTable, which mutates connector state and must run per query.
  bool cacheable = options_.metadata.enable_plan_cache &&
                   stmt.kind == sql::StatementKind::kSelect;
  uint64_t fingerprint = 0;
  if (cacheable) {
    fingerprint = FingerprintSql(sql);
    if (std::optional<FragmentedPlan> cached =
            metadata_manager_->plan_cache().Lookup(fingerprint, catalog_)) {
      if (trace != nullptr) {
        trace->RecordInstant("coordinator", "plan-cache-hit", /*pid=*/0,
                             /*tid=*/0,
                             {{"fingerprint", std::to_string(fingerprint)}});
      }
      return std::move(*cached);
    }
  }
  std::unique_ptr<MetadataSnapshot> snapshot = metadata_manager_->NewSnapshot();
  Planner planner(snapshot.get());
  PRESTO_ASSIGN_OR_RETURN(
      PlanNodePtr plan, timed("plan", [&] { return planner.Plan(stmt); }));
  Optimizer optimizer(snapshot.get(), options_.optimizer);
  PRESTO_ASSIGN_OR_RETURN(plan, timed("optimize", [&] {
                            return optimizer.Optimize(std::move(plan));
                          }));
  Fragmenter fragmenter;
  PRESTO_ASSIGN_OR_RETURN(FragmentedPlan fragments, timed("fragment", [&] {
                            return fragmenter.Fragment(plan);
                          }));
  if (trace != nullptr && snapshot->cache_hits() > 0) {
    trace->RecordInstant(
        "coordinator", "metadata-cache-hit", /*pid=*/0, /*tid=*/0,
        {{"tables_from_cache", std::to_string(snapshot->cache_hits())},
         {"tables_resolved", std::to_string(snapshot->resolutions())}});
  }
  if (cacheable) {
    metadata_manager_->plan_cache().Insert(fingerprint, fragments,
                                           snapshot->deps(), catalog_);
  }
  return fragments;
}

Result<std::string> PrestoEngine::Explain(const std::string& sql) {
  PRESTO_ASSIGN_OR_RETURN(sql::StatementPtr stmt, sql::ParseStatement(sql));
  PRESTO_ASSIGN_OR_RETURN(FragmentedPlan fragments,
                          PlanStatement(*stmt, sql));
  return fragments.ToString();
}

Result<std::shared_ptr<QueryExecution>> PrestoEngine::Launch(
    const sql::Statement& stmt, const std::string& sql,
    const std::string& query_id) {
  std::shared_ptr<QueryLifecycle> lifecycle =
      tracker_->Register(query_id, sql);
  traces_.Register(query_id, lifecycle->trace());
  lifecycle->MarkPlanning();
  Result<FragmentedPlan> fragments =
      PlanStatement(stmt, sql, lifecycle->trace().get());
  if (!fragments.ok()) {
    lifecycle->Finalize(fragments.status(), /*cancelled=*/false,
                        QueryStats{});
    return fragments.status();
  }
  Result<std::shared_ptr<QueryExecution>> execution = coordinator_->Execute(
      query_id, std::move(fragments).value(), lifecycle);
  if (!execution.ok()) {
    lifecycle->Finalize(execution.status(), /*cancelled=*/false,
                        QueryStats{});
    return execution.status();
  }
  // weak_ptr: a shared_ptr here would close a lifecycle->execution cycle
  // that Finalize() breaks while holding the execution's mutex.
  std::weak_ptr<QueryExecution> weak = execution.value();
  lifecycle->SetLiveStatsProvider([weak] {
    std::shared_ptr<QueryExecution> live = weak.lock();
    return live != nullptr ? live->StatsSnapshot() : QueryStats{};
  });
  lifecycle->SetTaskProgressProvider([weak] {
    std::shared_ptr<QueryExecution> live = weak.lock();
    return live != nullptr ? live->TaskProgressSnapshot()
                           : std::vector<TaskProgress>{};
  });
  return execution;
}

Result<QueryResult> PrestoEngine::Execute(const std::string& sql) {
  PRESTO_ASSIGN_OR_RETURN(sql::StatementPtr stmt, sql::ParseStatement(sql));
  if (stmt->explain) {
    // EXPLAIN executes no result stream; the plan text is the answer.
    return Status::Unsupported(
        "use PrestoEngine::Explain / ExplainAnalyze for EXPLAIN statements");
  }
  std::string query_id =
      "query_" + std::to_string(next_query_id_.fetch_add(1));
  PRESTO_ASSIGN_OR_RETURN(std::shared_ptr<QueryExecution> execution,
                          Launch(*stmt, sql, query_id));
  QueryResult result;
  result.execution_ = std::move(execution);
  // CTAS/INSERT: remember the target for commit after completion.
  if (stmt->kind == sql::StatementKind::kCreateTableAs ||
      stmt->kind == sql::StatementKind::kInsert) {
    std::string connector_name = stmt->target_name.size() == 2
                                     ? stmt->target_name[0]
                                     : catalog_.default_name();
    std::string table_name = stmt->target_name.back();
    PRESTO_ASSIGN_OR_RETURN(Connector * connector,
                            catalog_.Get(connector_name));
    PRESTO_ASSIGN_OR_RETURN(TableHandlePtr target,
                            connector->metadata().GetTable(table_name));
    result.write_connector_ = connector;
    result.write_target_ = std::move(target);
  }
  return result;
}

Result<std::string> PrestoEngine::ExplainAnalyze(const std::string& sql) {
  // Accepts both "EXPLAIN ANALYZE <query>" and a bare query: the parser
  // strips the EXPLAIN prefix into statement flags either way.
  PRESTO_ASSIGN_OR_RETURN(sql::StatementPtr stmt, sql::ParseStatement(sql));
  std::string query_id =
      "query_" + std::to_string(next_query_id_.fetch_add(1));
  PRESTO_ASSIGN_OR_RETURN(std::shared_ptr<QueryExecution> execution,
                          Launch(*stmt, sql, query_id));
  // Drain the result stream (rows are discarded; only stats matter).
  for (;;) {
    PRESTO_ASSIGN_OR_RETURN(std::optional<Page> page,
                            execution->results().Next());
    if (!page.has_value()) break;
  }
  PRESTO_RETURN_IF_ERROR(execution->Wait());
  std::string text =
      RenderAnnotatedPlan(execution->plan(), execution->StatsSnapshot());
  if (stmt->explain_verbose) {
    // EXPLAIN ANALYZE VERBOSE: append the compact trace timeline (the full
    // Chrome JSON stays behind QueryTraceJson / the /v1 trace endpoint).
    std::shared_ptr<QueryLifecycle> lifecycle = tracker_->Lookup(query_id);
    if (lifecycle != nullptr) {
      text += "\nTimeline:\n" + lifecycle->trace()->ToTimelineText();
    }
  }
  return text;
}

Result<std::vector<std::vector<Value>>> PrestoEngine::ExecuteAndFetch(
    const std::string& sql) {
  PRESTO_ASSIGN_OR_RETURN(sql::StatementPtr stmt, sql::ParseStatement(sql));
  if (stmt->explain) {
    PRESTO_ASSIGN_OR_RETURN(
        std::string text,
        stmt->explain_analyze ? ExplainAnalyze(sql) : Explain(sql));
    return std::vector<std::vector<Value>>{{Value::Varchar(text)}};
  }
  PRESTO_ASSIGN_OR_RETURN(QueryResult result, Execute(sql));
  return result.FetchAllRows();
}

Result<QueryInfo> PrestoEngine::QueryInfoFor(
    const std::string& query_id) const {
  return tracker_->Info(query_id);
}

std::vector<QueryInfo> PrestoEngine::ListQueries() const {
  return tracker_->List();
}

void PrestoEngine::AddEventListener(std::shared_ptr<EventListener> listener) {
  tracker_->AddListener(std::move(listener));
}

}  // namespace presto
