#include "vector/block_builder.h"

#include "vector/decoded_block.h"

namespace presto {

void BlockBuilder::AppendNull() {
  nulls_.resize(static_cast<size_t>(count_), 0);
  nulls_.push_back(1);
  any_null_ = true;
  switch (type_) {
    case TypeKind::kBoolean:
      bools_.push_back(0);
      break;
    case TypeKind::kBigint:
    case TypeKind::kDate:
    case TypeKind::kUnknown:
      longs_.push_back(0);
      break;
    case TypeKind::kDouble:
      doubles_.push_back(0);
      break;
    case TypeKind::kVarchar:
      offsets_.push_back(static_cast<int32_t>(bytes_.size()));
      break;
  }
  ++count_;
}

void BlockBuilder::AppendBoolean(bool v) {
  PRESTO_DCHECK(type_ == TypeKind::kBoolean);
  if (any_null_) nulls_.push_back(0);
  bools_.push_back(v ? 1 : 0);
  ++count_;
}

void BlockBuilder::AppendBigint(int64_t v) {
  PRESTO_DCHECK(type_ == TypeKind::kBigint || type_ == TypeKind::kDate);
  if (any_null_) nulls_.push_back(0);
  longs_.push_back(v);
  ++count_;
}

void BlockBuilder::AppendDouble(double v) {
  PRESTO_DCHECK(type_ == TypeKind::kDouble);
  if (any_null_) nulls_.push_back(0);
  doubles_.push_back(v);
  ++count_;
}

void BlockBuilder::AppendString(std::string_view v) {
  PRESTO_DCHECK(type_ == TypeKind::kVarchar);
  if (any_null_) nulls_.push_back(0);
  bytes_.append(v.data(), v.size());
  offsets_.push_back(static_cast<int32_t>(bytes_.size()));
  ++count_;
}

void BlockBuilder::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case TypeKind::kBoolean:
      AppendBoolean(v.AsBoolean());
      break;
    case TypeKind::kBigint:
    case TypeKind::kDate:
      AppendBigint(v.AsBigint());
      break;
    case TypeKind::kDouble:
      AppendDouble(v.AsDouble());
      break;
    case TypeKind::kVarchar:
      AppendString(v.AsVarchar());
      break;
    default:
      PRESTO_UNREACHABLE();
  }
}

void BlockBuilder::AppendFrom(const Block& block, int64_t row) {
  if (block.IsNull(row)) {
    AppendNull();
    return;
  }
  switch (type_) {
    case TypeKind::kVarchar: {
      // Avoid boxing for strings: go through encodings manually.
      switch (block.encoding()) {
        case BlockEncoding::kVarchar:
          AppendString(static_cast<const VarcharBlock&>(block).StringAt(row));
          return;
        default: {
          AppendString(block.GetValue(row).AsVarchar());
          return;
        }
      }
    }
    default:
      AppendValue(block.GetValue(row));
  }
}

BlockPtr BlockBuilder::Build() {
  if (any_null_) nulls_.resize(static_cast<size_t>(count_), 0);
  std::vector<uint8_t> nulls = any_null_ ? std::move(nulls_)
                                         : std::vector<uint8_t>{};
  BlockPtr out;
  switch (type_) {
    case TypeKind::kBoolean:
      out = std::make_shared<ByteBlock>(type_, std::move(bools_),
                                        std::move(nulls));
      break;
    case TypeKind::kBigint:
    case TypeKind::kDate:
      out = std::make_shared<LongBlock>(type_, std::move(longs_),
                                        std::move(nulls));
      break;
    case TypeKind::kUnknown:
      out = std::make_shared<LongBlock>(TypeKind::kBigint, std::move(longs_),
                                        std::move(nulls));
      break;
    case TypeKind::kDouble:
      out = std::make_shared<DoubleBlock>(type_, std::move(doubles_),
                                          std::move(nulls));
      break;
    case TypeKind::kVarchar:
      out = std::make_shared<VarcharBlock>(std::move(offsets_),
                                           std::move(bytes_),
                                           std::move(nulls));
      break;
  }
  count_ = 0;
  any_null_ = false;
  nulls_.clear();
  bools_.clear();
  longs_.clear();
  doubles_.clear();
  offsets_ = {0};
  bytes_.clear();
  return out;
}

}  // namespace presto
