#ifndef PRESTOCPP_VECTOR_PAGE_H_
#define PRESTOCPP_VECTOR_PAGE_H_

#include <string>
#include <vector>

#include "types/value.h"
#include "vector/block.h"

namespace presto {

/// The unit of data flow between operators and across shuffles: a columnar
/// encoding of a sequence of rows (§IV-E1). All blocks share the row count.
class Page {
 public:
  Page() = default;
  explicit Page(std::vector<BlockPtr> blocks)
      : blocks_(std::move(blocks)),
        num_rows_(blocks_.empty() ? 0 : blocks_[0]->size()) {
    for (const auto& b : blocks_) PRESTO_DCHECK(b->size() == num_rows_);
  }
  /// A page with rows but no columns (e.g. SELECT count(*) intermediate).
  Page(std::vector<BlockPtr> blocks, int64_t num_rows)
      : blocks_(std::move(blocks)), num_rows_(num_rows) {}

  int64_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return blocks_.size(); }
  const BlockPtr& block(size_t i) const { return blocks_[i]; }
  const std::vector<BlockPtr>& blocks() const { return blocks_; }

  /// Approximate memory footprint for accounting and buffer sizing. Blocks
  /// shared within the page (e.g. one dictionary wrapped by several
  /// columns) are counted once.
  int64_t SizeInBytes() const {
    std::vector<const Block*> seen;
    seen.reserve(blocks_.size());
    int64_t total = 0;
    for (const auto& b : blocks_) total += b->RetainedBytes(&seen);
    return total;
  }

  /// Boxed row (tests, reference executor, result rendering).
  std::vector<Value> GetRow(int64_t i) const {
    std::vector<Value> row;
    row.reserve(blocks_.size());
    for (const auto& b : blocks_) row.push_back(b->GetValue(i));
    return row;
  }

  /// New page with the selected positions from every column.
  Page CopyPositions(const int32_t* positions, int64_t n) const {
    std::vector<BlockPtr> out;
    out.reserve(blocks_.size());
    for (const auto& b : blocks_) out.push_back(b->CopyPositions(positions, n));
    return Page(std::move(out), n);
  }

  /// Fully decoded copy (flattens RLE/dictionary, loads lazy columns).
  Page Flatten() const {
    std::vector<BlockPtr> out;
    out.reserve(blocks_.size());
    for (const auto& b : blocks_) out.push_back(b->Flatten());
    return Page(std::move(out), num_rows_);
  }

  /// Debug rendering, one line per row.
  std::string ToString() const;

 private:
  std::vector<BlockPtr> blocks_;
  int64_t num_rows_ = 0;
};

}  // namespace presto

#endif  // PRESTOCPP_VECTOR_PAGE_H_
