#ifndef PRESTOCPP_VECTOR_PAGE_SERDE_H_
#define PRESTOCPP_VECTOR_PAGE_SERDE_H_

#include <string>

#include "common/status.h"
#include "vector/page.h"

namespace presto {

/// Binary page serialization used by the spiller (§IV-F2) and to measure
/// shuffle byte volumes. Blocks are flattened before writing; encodings are
/// a transit optimization we do not persist.
std::string SerializePage(const Page& page);

/// Parses a page previously produced by SerializePage starting at
/// data[*offset]; advances *offset past the page.
Result<Page> DeserializePage(const std::string& data, size_t* offset);

}  // namespace presto

#endif  // PRESTOCPP_VECTOR_PAGE_SERDE_H_
