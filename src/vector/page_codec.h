#ifndef PRESTOCPP_VECTOR_PAGE_CODEC_H_
#define PRESTOCPP_VECTOR_PAGE_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "vector/page.h"

namespace presto {

/// Per-frame compression applied to the serialized payload. The codec keeps
/// a compressed payload only when it is actually smaller, so a frame
/// encoded with kLz4 may still carry a kNone payload (incompressible data).
enum class PageCompression : uint8_t {
  kNone = 0,
  kLz4 = 1,
};

struct PageCodecOptions {
  PageCompression compression = PageCompression::kNone;
  /// Serialize dictionary/RLE blocks as-is (§V-E: encodings survive the
  /// operator boundary) instead of flattening. Dictionaries shared by
  /// several blocks of one page are written once and back-referenced.
  bool preserve_encodings = true;
  /// XXH64 over the stored payload, verified before decode.
  bool checksum = true;
};

/// Versioned binary frame format for pages crossing a task boundary: the
/// shuffle wire format (§IV-E2 "pages transferred in serialized form"), the
/// spill file format (§IV-F2), and storc chunk payloads all go through this
/// one codec.
///
/// Frame layout (little-endian):
///   u32 magic            'P','G','F','1'
///   u8  version          kVersion
///   u8  compression      PageCompression of the stored payload
///   u8  flags            bit 0: checksum present
///   u8  reserved         0
///   u32 raw_len          payload size before compression
///   u32 wire_len         payload size as stored
///   u64 checksum         XXH64 of the stored payload (0 when absent)
///   u8[wire_len]         payload
///
/// Payload: u32 num_columns, i64 num_rows, then one block tree per column.
/// Every block starts with a BlockEncoding tag; kRle wraps its size-1 value
/// block recursively, kDictionary writes its dictionary inline on first
/// occurrence and a back-reference on every later one (dedup-by-pointer
/// within the frame). kLazy never appears on the wire: encoding a lazy
/// block forces its (memoized, hence exactly-once) load.
class PageCodec {
 public:
  static constexpr uint32_t kMagic = 0x31464750;  // "PGF1"
  static constexpr uint8_t kVersion = 1;

  explicit PageCodec(PageCodecOptions options = {}) : options_(options) {}

  const PageCodecOptions& options() const { return options_; }

  /// One encoded page plus the byte accounting the exchange reports.
  struct Frame {
    std::string bytes;     // full frame: header + stored payload
    int64_t rows = 0;
    int64_t raw_bytes = 0;  // payload size before compression

    int64_t wire_bytes() const { return static_cast<int64_t>(bytes.size()); }
  };

  Frame Encode(const Page& page) const;

  /// Parses the frame starting at data[*offset]; advances *offset past it.
  /// Corrupt input — bad magic, checksum mismatch, truncation, out-of-range
  /// dictionary indices — returns an IOError, never crashes.
  Result<Page> Decode(std::string_view data, size_t* offset) const;

  Result<Page> Decode(const Frame& frame) const {
    size_t offset = 0;
    return Decode(frame.bytes, &offset);
  }

 private:
  PageCodecOptions options_;
};

}  // namespace presto

#endif  // PRESTOCPP_VECTOR_PAGE_CODEC_H_
