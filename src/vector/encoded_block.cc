#include "vector/encoded_block.h"

namespace presto {

BlockPtr RleBlock::Flatten() const {
  std::vector<int32_t> positions(static_cast<size_t>(size_), 0);
  return value_->CopyPositions(positions.data(), size_);
}

BlockPtr DictionaryBlock::Flatten() const {
  return dictionary_->CopyPositions(indices_.data(), size_);
}

const BlockPtr& LazyBlock::Load() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!loaded_) {
    materialized_ = loader_();
    PRESTO_CHECK(materialized_ != nullptr);
    PRESTO_CHECK(materialized_->size() == size_);
    loaded_ = true;
    loader_ = nullptr;
    if (stats_ != nullptr) {
      stats_->blocks_loaded.fetch_add(1, std::memory_order_relaxed);
      stats_->cells_loaded.fetch_add(size_, std::memory_order_relaxed);
      stats_->bytes_loaded.fetch_add(materialized_->SizeInBytes(),
                                     std::memory_order_relaxed);
    }
  }
  return materialized_;
}

BlockPtr MakeConstantBlock(const Value& value, int64_t size) {
  BlockPtr one = MakeBlockFromValues(
      value.type() == TypeKind::kUnknown ? TypeKind::kBigint : value.type(),
      {value});
  return std::make_shared<RleBlock>(std::move(one), size);
}

}  // namespace presto
