#ifndef PRESTOCPP_VECTOR_DECODED_BLOCK_H_
#define PRESTOCPP_VECTOR_DECODED_BLOCK_H_

#include <string_view>

#include "vector/block.h"
#include "vector/encoded_block.h"

namespace presto {

/// Uniform O(1) accessor over any block encoding, in the style of Velox's
/// DecodedVector. Decoding resolves lazy blocks, exposes the flat "base"
/// block, and provides the logical-row -> base-row mapping so kernels can be
/// written once and run over flat, RLE, and dictionary data alike.
class DecodedBlock {
 public:
  DecodedBlock() = default;

  /// Prepares accessors for `block`. The block must outlive this object.
  /// Triggers lazy materialization.
  void Decode(const BlockPtr& block);

  int64_t size() const { return size_; }

  /// True if every row maps to base row 0 (RLE source).
  bool is_constant() const { return constant_; }

  /// True if the source was dictionary-encoded (fast paths in PageProcessor).
  bool is_dictionary() const { return indices_ != nullptr; }

  /// The flat (or varchar) block rows map into.
  const Block& base() const { return *base_; }
  const BlockPtr& base_ptr() const { return base_holder_; }

  /// Maps logical row i to a row in base().
  int32_t IndexAt(int64_t i) const {
    if (constant_) return 0;
    if (indices_ != nullptr) return indices_[i];
    return static_cast<int32_t>(i);
  }

  bool IsNull(int64_t i) const {
    if (base_nulls_ == nullptr) return false;
    return base_nulls_[IndexAt(i)] != 0;
  }

  bool MayHaveNulls() const { return base_nulls_ != nullptr; }

  /// Typed access for fixed-width types. T must match the base block's
  /// physical type (uint8_t, int64_t, double).
  template <typename T>
  T ValueAt(int64_t i) const {
    return static_cast<const T*>(raw_values_)[IndexAt(i)];
  }

  std::string_view StringAt(int64_t i) const {
    return varchar_->StringAt(IndexAt(i));
  }

  uint64_t HashAt(int64_t i) const { return base_->HashAt(IndexAt(i)); }

  Value GetValue(int64_t i) const { return base_->GetValue(IndexAt(i)); }

 private:
  const Block* base_ = nullptr;
  BlockPtr base_holder_;        // keeps flattened/lazy bases alive
  BlockPtr dictionary_holder_;  // keeps the dictionary wrapper (indices) alive
  const VarcharBlock* varchar_ = nullptr;
  const void* raw_values_ = nullptr;
  const uint8_t* base_nulls_ = nullptr;
  const int32_t* indices_ = nullptr;
  int64_t size_ = 0;
  bool constant_ = false;
};

}  // namespace presto

#endif  // PRESTOCPP_VECTOR_DECODED_BLOCK_H_
