#include "vector/decoded_block.h"

namespace presto {

namespace {

// Extracts raw value/null pointers from a flat or varchar block.
struct BasePointers {
  const void* values = nullptr;
  const uint8_t* nulls = nullptr;
  const VarcharBlock* varchar = nullptr;
};

BasePointers GetBasePointers(const Block& base) {
  BasePointers out;
  switch (base.type()) {
    case TypeKind::kBoolean: {
      const auto& b = static_cast<const ByteBlock&>(base);
      out.values = b.raw_values();
      out.nulls = b.raw_nulls();
      break;
    }
    case TypeKind::kBigint:
    case TypeKind::kDate: {
      const auto& b = static_cast<const LongBlock&>(base);
      out.values = b.raw_values();
      out.nulls = b.raw_nulls();
      break;
    }
    case TypeKind::kDouble: {
      const auto& b = static_cast<const DoubleBlock&>(base);
      out.values = b.raw_values();
      out.nulls = b.raw_nulls();
      break;
    }
    case TypeKind::kVarchar: {
      const auto& b = static_cast<const VarcharBlock&>(base);
      out.varchar = &b;
      out.nulls = b.raw_nulls();
      break;
    }
    default:
      PRESTO_UNREACHABLE();
  }
  return out;
}

// Resolves a lazy wrapper, returning the materialized block (or the input).
BlockPtr ResolveLazy(BlockPtr block) {
  while (block->encoding() == BlockEncoding::kLazy) {
    block = static_cast<const LazyBlock*>(block.get())->Load();
  }
  return block;
}

}  // namespace

void DecodedBlock::Decode(const BlockPtr& block) {
  size_ = block->size();
  constant_ = false;
  indices_ = nullptr;

  BlockPtr current = ResolveLazy(block);

  if (current->encoding() == BlockEncoding::kRle) {
    constant_ = true;
    current = ResolveLazy(
        static_cast<const RleBlock*>(current.get())->value_block());
  } else if (current->encoding() == BlockEncoding::kDictionary) {
    const auto* dict = static_cast<const DictionaryBlock*>(current.get());
    indices_ = dict->indices().data();
    // Keep `current` (the dictionary wrapper) alive via dictionary_holder_
    // so indices_ stays valid even if the caller drops `block`.
    dictionary_holder_ = current;
    current = ResolveLazy(dict->dictionary());
  }

  if (current->encoding() != BlockEncoding::kFlat &&
      current->encoding() != BlockEncoding::kVarchar) {
    // Nested encodings (e.g. dictionary over RLE): flatten the base.
    current = current->Flatten();
  }

  base_holder_ = std::move(current);
  base_ = base_holder_.get();
  BasePointers ptrs = GetBasePointers(*base_);
  raw_values_ = ptrs.values;
  varchar_ = ptrs.varchar;
  base_nulls_ = ptrs.nulls;
}

}  // namespace presto
