#include "vector/page_codec.h"

#include <cstring>
#include <unordered_map>
#include <vector>

#include "common/compression.h"
#include "common/hash.h"
#include "vector/encoded_block.h"

namespace presto {

namespace {

constexpr uint8_t kFlagChecksum = 0x1;
constexpr size_t kHeaderSize = 4 + 1 + 1 + 1 + 1 + 4 + 4 + 8;
// Parsing limits that keep a corrupt header from driving giant allocations
// before any payload bounds check can fire.
constexpr int64_t kMaxRows = int64_t{1} << 40;
constexpr uint32_t kMaxColumns = 1 << 20;

template <typename T>
void WritePod(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(std::string_view in, size_t* off, T* v) {
  if (in.size() - *off < sizeof(T)) return false;
  std::memcpy(v, in.data() + *off, sizeof(T));
  *off += sizeof(T);
  return true;
}

bool ReadRaw(std::string_view in, size_t* off, void* data, size_t len) {
  if (in.size() - *off < len) return false;
  std::memcpy(data, in.data() + *off, len);
  *off += len;
  return true;
}

// ---- payload encoding ----

// Dictionaries already written into this frame, keyed by block identity.
using DictionaryMap = std::unordered_map<const Block*, uint32_t>;

template <typename T>
void WriteFlat(std::string* out, const FlatBlock<T>& b) {
  auto n = static_cast<size_t>(b.size());
  WritePod<uint8_t>(out, static_cast<uint8_t>(b.type()));
  WritePod<int64_t>(out, b.size());
  uint8_t has_nulls = b.raw_nulls() != nullptr ? 1 : 0;
  WritePod<uint8_t>(out, has_nulls);
  out->append(reinterpret_cast<const char*>(b.raw_values()), n * sizeof(T));
  if (has_nulls) {
    out->append(reinterpret_cast<const char*>(b.raw_nulls()), n);
  }
}

void WriteVarchar(std::string* out, const VarcharBlock& vb) {
  auto n = static_cast<size_t>(vb.size());
  WritePod<int64_t>(out, vb.size());
  uint8_t has_nulls = vb.raw_nulls() != nullptr ? 1 : 0;
  WritePod<uint8_t>(out, has_nulls);
  // Canonical offsets/bytes rebuilt from string views (a VarcharBlock may
  // alias a larger byte buffer).
  std::vector<int32_t> offsets;
  offsets.reserve(n + 1);
  offsets.push_back(0);
  std::string bytes;
  for (size_t i = 0; i < n; ++i) {
    if (!vb.IsNull(static_cast<int64_t>(i))) {
      auto sv = vb.StringAt(static_cast<int64_t>(i));
      bytes.append(sv.data(), sv.size());
    }
    offsets.push_back(static_cast<int32_t>(bytes.size()));
  }
  out->append(reinterpret_cast<const char*>(offsets.data()),
              offsets.size() * sizeof(int32_t));
  WritePod<uint64_t>(out, bytes.size());
  out->append(bytes);
  if (has_nulls) {
    out->append(reinterpret_cast<const char*>(vb.raw_nulls()), n);
  }
}

void WriteBlock(std::string* out, const BlockPtr& block, bool preserve,
                DictionaryMap* dictionaries) {
  const Block* b = block.get();
  switch (b->encoding()) {
    case BlockEncoding::kLazy: {
      // Exactly-once materialization at the serialization boundary: Load()
      // is memoized, and the lazy wrapper itself never reaches the wire.
      const auto& lazy = static_cast<const LazyBlock&>(*b);
      WriteBlock(out, lazy.Load(), preserve, dictionaries);
      return;
    }
    case BlockEncoding::kRle: {
      if (!preserve) break;
      const auto& rle = static_cast<const RleBlock&>(*b);
      WritePod<uint8_t>(out, static_cast<uint8_t>(BlockEncoding::kRle));
      WritePod<int64_t>(out, rle.size());
      WriteBlock(out, rle.value_block(), preserve, dictionaries);
      return;
    }
    case BlockEncoding::kDictionary: {
      if (!preserve) break;
      const auto& dict = static_cast<const DictionaryBlock&>(*b);
      WritePod<uint8_t>(out,
                        static_cast<uint8_t>(BlockEncoding::kDictionary));
      WritePod<int64_t>(out, dict.size());
      auto it = dictionaries->find(dict.dictionary().get());
      if (it != dictionaries->end()) {
        WritePod<uint8_t>(out, 1);  // back-reference
        WritePod<uint32_t>(out, it->second);
      } else {
        WritePod<uint8_t>(out, 0);  // inline dictionary
        dictionaries->emplace(dict.dictionary().get(),
                              static_cast<uint32_t>(dictionaries->size()));
        WriteBlock(out, dict.dictionary(), preserve, dictionaries);
      }
      out->append(reinterpret_cast<const char*>(dict.indices().data()),
                  dict.indices().size() * sizeof(int32_t));
      return;
    }
    case BlockEncoding::kFlat:
    case BlockEncoding::kVarchar:
      break;
  }
  BlockPtr flat =
      b->encoding() == BlockEncoding::kFlat ||
              b->encoding() == BlockEncoding::kVarchar
          ? block
          : b->Flatten();
  if (flat->encoding() == BlockEncoding::kVarchar) {
    WritePod<uint8_t>(out, static_cast<uint8_t>(BlockEncoding::kVarchar));
    WriteVarchar(out, static_cast<const VarcharBlock&>(*flat));
    return;
  }
  WritePod<uint8_t>(out, static_cast<uint8_t>(BlockEncoding::kFlat));
  switch (flat->type()) {
    case TypeKind::kBoolean:
      WriteFlat(out, static_cast<const ByteBlock&>(*flat));
      return;
    case TypeKind::kBigint:
    case TypeKind::kDate:
      WriteFlat(out, static_cast<const LongBlock&>(*flat));
      return;
    case TypeKind::kDouble:
      WriteFlat(out, static_cast<const DoubleBlock&>(*flat));
      return;
    default:
      PRESTO_UNREACHABLE();
  }
}

// ---- payload decoding ----

template <typename T>
Result<BlockPtr> ReadFlatValues(std::string_view in, size_t* off,
                                TypeKind type, int64_t rows) {
  uint8_t has_nulls = 0;
  if (!ReadPod(in, off, &has_nulls)) {
    return Status::IOError("page frame: truncated flat header");
  }
  auto n = static_cast<size_t>(rows);
  std::vector<T> values(n);
  if (!ReadRaw(in, off, values.data(), n * sizeof(T))) {
    return Status::IOError("page frame: truncated flat values");
  }
  std::vector<uint8_t> nulls;
  if (has_nulls != 0) {
    nulls.resize(n);
    if (!ReadRaw(in, off, nulls.data(), n)) {
      return Status::IOError("page frame: truncated flat nulls");
    }
  }
  return BlockPtr(std::make_shared<FlatBlock<T>>(type, std::move(values),
                                                 std::move(nulls)));
}

Result<BlockPtr> ReadBlock(std::string_view in, size_t* off,
                           std::vector<BlockPtr>* dictionaries) {
  uint8_t encoding_byte = 0;
  if (!ReadPod(in, off, &encoding_byte)) {
    return Status::IOError("page frame: truncated block encoding");
  }
  switch (static_cast<BlockEncoding>(encoding_byte)) {
    case BlockEncoding::kFlat: {
      uint8_t type_byte = 0;
      int64_t rows = 0;
      if (!ReadPod(in, off, &type_byte) || !ReadPod(in, off, &rows)) {
        return Status::IOError("page frame: truncated flat block");
      }
      if (rows < 0 || rows > kMaxRows) {
        return Status::IOError("page frame: bad flat row count");
      }
      auto type = static_cast<TypeKind>(type_byte);
      switch (type) {
        case TypeKind::kBoolean:
          return ReadFlatValues<uint8_t>(in, off, type, rows);
        case TypeKind::kBigint:
        case TypeKind::kDate:
          return ReadFlatValues<int64_t>(in, off, type, rows);
        case TypeKind::kDouble:
          return ReadFlatValues<double>(in, off, type, rows);
        default:
          return Status::IOError("page frame: unknown flat type");
      }
    }
    case BlockEncoding::kVarchar: {
      int64_t rows = 0;
      uint8_t has_nulls = 0;
      if (!ReadPod(in, off, &rows) || !ReadPod(in, off, &has_nulls)) {
        return Status::IOError("page frame: truncated varchar header");
      }
      if (rows < 0 || rows > kMaxRows) {
        return Status::IOError("page frame: bad varchar row count");
      }
      auto n = static_cast<size_t>(rows);
      std::vector<int32_t> offsets(n + 1);
      if (!ReadRaw(in, off, offsets.data(),
                   offsets.size() * sizeof(int32_t))) {
        return Status::IOError("page frame: truncated varchar offsets");
      }
      uint64_t nbytes = 0;
      if (!ReadPod(in, off, &nbytes)) {
        return Status::IOError("page frame: truncated varchar length");
      }
      if (nbytes > in.size() - *off) {
        return Status::IOError("page frame: truncated varchar bytes");
      }
      // Offsets must be monotone within [0, nbytes] or StringAt would read
      // out of bounds later — validate here so a corrupt frame with a
      // disabled checksum still fails cleanly.
      if (offsets.front() != 0 ||
          offsets.back() != static_cast<int32_t>(nbytes)) {
        return Status::IOError("page frame: bad varchar offsets");
      }
      for (size_t i = 0; i + 1 < offsets.size(); ++i) {
        if (offsets[i] > offsets[i + 1]) {
          return Status::IOError("page frame: bad varchar offsets");
        }
      }
      std::string bytes(in.data() + *off, nbytes);
      *off += nbytes;
      std::vector<uint8_t> nulls;
      if (has_nulls != 0) {
        nulls.resize(n);
        if (!ReadRaw(in, off, nulls.data(), n)) {
          return Status::IOError("page frame: truncated varchar nulls");
        }
      }
      return BlockPtr(std::make_shared<VarcharBlock>(
          std::move(offsets), std::move(bytes), std::move(nulls)));
    }
    case BlockEncoding::kRle: {
      int64_t rows = 0;
      if (!ReadPod(in, off, &rows)) {
        return Status::IOError("page frame: truncated rle header");
      }
      if (rows < 0 || rows > kMaxRows) {
        return Status::IOError("page frame: bad rle row count");
      }
      PRESTO_ASSIGN_OR_RETURN(BlockPtr value,
                              ReadBlock(in, off, dictionaries));
      if (value->size() != 1) {
        return Status::IOError("page frame: rle value is not one row");
      }
      return BlockPtr(std::make_shared<RleBlock>(std::move(value), rows));
    }
    case BlockEncoding::kDictionary: {
      int64_t rows = 0;
      uint8_t marker = 0;
      if (!ReadPod(in, off, &rows) || !ReadPod(in, off, &marker)) {
        return Status::IOError("page frame: truncated dictionary header");
      }
      if (rows < 0 || rows > kMaxRows) {
        return Status::IOError("page frame: bad dictionary row count");
      }
      BlockPtr dictionary;
      if (marker == 0) {
        PRESTO_ASSIGN_OR_RETURN(dictionary, ReadBlock(in, off, dictionaries));
        dictionaries->push_back(dictionary);
      } else if (marker == 1) {
        uint32_t ref = 0;
        if (!ReadPod(in, off, &ref)) {
          return Status::IOError("page frame: truncated dictionary ref");
        }
        if (ref >= dictionaries->size()) {
          return Status::IOError("page frame: dictionary ref out of range");
        }
        dictionary = (*dictionaries)[ref];
      } else {
        return Status::IOError("page frame: bad dictionary marker");
      }
      auto n = static_cast<size_t>(rows);
      std::vector<int32_t> indices(n);
      if (!ReadRaw(in, off, indices.data(), n * sizeof(int32_t))) {
        return Status::IOError("page frame: truncated dictionary indices");
      }
      int64_t dict_size = dictionary->size();
      for (int32_t index : indices) {
        if (index < 0 || index >= dict_size) {
          return Status::IOError("page frame: dictionary index out of range");
        }
      }
      return BlockPtr(std::make_shared<DictionaryBlock>(std::move(dictionary),
                                                        std::move(indices)));
    }
    case BlockEncoding::kLazy:
      break;  // never serialized
  }
  return Status::IOError("page frame: unknown block encoding");
}

}  // namespace

PageCodec::Frame PageCodec::Encode(const Page& page) const {
  std::string payload;
  WritePod<uint32_t>(&payload, static_cast<uint32_t>(page.num_columns()));
  WritePod<int64_t>(&payload, page.num_rows());
  DictionaryMap dictionaries;
  for (size_t c = 0; c < page.num_columns(); ++c) {
    WriteBlock(&payload, page.block(c), options_.preserve_encodings,
               &dictionaries);
  }

  Frame frame;
  frame.rows = page.num_rows();
  frame.raw_bytes = static_cast<int64_t>(payload.size());

  auto stored_compression = PageCompression::kNone;
  if (options_.compression == PageCompression::kLz4) {
    std::string compressed = Lz4Compress(payload);
    // Keep the compressed payload only when it wins; incompressible frames
    // ship raw and decode without the lz4 pass.
    if (compressed.size() < payload.size()) {
      payload = std::move(compressed);
      stored_compression = PageCompression::kLz4;
    }
  }

  std::string& out = frame.bytes;
  out.reserve(kHeaderSize + payload.size());
  WritePod<uint32_t>(&out, kMagic);
  WritePod<uint8_t>(&out, kVersion);
  WritePod<uint8_t>(&out, static_cast<uint8_t>(stored_compression));
  WritePod<uint8_t>(&out, options_.checksum ? kFlagChecksum : 0);
  WritePod<uint8_t>(&out, 0);  // reserved
  WritePod<uint32_t>(&out, static_cast<uint32_t>(frame.raw_bytes));
  WritePod<uint32_t>(&out, static_cast<uint32_t>(payload.size()));
  WritePod<uint64_t>(
      &out, options_.checksum ? XxHash64(payload.data(), payload.size()) : 0);
  out.append(payload);
  return frame;
}

Result<Page> PageCodec::Decode(std::string_view data, size_t* offset) const {
  size_t off = *offset;
  uint32_t magic = 0;
  uint8_t version = 0;
  uint8_t compression_byte = 0;
  uint8_t flags = 0;
  uint8_t reserved = 0;
  uint32_t raw_len = 0;
  uint32_t wire_len = 0;
  uint64_t checksum = 0;
  if (!ReadPod(data, &off, &magic) || !ReadPod(data, &off, &version) ||
      !ReadPod(data, &off, &compression_byte) ||
      !ReadPod(data, &off, &flags) || !ReadPod(data, &off, &reserved) ||
      !ReadPod(data, &off, &raw_len) || !ReadPod(data, &off, &wire_len) ||
      !ReadPod(data, &off, &checksum)) {
    return Status::IOError("page frame: truncated header");
  }
  if (magic != kMagic) {
    return Status::IOError("page frame: bad magic");
  }
  if (version != kVersion) {
    return Status::IOError("page frame: unsupported version " +
                           std::to_string(version));
  }
  if (wire_len > data.size() - off) {
    return Status::IOError("page frame: truncated payload");
  }
  std::string_view stored = data.substr(off, wire_len);
  off += wire_len;

  if ((flags & kFlagChecksum) != 0 &&
      XxHash64(stored.data(), stored.size()) != checksum) {
    return Status::IOError("page frame: checksum mismatch");
  }

  std::string decompressed;
  std::string_view payload = stored;
  switch (static_cast<PageCompression>(compression_byte)) {
    case PageCompression::kNone:
      if (raw_len != wire_len) {
        return Status::IOError("page frame: length mismatch");
      }
      break;
    case PageCompression::kLz4: {
      PRESTO_ASSIGN_OR_RETURN(decompressed, Lz4Decompress(stored, raw_len));
      payload = decompressed;
      break;
    }
    default:
      return Status::IOError("page frame: unknown compression");
  }

  size_t pos = 0;
  uint32_t num_columns = 0;
  int64_t num_rows = 0;
  if (!ReadPod(payload, &pos, &num_columns) ||
      !ReadPod(payload, &pos, &num_rows)) {
    return Status::IOError("page frame: truncated page header");
  }
  if (num_rows < 0 || num_rows > kMaxRows || num_columns > kMaxColumns) {
    return Status::IOError("page frame: bad page header");
  }
  std::vector<BlockPtr> blocks;
  blocks.reserve(num_columns);
  std::vector<BlockPtr> dictionaries;
  for (uint32_t c = 0; c < num_columns; ++c) {
    PRESTO_ASSIGN_OR_RETURN(BlockPtr block,
                            ReadBlock(payload, &pos, &dictionaries));
    if (block->size() != num_rows) {
      return Status::IOError("page frame: column row count mismatch");
    }
    blocks.push_back(std::move(block));
  }
  *offset = off;
  return Page(std::move(blocks), num_rows);
}

}  // namespace presto
