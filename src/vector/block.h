#ifndef PRESTOCPP_VECTOR_BLOCK_H_
#define PRESTOCPP_VECTOR_BLOCK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "common/hash.h"
#include "types/type.h"
#include "types/value.h"

namespace presto {

class Block;
/// Blocks are immutable after construction and freely shared between
/// operators, pages, and dictionary wrappers.
using BlockPtr = std::shared_ptr<const Block>;

/// Physical encodings, mirroring Fig. 5 of the paper. LongBlock/DoubleBlock/
/// ByteBlock are kFlat with different value types; VarcharBlock uses flat
/// offsets+bytes arrays; RLE and Dictionary wrap another block; Lazy defers
/// materialization to first touch (§V-D).
enum class BlockEncoding : uint8_t {
  kFlat,
  kVarchar,
  kRle,
  kDictionary,
  kLazy,
};

/// A column of `size()` rows with one of the encodings above. Data access in
/// hot loops goes through DecodedBlock or the concrete subclasses; the
/// virtual row-at-a-time interface here serves the reference executor,
/// tests, sorting, and spill serialization.
class Block {
 public:
  Block(TypeKind type, int64_t size) : type_(type), size_(size) {}
  virtual ~Block() = default;

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  TypeKind type() const { return type_; }
  int64_t size() const { return size_; }
  virtual BlockEncoding encoding() const = 0;

  virtual bool IsNull(int64_t i) const = 0;
  virtual bool MayHaveNulls() const = 0;

  /// Boxed value at row i (never used in vectorized paths).
  virtual Value GetValue(int64_t i) const = 0;

  /// Hash of row i, consistent with Value::Hash.
  virtual uint64_t HashAt(int64_t i) const = 0;

  /// Approximate retained memory, for memory accounting.
  virtual int64_t SizeInBytes() const = 0;

  /// SizeInBytes with dedup: bytes not already accounted to a block in
  /// *seen. A dictionary shared by several columns of one page (or several
  /// pages of one buffer) is charged once — counting it per wrapper made
  /// exchange backpressure fire at the wrong occupancy.
  int64_t RetainedBytes(std::vector<const Block*>* seen) const {
    for (const Block* b : *seen) {
      if (b == this) return 0;
    }
    seen->push_back(this);
    return UniqueBytes(seen);
  }

  /// New block containing rows positions[0..n) in order.
  virtual BlockPtr CopyPositions(const int32_t* positions, int64_t n) const = 0;

  /// Fully decoded flat (or varchar) copy of this block.
  virtual BlockPtr Flatten() const = 0;

  /// Comparison of row i with row j of `other` using Value semantics
  /// (NULLs last). Blocks must share a type.
  int CompareAt(int64_t i, const Block& other, int64_t j) const;

  /// SQL equality of row i with row j of `other` (NULL != anything).
  bool EqualsAt(int64_t i, const Block& other, int64_t j) const;

 protected:
  /// Bytes owned by this block alone; wrappers recurse into children via
  /// RetainedBytes(seen) so shared children stay deduplicated.
  virtual int64_t UniqueBytes(std::vector<const Block*>* seen) const {
    (void)seen;
    return SizeInBytes();
  }

  TypeKind type_;
  int64_t size_;
};

/// Flat fixed-width column: values array + optional null bitmap (byte per
/// row; empty vector means "no nulls"). T is uint8_t (BOOLEAN), int64_t
/// (BIGINT/DATE), or double (DOUBLE).
template <typename T>
class FlatBlock final : public Block {
 public:
  FlatBlock(TypeKind type, std::vector<T> values, std::vector<uint8_t> nulls)
      : Block(type, static_cast<int64_t>(values.size())),
        values_(std::move(values)),
        nulls_(std::move(nulls)) {
    PRESTO_DCHECK(nulls_.empty() || nulls_.size() == values_.size());
  }

  BlockEncoding encoding() const override { return BlockEncoding::kFlat; }

  const T* raw_values() const { return values_.data(); }
  const uint8_t* raw_nulls() const {
    return nulls_.empty() ? nullptr : nulls_.data();
  }

  T ValueAt(int64_t i) const { return values_[static_cast<size_t>(i)]; }

  bool IsNull(int64_t i) const override {
    return !nulls_.empty() && nulls_[static_cast<size_t>(i)] != 0;
  }
  bool MayHaveNulls() const override { return !nulls_.empty(); }

  Value GetValue(int64_t i) const override;
  uint64_t HashAt(int64_t i) const override;
  int64_t SizeInBytes() const override {
    return static_cast<int64_t>(values_.size() * sizeof(T) + nulls_.size());
  }
  BlockPtr CopyPositions(const int32_t* positions, int64_t n) const override;
  BlockPtr Flatten() const override;

 private:
  std::vector<T> values_;
  std::vector<uint8_t> nulls_;
};

using ByteBlock = FlatBlock<uint8_t>;    // BOOLEAN
using LongBlock = FlatBlock<int64_t>;    // BIGINT / DATE
using DoubleBlock = FlatBlock<double>;   // DOUBLE

/// Flat-memory string column: contiguous bytes plus offsets (size+1), per
/// the paper's flat-data-structure guidance (§V-A). No per-row allocations.
class VarcharBlock final : public Block {
 public:
  VarcharBlock(std::vector<int32_t> offsets, std::string bytes,
               std::vector<uint8_t> nulls)
      : Block(TypeKind::kVarchar, static_cast<int64_t>(offsets.size()) - 1),
        offsets_(std::move(offsets)),
        bytes_(std::move(bytes)),
        nulls_(std::move(nulls)) {
    PRESTO_DCHECK(!offsets_.empty());
    PRESTO_DCHECK(nulls_.empty() ||
                  nulls_.size() == offsets_.size() - 1);
  }

  BlockEncoding encoding() const override { return BlockEncoding::kVarchar; }

  std::string_view StringAt(int64_t i) const {
    auto s = static_cast<size_t>(i);
    return std::string_view(bytes_).substr(
        static_cast<size_t>(offsets_[s]),
        static_cast<size_t>(offsets_[s + 1] - offsets_[s]));
  }

  const uint8_t* raw_nulls() const {
    return nulls_.empty() ? nullptr : nulls_.data();
  }

  bool IsNull(int64_t i) const override {
    return !nulls_.empty() && nulls_[static_cast<size_t>(i)] != 0;
  }
  bool MayHaveNulls() const override { return !nulls_.empty(); }

  Value GetValue(int64_t i) const override {
    if (IsNull(i)) return Value::Null(TypeKind::kVarchar);
    return Value::Varchar(std::string(StringAt(i)));
  }
  uint64_t HashAt(int64_t i) const override {
    if (IsNull(i)) return 0;
    return HashString(StringAt(i));
  }
  int64_t SizeInBytes() const override {
    return static_cast<int64_t>(offsets_.size() * sizeof(int32_t) +
                                bytes_.size() + nulls_.size());
  }
  BlockPtr CopyPositions(const int32_t* positions, int64_t n) const override;
  BlockPtr Flatten() const override;

 private:
  std::vector<int32_t> offsets_;
  std::string bytes_;
  std::vector<uint8_t> nulls_;
};

/// Convenience constructors used throughout tests and connectors.
BlockPtr MakeBigintBlock(std::vector<int64_t> values,
                         std::vector<uint8_t> nulls = {});
BlockPtr MakeDateBlock(std::vector<int64_t> values,
                       std::vector<uint8_t> nulls = {});
BlockPtr MakeDoubleBlock(std::vector<double> values,
                         std::vector<uint8_t> nulls = {});
BlockPtr MakeBooleanBlock(std::vector<bool> values,
                          std::vector<uint8_t> nulls = {});
BlockPtr MakeVarcharBlock(const std::vector<std::string>& values,
                          std::vector<uint8_t> nulls = {});

/// Builds a single-type block from boxed values (reference paths and tests).
BlockPtr MakeBlockFromValues(TypeKind type, const std::vector<Value>& values);

/// All-null flat block of the given type and size.
BlockPtr MakeAllNullBlock(TypeKind type, int64_t size);

}  // namespace presto

#endif  // PRESTOCPP_VECTOR_BLOCK_H_
