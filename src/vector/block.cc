#include "vector/block.h"

namespace presto {

int Block::CompareAt(int64_t i, const Block& other, int64_t j) const {
  bool an = IsNull(i);
  bool bn = other.IsNull(j);
  if (an && bn) return 0;
  if (an) return 1;
  if (bn) return -1;
  // Fast paths for common physical types.
  if (type_ == other.type()) {
    switch (type_) {
      case TypeKind::kBigint:
      case TypeKind::kDate: {
        int64_t a = GetValue(i).AsBigint();
        int64_t b = other.GetValue(j).AsBigint();
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      default:
        break;
    }
  }
  return GetValue(i).Compare(other.GetValue(j));
}

bool Block::EqualsAt(int64_t i, const Block& other, int64_t j) const {
  if (IsNull(i) || other.IsNull(j)) return false;
  return GetValue(i).SqlEquals(other.GetValue(j));
}

template <typename T>
Value FlatBlock<T>::GetValue(int64_t i) const {
  if (IsNull(i)) return Value::Null(type_);
  T v = values_[static_cast<size_t>(i)];
  switch (type_) {
    case TypeKind::kBoolean:
      return Value::Boolean(v != 0);
    case TypeKind::kBigint:
      return Value::Bigint(static_cast<int64_t>(v));
    case TypeKind::kDate:
      return Value::Date(static_cast<int64_t>(v));
    case TypeKind::kDouble:
      return Value::Double(static_cast<double>(v));
    default:
      PRESTO_UNREACHABLE();
  }
}

template <typename T>
uint64_t FlatBlock<T>::HashAt(int64_t i) const {
  if (IsNull(i)) return 0;
  T v = values_[static_cast<size_t>(i)];
  if constexpr (std::is_same_v<T, double>) {
    return HashDouble(v);
  } else {
    return HashInt64(static_cast<uint64_t>(static_cast<int64_t>(v)));
  }
}

template <typename T>
BlockPtr FlatBlock<T>::CopyPositions(const int32_t* positions,
                                     int64_t n) const {
  std::vector<T> values(static_cast<size_t>(n));
  std::vector<uint8_t> nulls;
  if (!nulls_.empty()) nulls.resize(static_cast<size_t>(n));
  for (int64_t k = 0; k < n; ++k) {
    auto p = static_cast<size_t>(positions[k]);
    values[static_cast<size_t>(k)] = values_[p];
    if (!nulls_.empty()) nulls[static_cast<size_t>(k)] = nulls_[p];
  }
  return std::make_shared<FlatBlock<T>>(type_, std::move(values),
                                        std::move(nulls));
}

template <typename T>
BlockPtr FlatBlock<T>::Flatten() const {
  return std::make_shared<FlatBlock<T>>(
      type_, std::vector<T>(values_), std::vector<uint8_t>(nulls_));
}

template class FlatBlock<uint8_t>;
template class FlatBlock<int64_t>;
template class FlatBlock<double>;

BlockPtr VarcharBlock::CopyPositions(const int32_t* positions,
                                     int64_t n) const {
  std::vector<int32_t> offsets;
  offsets.reserve(static_cast<size_t>(n) + 1);
  offsets.push_back(0);
  std::string bytes;
  std::vector<uint8_t> nulls;
  if (!nulls_.empty()) nulls.resize(static_cast<size_t>(n));
  for (int64_t k = 0; k < n; ++k) {
    auto p = positions[k];
    if (!nulls_.empty() && nulls_[static_cast<size_t>(p)]) {
      nulls[static_cast<size_t>(k)] = 1;
    } else {
      auto sv = StringAt(p);
      bytes.append(sv.data(), sv.size());
    }
    offsets.push_back(static_cast<int32_t>(bytes.size()));
  }
  return std::make_shared<VarcharBlock>(std::move(offsets), std::move(bytes),
                                        std::move(nulls));
}

BlockPtr VarcharBlock::Flatten() const {
  return std::make_shared<VarcharBlock>(std::vector<int32_t>(offsets_),
                                        std::string(bytes_),
                                        std::vector<uint8_t>(nulls_));
}

BlockPtr MakeBigintBlock(std::vector<int64_t> values,
                         std::vector<uint8_t> nulls) {
  return std::make_shared<LongBlock>(TypeKind::kBigint, std::move(values),
                                     std::move(nulls));
}

BlockPtr MakeDateBlock(std::vector<int64_t> values,
                       std::vector<uint8_t> nulls) {
  return std::make_shared<LongBlock>(TypeKind::kDate, std::move(values),
                                     std::move(nulls));
}

BlockPtr MakeDoubleBlock(std::vector<double> values,
                         std::vector<uint8_t> nulls) {
  return std::make_shared<DoubleBlock>(TypeKind::kDouble, std::move(values),
                                       std::move(nulls));
}

BlockPtr MakeBooleanBlock(std::vector<bool> values,
                          std::vector<uint8_t> nulls) {
  std::vector<uint8_t> bytes(values.size());
  for (size_t i = 0; i < values.size(); ++i) bytes[i] = values[i] ? 1 : 0;
  return std::make_shared<ByteBlock>(TypeKind::kBoolean, std::move(bytes),
                                     std::move(nulls));
}

BlockPtr MakeVarcharBlock(const std::vector<std::string>& values,
                          std::vector<uint8_t> nulls) {
  std::vector<int32_t> offsets;
  offsets.reserve(values.size() + 1);
  offsets.push_back(0);
  std::string bytes;
  for (size_t i = 0; i < values.size(); ++i) {
    if (nulls.empty() || !nulls[i]) bytes += values[i];
    offsets.push_back(static_cast<int32_t>(bytes.size()));
  }
  return std::make_shared<VarcharBlock>(std::move(offsets), std::move(bytes),
                                        std::move(nulls));
}

BlockPtr MakeBlockFromValues(TypeKind type, const std::vector<Value>& values) {
  size_t n = values.size();
  std::vector<uint8_t> nulls(n, 0);
  bool any_null = false;
  for (size_t i = 0; i < n; ++i) {
    if (values[i].is_null()) {
      nulls[i] = 1;
      any_null = true;
    }
  }
  if (!any_null) nulls.clear();
  switch (type) {
    case TypeKind::kBoolean: {
      std::vector<uint8_t> vals(n, 0);
      for (size_t i = 0; i < n; ++i) {
        if (!values[i].is_null()) vals[i] = values[i].AsBoolean() ? 1 : 0;
      }
      return std::make_shared<ByteBlock>(type, std::move(vals),
                                         std::move(nulls));
    }
    case TypeKind::kBigint:
    case TypeKind::kDate:
    case TypeKind::kUnknown: {
      std::vector<int64_t> vals(n, 0);
      for (size_t i = 0; i < n; ++i) {
        if (!values[i].is_null()) vals[i] = values[i].AsBigint();
      }
      // UNKNOWN (all-null) blocks are physically BIGINT-backed.
      TypeKind t = type == TypeKind::kUnknown ? TypeKind::kBigint : type;
      return std::make_shared<LongBlock>(t, std::move(vals), std::move(nulls));
    }
    case TypeKind::kDouble: {
      std::vector<double> vals(n, 0);
      for (size_t i = 0; i < n; ++i) {
        if (!values[i].is_null()) vals[i] = values[i].AsDouble();
      }
      return std::make_shared<DoubleBlock>(type, std::move(vals),
                                           std::move(nulls));
    }
    case TypeKind::kVarchar: {
      std::vector<std::string> vals(n);
      for (size_t i = 0; i < n; ++i) {
        if (!values[i].is_null()) vals[i] = values[i].AsVarchar();
      }
      return MakeVarcharBlock(vals, std::move(nulls));
    }
  }
  PRESTO_UNREACHABLE();
}

BlockPtr MakeAllNullBlock(TypeKind type, int64_t size) {
  std::vector<Value> values(static_cast<size_t>(size), Value::Null(type));
  return MakeBlockFromValues(type, values);
}

}  // namespace presto
