#ifndef PRESTOCPP_VECTOR_BLOCK_BUILDER_H_
#define PRESTOCPP_VECTOR_BLOCK_BUILDER_H_

#include <string>
#include <string_view>
#include <vector>

#include "types/value.h"
#include "vector/block.h"
#include "vector/page.h"

namespace presto {

/// Incremental builder for a single flat block of any supported type.
/// Operators building generic output rows (aggregation finalization, sort
/// output, sinks) use this; type-specialized hot loops build vectors
/// directly.
class BlockBuilder {
 public:
  explicit BlockBuilder(TypeKind type) : type_(type) {}

  TypeKind type() const { return type_; }
  int64_t size() const { return count_; }

  void AppendNull();
  void AppendBoolean(bool v);
  void AppendBigint(int64_t v);  // also DATE
  void AppendDouble(double v);
  void AppendString(std::string_view v);

  /// Appends a boxed value (must match or coerce to the builder type).
  void AppendValue(const Value& v);

  /// Appends row `row` of `block` (types must match).
  void AppendFrom(const Block& block, int64_t row);

  /// Finishes and returns the block; the builder resets to empty.
  BlockPtr Build();

 private:
  TypeKind type_;
  int64_t count_ = 0;
  bool any_null_ = false;
  std::vector<uint8_t> nulls_;
  std::vector<uint8_t> bools_;
  std::vector<int64_t> longs_;
  std::vector<double> doubles_;
  std::vector<int32_t> offsets_{0};
  std::string bytes_;
};

/// Builds a Page row by row against a fixed schema of column types.
class PageBuilder {
 public:
  explicit PageBuilder(std::vector<TypeKind> types) {
    builders_.reserve(types.size());
    for (TypeKind t : types) builders_.emplace_back(t);
  }

  size_t num_columns() const { return builders_.size(); }
  int64_t num_rows() const { return rows_; }
  BlockBuilder& column(size_t i) { return builders_[i]; }

  /// Appends one boxed row; values.size() must equal num_columns().
  void AppendRow(const std::vector<Value>& values) {
    PRESTO_DCHECK(values.size() == builders_.size());
    for (size_t i = 0; i < values.size(); ++i) {
      builders_[i].AppendValue(values[i]);
    }
    ++rows_;
  }

  /// Appends row `row` of `page` column-by-column.
  void AppendRowFrom(const Page& page, int64_t row) {
    for (size_t i = 0; i < builders_.size(); ++i) {
      builders_[i].AppendFrom(*page.block(i), row);
    }
    ++rows_;
  }

  /// Call after appending via column() builders directly.
  void CommitRow() { ++rows_; }

  bool empty() const { return rows_ == 0; }

  /// Finishes and returns the page; the builder resets to empty.
  Page Build() {
    std::vector<BlockPtr> blocks;
    blocks.reserve(builders_.size());
    for (auto& b : builders_) blocks.push_back(b.Build());
    Page out(std::move(blocks), rows_);
    rows_ = 0;
    return out;
  }

 private:
  std::vector<BlockBuilder> builders_;
  int64_t rows_ = 0;
};

}  // namespace presto

#endif  // PRESTOCPP_VECTOR_BLOCK_BUILDER_H_
