#ifndef PRESTOCPP_VECTOR_ENCODED_BLOCK_H_
#define PRESTOCPP_VECTOR_ENCODED_BLOCK_H_

#include <atomic>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "vector/block.h"

namespace presto {

/// Run-length-encoded block: one logical value repeated `size` times. The
/// value is row 0 of a size-1 inner block (which also represents NULL runs).
class RleBlock final : public Block {
 public:
  RleBlock(BlockPtr value, int64_t size)
      : Block(value->type(), size), value_(std::move(value)) {
    PRESTO_DCHECK(value_->size() == 1);
  }

  BlockEncoding encoding() const override { return BlockEncoding::kRle; }

  /// The size-1 block holding the repeated value.
  const BlockPtr& value_block() const { return value_; }

  bool IsNull(int64_t) const override { return value_->IsNull(0); }
  bool MayHaveNulls() const override { return value_->MayHaveNulls(); }
  Value GetValue(int64_t) const override { return value_->GetValue(0); }
  uint64_t HashAt(int64_t) const override { return value_->HashAt(0); }
  int64_t SizeInBytes() const override { return value_->SizeInBytes() + 16; }
  BlockPtr CopyPositions(const int32_t*, int64_t n) const override {
    return std::make_shared<RleBlock>(value_, n);
  }
  BlockPtr Flatten() const override;

 protected:
  int64_t UniqueBytes(std::vector<const Block*>* seen) const override {
    return value_->RetainedBytes(seen) + 16;
  }

 private:
  BlockPtr value_;
};

/// Dictionary block: indices into a (usually shared) dictionary block.
/// Fig. 5's DictionaryBlock; several blocks may share one dictionary, and
/// operators process the dictionary once instead of every row (§V-E).
class DictionaryBlock final : public Block {
 public:
  DictionaryBlock(BlockPtr dictionary, std::vector<int32_t> indices)
      : Block(dictionary->type(), static_cast<int64_t>(indices.size())),
        dictionary_(std::move(dictionary)),
        indices_(std::move(indices)) {}

  BlockEncoding encoding() const override { return BlockEncoding::kDictionary; }

  const BlockPtr& dictionary() const { return dictionary_; }
  const std::vector<int32_t>& indices() const { return indices_; }
  int32_t IndexAt(int64_t i) const { return indices_[static_cast<size_t>(i)]; }

  bool IsNull(int64_t i) const override {
    return dictionary_->IsNull(IndexAt(i));
  }
  bool MayHaveNulls() const override { return dictionary_->MayHaveNulls(); }
  Value GetValue(int64_t i) const override {
    return dictionary_->GetValue(IndexAt(i));
  }
  uint64_t HashAt(int64_t i) const override {
    return dictionary_->HashAt(IndexAt(i));
  }
  int64_t SizeInBytes() const override {
    return dictionary_->SizeInBytes() +
           static_cast<int64_t>(indices_.size() * sizeof(int32_t));
  }
  BlockPtr CopyPositions(const int32_t* positions, int64_t n) const override {
    std::vector<int32_t> idx(static_cast<size_t>(n));
    for (int64_t k = 0; k < n; ++k) {
      idx[static_cast<size_t>(k)] = indices_[static_cast<size_t>(positions[k])];
    }
    return std::make_shared<DictionaryBlock>(dictionary_, std::move(idx));
  }
  BlockPtr Flatten() const override;

 protected:
  int64_t UniqueBytes(std::vector<const Block*>* seen) const override {
    return dictionary_->RetainedBytes(seen) +
           static_cast<int64_t>(indices_.size() * sizeof(int32_t));
  }

 private:
  BlockPtr dictionary_;
  std::vector<int32_t> indices_;
};

/// Aggregate counters for the §V-D lazy-loading experiment: how many cells
/// and bytes were actually materialized vs. skipped.
struct LazyLoadStats {
  std::atomic<int64_t> blocks_loaded{0};
  std::atomic<int64_t> blocks_skipped{0};
  std::atomic<int64_t> cells_loaded{0};
  std::atomic<int64_t> bytes_loaded{0};
};

/// Lazily materialized column (§V-D): the loader runs (once) on first data
/// access, typically reading, decompressing and decoding a storc column
/// stream. Columns never touched — e.g. pruned by a highly selective filter
/// on another column — are never fetched.
class LazyBlock final : public Block {
 public:
  using Loader = std::function<BlockPtr()>;

  LazyBlock(TypeKind type, int64_t size, Loader loader,
            LazyLoadStats* stats = nullptr)
      : Block(type, size), loader_(std::move(loader)), stats_(stats) {}

  ~LazyBlock() override {
    if (stats_ != nullptr && !loaded_) {
      stats_->blocks_skipped.fetch_add(1, std::memory_order_relaxed);
    }
  }

  BlockEncoding encoding() const override { return BlockEncoding::kLazy; }

  /// Materializes (memoized) and returns the underlying block.
  const BlockPtr& Load() const;

  bool loaded() const { return loaded_; }

  bool IsNull(int64_t i) const override { return Load()->IsNull(i); }
  bool MayHaveNulls() const override { return Load()->MayHaveNulls(); }
  Value GetValue(int64_t i) const override { return Load()->GetValue(i); }
  uint64_t HashAt(int64_t i) const override { return Load()->HashAt(i); }
  /// An unloaded lazy block retains no data yet — charging a placeholder
  /// (the old 16) inflated buffer occupancy for columns that may never be
  /// materialized at all.
  int64_t SizeInBytes() const override {
    return loaded_ ? Load()->SizeInBytes() : 0;
  }
  BlockPtr CopyPositions(const int32_t* positions, int64_t n) const override {
    return Load()->CopyPositions(positions, n);
  }
  BlockPtr Flatten() const override { return Load()->Flatten(); }

 protected:
  int64_t UniqueBytes(std::vector<const Block*>* seen) const override {
    return loaded_ ? Load()->RetainedBytes(seen) : 0;
  }

 private:
  mutable std::mutex mu_;
  mutable Loader loader_;
  mutable BlockPtr materialized_;
  mutable bool loaded_ = false;
  LazyLoadStats* stats_;
};

/// Wraps `value` (boxed) as an RLE constant block of length `size`.
BlockPtr MakeConstantBlock(const Value& value, int64_t size);

}  // namespace presto

#endif  // PRESTOCPP_VECTOR_ENCODED_BLOCK_H_
