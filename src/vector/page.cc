#include "vector/page.h"

namespace presto {

std::string Page::ToString() const {
  std::string out;
  for (int64_t r = 0; r < num_rows_; ++r) {
    out += "[";
    for (size_t c = 0; c < blocks_.size(); ++c) {
      if (c > 0) out += ", ";
      out += blocks_[c]->GetValue(r).ToString();
    }
    out += "]\n";
  }
  return out;
}

}  // namespace presto
