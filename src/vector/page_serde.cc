#include "vector/page_serde.h"

#include <cstring>

#include "vector/decoded_block.h"

namespace presto {

namespace {

template <typename T>
void WritePod(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

void WriteBytes(std::string* out, const void* data, size_t len) {
  out->append(static_cast<const char*>(data), len);
}

template <typename T>
bool ReadPod(const std::string& in, size_t* off, T* v) {
  if (*off + sizeof(T) > in.size()) return false;
  std::memcpy(v, in.data() + *off, sizeof(T));
  *off += sizeof(T);
  return true;
}

bool ReadBytes(const std::string& in, size_t* off, void* data, size_t len) {
  if (*off + len > in.size()) return false;
  std::memcpy(data, in.data() + *off, len);
  *off += len;
  return true;
}

template <typename T>
void WriteFlat(std::string* out, const FlatBlock<T>& b) {
  auto n = static_cast<size_t>(b.size());
  uint8_t has_nulls = b.raw_nulls() != nullptr ? 1 : 0;
  WritePod<uint8_t>(out, has_nulls);
  WriteBytes(out, b.raw_values(), n * sizeof(T));
  if (has_nulls) WriteBytes(out, b.raw_nulls(), n);
}

template <typename T>
Result<BlockPtr> ReadFlat(const std::string& in, size_t* off, TypeKind type,
                          int64_t rows) {
  uint8_t has_nulls = 0;
  if (!ReadPod(in, off, &has_nulls)) {
    return Status::IOError("truncated page: flat header");
  }
  auto n = static_cast<size_t>(rows);
  std::vector<T> values(n);
  if (!ReadBytes(in, off, values.data(), n * sizeof(T))) {
    return Status::IOError("truncated page: flat values");
  }
  std::vector<uint8_t> nulls;
  if (has_nulls) {
    nulls.resize(n);
    if (!ReadBytes(in, off, nulls.data(), n)) {
      return Status::IOError("truncated page: flat nulls");
    }
  }
  return BlockPtr(std::make_shared<FlatBlock<T>>(type, std::move(values),
                                                 std::move(nulls)));
}

}  // namespace

std::string SerializePage(const Page& page) {
  std::string out;
  WritePod<uint32_t>(&out, static_cast<uint32_t>(page.num_columns()));
  WritePod<int64_t>(&out, page.num_rows());
  for (size_t c = 0; c < page.num_columns(); ++c) {
    BlockPtr flat = page.block(c)->Flatten();
    WritePod<uint8_t>(&out, static_cast<uint8_t>(flat->type()));
    switch (flat->type()) {
      case TypeKind::kBoolean:
        WriteFlat(&out, static_cast<const ByteBlock&>(*flat));
        break;
      case TypeKind::kBigint:
      case TypeKind::kDate:
        WriteFlat(&out, static_cast<const LongBlock&>(*flat));
        break;
      case TypeKind::kDouble:
        WriteFlat(&out, static_cast<const DoubleBlock&>(*flat));
        break;
      case TypeKind::kVarchar: {
        const auto& vb = static_cast<const VarcharBlock&>(*flat);
        uint8_t has_nulls = vb.raw_nulls() != nullptr ? 1 : 0;
        WritePod<uint8_t>(&out, has_nulls);
        auto n = static_cast<size_t>(vb.size());
        // Rebuild canonical offsets/bytes from string views.
        std::vector<int32_t> offsets;
        offsets.reserve(n + 1);
        offsets.push_back(0);
        std::string bytes;
        for (size_t i = 0; i < n; ++i) {
          if (!vb.IsNull(static_cast<int64_t>(i))) {
            auto sv = vb.StringAt(static_cast<int64_t>(i));
            bytes.append(sv.data(), sv.size());
          }
          offsets.push_back(static_cast<int32_t>(bytes.size()));
        }
        WriteBytes(&out, offsets.data(), offsets.size() * sizeof(int32_t));
        WritePod<uint64_t>(&out, bytes.size());
        WriteBytes(&out, bytes.data(), bytes.size());
        if (has_nulls) WriteBytes(&out, vb.raw_nulls(), n);
        break;
      }
      default:
        PRESTO_UNREACHABLE();
    }
  }
  return out;
}

Result<Page> DeserializePage(const std::string& data, size_t* offset) {
  uint32_t num_cols = 0;
  int64_t rows = 0;
  if (!ReadPod(data, offset, &num_cols) || !ReadPod(data, offset, &rows)) {
    return Status::IOError("truncated page: header");
  }
  std::vector<BlockPtr> blocks;
  blocks.reserve(num_cols);
  for (uint32_t c = 0; c < num_cols; ++c) {
    uint8_t type_byte = 0;
    if (!ReadPod(data, offset, &type_byte)) {
      return Status::IOError("truncated page: column type");
    }
    auto type = static_cast<TypeKind>(type_byte);
    switch (type) {
      case TypeKind::kBoolean: {
        PRESTO_ASSIGN_OR_RETURN(BlockPtr b,
                                ReadFlat<uint8_t>(data, offset, type, rows));
        blocks.push_back(std::move(b));
        break;
      }
      case TypeKind::kBigint:
      case TypeKind::kDate: {
        PRESTO_ASSIGN_OR_RETURN(BlockPtr b,
                                ReadFlat<int64_t>(data, offset, type, rows));
        blocks.push_back(std::move(b));
        break;
      }
      case TypeKind::kDouble: {
        PRESTO_ASSIGN_OR_RETURN(BlockPtr b,
                                ReadFlat<double>(data, offset, type, rows));
        blocks.push_back(std::move(b));
        break;
      }
      case TypeKind::kVarchar: {
        uint8_t has_nulls = 0;
        if (!ReadPod(data, offset, &has_nulls)) {
          return Status::IOError("truncated page: varchar header");
        }
        auto n = static_cast<size_t>(rows);
        std::vector<int32_t> offsets(n + 1);
        if (!ReadBytes(data, offset, offsets.data(),
                       offsets.size() * sizeof(int32_t))) {
          return Status::IOError("truncated page: varchar offsets");
        }
        uint64_t nbytes = 0;
        if (!ReadPod(data, offset, &nbytes)) {
          return Status::IOError("truncated page: varchar length");
        }
        std::string bytes(nbytes, '\0');
        if (!ReadBytes(data, offset, bytes.data(), nbytes)) {
          return Status::IOError("truncated page: varchar bytes");
        }
        std::vector<uint8_t> nulls;
        if (has_nulls) {
          nulls.resize(n);
          if (!ReadBytes(data, offset, nulls.data(), n)) {
            return Status::IOError("truncated page: varchar nulls");
          }
        }
        blocks.push_back(std::make_shared<VarcharBlock>(
            std::move(offsets), std::move(bytes), std::move(nulls)));
        break;
      }
      default:
        return Status::IOError("bad page: unknown column type");
    }
  }
  return Page(std::move(blocks), rows);
}

}  // namespace presto
