#include "exec/driver.h"

#include "common/stopwatch.h"

namespace presto {

Result<Driver::State> Driver::Process(int64_t quantum_nanos,
                                      int64_t* cpu_nanos) {
  Stopwatch watch;
  for (;;) {
    bool progress = false;
    // Move pages between all adjacent operator pairs (§IV-E1 "every
    // iteration of the loop moves data between all pairs of operators that
    // can make progress").
    for (size_t i = 0; i + 1 < operators_.size(); ++i) {
      Operator& producer = *operators_[i];
      Operator& consumer = *operators_[i + 1];
      if (consumer.IsFinished()) continue;
      // Note: a "blocked" producer is still polled — GetOutput is the call
      // that re-evaluates (and clears) its blocked state.
      if (consumer.needs_input()) {
        PRESTO_ASSIGN_OR_RETURN(std::optional<Page> page,
                                producer.GetOutput());
        if (page.has_value()) {
          PRESTO_RETURN_IF_ERROR(consumer.AddInput(std::move(*page)));
          progress = true;
          continue;
        }
      }
      if (producer.IsFinished() && !no_more_signaled_[i + 1]) {
        consumer.NoMoreInput();
        no_more_signaled_[i + 1] = true;
        progress = true;
      }
    }
    // Drive the sink (flush buffered output, propagate completion).
    Operator& sink = *operators_.back();
    if (!sink.IsFinished()) {
      PRESTO_ASSIGN_OR_RETURN(std::optional<Page> page, sink.GetOutput());
      // Sinks produce no pages; a single-operator pipeline's "sink" may.
      (void)page;
    }
    if (sink.IsFinished()) {
      *cpu_nanos += watch.ElapsedNanos();
      return State::kFinished;
    }
    if (!progress) {
      *cpu_nanos += watch.ElapsedNanos();
      return State::kBlocked;
    }
    if (watch.ElapsedNanos() >= quantum_nanos) {
      *cpu_nanos += watch.ElapsedNanos();
      return State::kYielded;
    }
  }
}

}  // namespace presto
