#include "exec/driver.h"

#include "common/stopwatch.h"

namespace presto {

void Driver::SettleBlockedTime() {
  if (!blocked_recorded_) return;
  blocked_recorded_ = false;
  int64_t nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - blocked_since_)
                      .count();
  for (size_t i : blocked_ops_) {
    operators_[i]->ctx().blocked_nanos.fetch_add(nanos);
  }
  if (trace_ != nullptr && !blocked_ops_.empty()) {
    // One span for the whole parked interval, named after the first
    // blocked operator (typically the one holding up the pipeline).
    trace_->RecordSpan(
        "driver", "blocked:" + operators_[blocked_ops_.front()]->ctx().label(),
        trace_pid_, trace_tid_, blocked_since_trace_nanos_, nanos);
  }
  blocked_ops_.clear();
}

Result<Driver::State> Driver::Process(int64_t quantum_nanos,
                                      int64_t* cpu_nanos) {
  SettleBlockedTime();
  Stopwatch watch;
  for (;;) {
    bool progress = false;
    // Move pages between all adjacent operator pairs (§IV-E1 "every
    // iteration of the loop moves data between all pairs of operators that
    // can make progress").
    for (size_t i = 0; i + 1 < operators_.size(); ++i) {
      Operator& producer = *operators_[i];
      Operator& consumer = *operators_[i + 1];
      if (consumer.IsFinished()) continue;
      // Note: a "blocked" producer is still polled — GetOutput is the call
      // that re-evaluates (and clears) its blocked state.
      if (consumer.needs_input()) {
        int64_t t0 = watch.ElapsedNanos();
        auto page_or = producer.GetOutput();
        producer.ctx().get_output_nanos.fetch_add(watch.ElapsedNanos() - t0);
        if (!page_or.ok()) return page_or.status();
        std::optional<Page> page = std::move(page_or).value();
        if (page.has_value()) {
          int64_t page_bytes = page->SizeInBytes();
          producer.ctx().output_pages.fetch_add(1);
          producer.ctx().output_bytes.fetch_add(page_bytes);
          consumer.ctx().input_pages.fetch_add(1);
          consumer.ctx().input_bytes.fetch_add(page_bytes);
          t0 = watch.ElapsedNanos();
          Status added = consumer.AddInput(std::move(*page));
          consumer.ctx().add_input_nanos.fetch_add(watch.ElapsedNanos() - t0);
          PRESTO_RETURN_IF_ERROR(added);
          progress = true;
          continue;
        }
      }
      if (producer.IsFinished() && !no_more_signaled_[i + 1]) {
        consumer.NoMoreInput();
        no_more_signaled_[i + 1] = true;
        progress = true;
      }
    }
    // Drive the sink (flush buffered output, propagate completion).
    Operator& sink = *operators_.back();
    if (!sink.IsFinished()) {
      int64_t t0 = watch.ElapsedNanos();
      auto page_or = sink.GetOutput();
      sink.ctx().get_output_nanos.fetch_add(watch.ElapsedNanos() - t0);
      if (!page_or.ok()) return page_or.status();
      // Sinks produce no pages; a single-operator pipeline's "sink" may.
    }
    if (sink.IsFinished()) {
      *cpu_nanos += watch.ElapsedNanos();
      return State::kFinished;
    }
    if (!progress) {
      *cpu_nanos += watch.ElapsedNanos();
      // Remember which operators are parked so the wait (off this thread)
      // can be charged to them when the driver next runs.
      for (size_t i = 0; i < operators_.size(); ++i) {
        if (!operators_[i]->IsFinished() && operators_[i]->IsBlocked()) {
          blocked_ops_.push_back(i);
        }
      }
      if (blocked_ops_.empty()) blocked_ops_.push_back(operators_.size() - 1);
      blocked_since_ = std::chrono::steady_clock::now();
      if (trace_ != nullptr) blocked_since_trace_nanos_ = trace_->NowNanos();
      blocked_recorded_ = true;
      return State::kBlocked;
    }
    if (watch.ElapsedNanos() >= quantum_nanos) {
      *cpu_nanos += watch.ElapsedNanos();
      return State::kYielded;
    }
  }
}

}  // namespace presto
