#include "exec/operators.h"

#include <chrono>

#include "common/fault_injection.h"
#include "vector/block_builder.h"

namespace presto {

// ---- ValuesOperator ----

ValuesOperator::ValuesOperator(std::unique_ptr<OperatorContext> ctx,
                               std::shared_ptr<const ValuesNode> node)
    : Operator(std::move(ctx)), node_(std::move(node)) {}

Status ValuesOperator::AddInput(Page) {
  return Status::Internal("Values takes no input");
}

Result<std::optional<Page>> ValuesOperator::GetOutput() {
  if (done_) return std::optional<Page>();
  done_ = true;
  std::vector<TypeKind> types;
  for (const auto& col : node_->output().columns()) types.push_back(col.type);
  PageBuilder builder(types);
  for (const auto& row : node_->rows()) builder.AppendRow(row);
  ctx_->rows_out.fetch_add(builder.num_rows());
  return std::optional<Page>(builder.Build());
}

// ---- TableScanOperator ----

TableScanOperator::TableScanOperator(std::unique_ptr<OperatorContext> ctx,
                                     std::shared_ptr<const TableScanNode> node)
    : Operator(std::move(ctx)), node_(std::move(node)) {
  auto connector = ctx_->runtime().catalog->Get(node_->connector());
  PRESTO_CHECK(connector.ok());
  connector_ = *connector;
}

Status TableScanOperator::AddInput(Page) {
  return Status::Internal("TableScan takes no input");
}

Result<std::optional<Page>> TableScanOperator::GetOutput() {
  PRESTO_RETURN_IF_ERROR(ctx_->CheckNotKilled());
  PRESTO_FAULT_POINT("scan.next_page");
  auto queue_it = ctx_->runtime().split_queues->find(node_->id());
  PRESTO_CHECK(queue_it != ctx_->runtime().split_queues->end());
  SplitQueue& queue = queue_it->second;
  for (;;) {
    if (current_ == nullptr) {
      bool done = false;
      auto split = queue.Poll(&done);
      if (!split.has_value()) {
        blocked_ = !done;
        finished_ = done;
        return std::optional<Page>();
      }
      blocked_ = false;
      PRESTO_FAULT_POINT("scan.create_source");
      ScanSpec spec;
      spec.table = node_->table();
      spec.layout_id = node_->layout_id();
      spec.columns = node_->columns();
      spec.predicates = node_->predicates();
      PRESTO_ASSIGN_OR_RETURN(current_,
                              connector_->CreateDataSource(**split, spec));
      ++splits_processed_;
    }
    PRESTO_ASSIGN_OR_RETURN(std::optional<Page> page, current_->NextPage());
    if (!page.has_value()) {
      bytes_read_ += current_->bytes_read();
      current_.reset();
      continue;
    }
    ctx_->rows_out.fetch_add(page->num_rows());
    return page;
  }
}

// ---- RemoteSourceOperator ----

RemoteSourceOperator::RemoteSourceOperator(
    std::unique_ptr<OperatorContext> ctx, int source_fragment,
    int producer_tasks)
    : Operator(std::move(ctx)),
      source_fragment_(source_fragment),
      producer_tasks_(producer_tasks),
      buffers_(static_cast<size_t>(producer_tasks)),
      clients_(static_cast<size_t>(producer_tasks)),
      done_(static_cast<size_t>(producer_tasks), false),
      error_deadlines_(static_cast<size_t>(producer_tasks)) {}

Status RemoteSourceOperator::AddInput(Page) {
  return Status::Internal("RemoteSource takes no input");
}

Status RemoteSourceOperator::DecodeFrames(const std::string& body,
                                          int64_t skip_frames) {
  ExchangeManager* exchange = ctx_->runtime().exchange;
  size_t offset = 0;
  while (offset < body.size()) {
    PRESTO_FAULT_POINT("exchange.frame_decode");
    auto start = std::chrono::steady_clock::now();
    PRESTO_ASSIGN_OR_RETURN(Page page,
                            exchange->codec().Decode(body, &offset));
    ctx_->serde_nanos.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    if (skip_frames > 0) {
      // Replayed frame this consumer already delivered downstream before a
      // producer replacement reset the stream: decode (to advance the
      // offset) and drop.
      --skip_frames;
      continue;
    }
    ready_pages_.push_back(std::move(page));
  }
  return Status::OK();
}

Status RemoteSourceOperator::PollInProcess(size_t i) {
  ExchangeManager* exchange = ctx_->runtime().exchange;
  const TaskSpec& spec = ctx_->spec();
  auto& buffer = buffers_[i];
  if (buffer == nullptr) {
    buffer = exchange->GetBuffer({spec.query_id, source_fragment_,
                                  static_cast<int>(i), spec.task_index});
    if (buffer == nullptr) return Status::OK();  // producer not started yet
  }
  bool finished = false;
  auto frame = buffer->Poll(&finished);
  if (finished) {
    done_[i] = true;
    return Status::OK();
  }
  if (frame.has_value()) {
    // The network charge is the frame's actual wire size — compressed
    // serialized bytes, not the in-memory Page estimate.
    exchange->SimulateTransfer(frame->wire_bytes());
    PRESTO_RETURN_IF_ERROR(DecodeFrames(frame->bytes, /*skip_frames=*/0));
  }
  return Status::OK();
}

Status RemoteSourceOperator::FetchHttp(size_t i) {
  ExchangeManager* exchange = ctx_->runtime().exchange;
  const TaskSpec& spec = ctx_->spec();
  auto& client = clients_[i];
  if (client == nullptr) {
    auto endpoint = exchange->LookupTaskEndpointInfo(
        spec.query_id, source_fragment_, static_cast<int>(i));
    if (endpoint.port < 0) return Status::OK();  // not registered yet
    client = std::make_unique<ExchangeHttpClient>(
        exchange, endpoint.port,
        StreamId{spec.query_id, source_fragment_, static_cast<int>(i),
                 spec.task_index},
        endpoint.generation);
    if (ctx_->runtime().trace != nullptr) {
      client->SetTraceContext(ctx_->runtime().trace, spec.worker_id + 1,
                              /*tid=*/0);
    }
  }
  auto fetched = client->Fetch();
  if (!fetched.ok()) {
    if (!exchange->retain_for_replay()) return fetched.status();
    // Task recovery is live: the producer may have died and be on its way
    // to a replacement endpoint. Re-resolve; a changed (port, generation)
    // re-opens the stream there from token 0 (already-delivered frames
    // come back flagged as skip_frames and are dropped in DecodeFrames).
    auto endpoint = exchange->LookupTaskEndpointInfo(
        spec.query_id, source_fragment_, static_cast<int>(i));
    if (endpoint.port >= 0 && (endpoint.port != client->port() ||
                               endpoint.generation != client->generation())) {
      client->ResetForReplacement(endpoint.port, endpoint.generation);
      error_deadlines_[i].reset();
      return Status::OK();  // re-poll against the replacement
    }
    // Same endpoint still: tolerate the error for a patience window (the
    // coordinator needs a liveness verdict plus a recovery round before
    // the replacement registers). If this task itself gets superseded
    // instead, its kill switch ends the polling via CheckNotKilled.
    auto now = std::chrono::steady_clock::now();
    if (!error_deadlines_[i].has_value()) {
      error_deadlines_[i] = now + std::chrono::seconds(15);
      return Status::OK();
    }
    if (now < *error_deadlines_[i]) return Status::OK();
    return fetched.status();
  }
  error_deadlines_[i].reset();
  if (!fetched->body.empty()) {
    // Real socket transfer: record the wire bytes, no simulated sleep.
    exchange->RecordTransfer(static_cast<int64_t>(fetched->body.size()));
    PRESTO_RETURN_IF_ERROR(DecodeFrames(fetched->body, fetched->skip_frames));
  }
  if (fetched->complete) {
    // Stream drained. Tear the server-side buffer down eagerly — unless
    // frames are retained for replay: then the buffer must survive this
    // consumer so a replacement task can re-read it from token 0 after a
    // worker death, and the query-end RemoveQuery sweep does the cleanup.
    if (!exchange->retain_for_replay()) {
      (void)client->DeleteBuffer();
    }
    done_[i] = true;
  }
  return Status::OK();
}

std::optional<Page> RemoteSourceOperator::TakeReadyPage() {
  if (ready_pages_.empty()) return std::nullopt;
  Page page = std::move(ready_pages_.front());
  ready_pages_.pop_front();
  ctx_->rows_out.fetch_add(page.num_rows());
  blocked_ = false;
  return page;
}

Result<std::optional<Page>> RemoteSourceOperator::GetOutput() {
  PRESTO_RETURN_IF_ERROR(ctx_->CheckNotKilled());
  PRESTO_FAULT_POINT("exchange.poll");
  if (auto page = TakeReadyPage(); page.has_value()) {
    return std::optional<Page>(std::move(*page));
  }
  const bool http = ctx_->runtime().exchange->network().transport ==
                    TransportMode::kHttp;
  for (int attempt = 0; attempt < producer_tasks_; ++attempt) {
    size_t i = next_;
    next_ = (next_ + 1) % static_cast<size_t>(producer_tasks_);
    if (done_[i]) continue;
    PRESTO_RETURN_IF_ERROR(http ? FetchHttp(i) : PollInProcess(i));
    if (auto page = TakeReadyPage(); page.has_value()) {
      return std::optional<Page>(std::move(*page));
    }
  }
  // Re-check completion over all producers.
  bool all_done = true;
  for (bool d : done_) {
    if (!d) {
      all_done = false;
      break;
    }
  }
  finished_ = all_done;
  blocked_ = !all_done;
  return std::optional<Page>();
}

// ---- FilterProjectOperator ----

FilterProjectOperator::FilterProjectOperator(
    std::unique_ptr<OperatorContext> ctx, ExprPtr filter,
    std::vector<ExprPtr> projections)
    : Operator(std::move(ctx)),
      processor_(std::move(filter), std::move(projections),
                 ctx_->runtime().eval_mode) {}

Status FilterProjectOperator::AddInput(Page page) {
  PRESTO_RETURN_IF_ERROR(ctx_->CheckNotKilled());
  ctx_->rows_in.fetch_add(page.num_rows());
  PRESTO_ASSIGN_OR_RETURN(Page out, processor_.Process(page));
  if (out.num_rows() > 0) {
    ctx_->rows_out.fetch_add(out.num_rows());
    pending_ = std::move(out);
  }
  return Status::OK();
}

Result<std::optional<Page>> FilterProjectOperator::GetOutput() {
  if (!pending_.has_value()) return std::optional<Page>();
  Page out = std::move(*pending_);
  pending_.reset();
  return std::optional<Page>(std::move(out));
}

}  // namespace presto
