#ifndef PRESTOCPP_EXEC_EXEC_CONTEXT_H_
#define PRESTOCPP_EXEC_EXEC_CONTEXT_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "connector/connector.h"
#include "exchange/exchange.h"
#include "expr/evaluator.h"
#include "memory/memory.h"
#include "stats/operator_stats.h"
#include "stats/trace.h"
#include "vector/page.h"

namespace presto {

/// Queue of splits assigned (incrementally, §IV-D3) to a leaf task.
class SplitQueue {
 public:
  void Add(SplitPtr split) {
    std::lock_guard<std::mutex> lock(mu_);
    splits_.push_back(std::move(split));
  }
  void NoMoreSplits() {
    std::lock_guard<std::mutex> lock(mu_);
    no_more_ = true;
  }
  /// nullopt + *done=false means "wait, more may come".
  std::optional<SplitPtr> Poll(bool* done) {
    std::lock_guard<std::mutex> lock(mu_);
    if (splits_.empty()) {
      *done = no_more_;
      return std::nullopt;
    }
    SplitPtr split = std::move(splits_.front());
    splits_.pop_front();
    *done = false;
    return split;
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return splits_.size();
  }

 private:
  mutable std::mutex mu_;
  std::deque<SplitPtr> splits_;
  bool no_more_ = false;
};

/// Bounded result stream from the root fragment to the client. A slow
/// client exerts backpressure all the way down (§IV-E2).
class ResultQueue {
 public:
  explicit ResultQueue(int64_t capacity_bytes = 16LL << 20)
      : capacity_bytes_(capacity_bytes) {}

  /// Producer: false when the queue is full (retry later). A page is
  /// admitted only if it fits within capacity, except into an empty queue
  /// (progress guarantee for oversized pages).
  bool TryPush(Page page) {
    std::lock_guard<std::mutex> lock(mu_);
    int64_t bytes = page.SizeInBytes();
    if (buffered_bytes_ > 0 && buffered_bytes_ + bytes > capacity_bytes_) {
      return false;
    }
    buffered_bytes_ += bytes;
    // Remember the admitted size: SizeInBytes can change while the page is
    // queued (a lazy column loading, for example), and re-measuring on pop
    // would leak phantom buffered bytes.
    pages_.emplace_back(std::move(page), bytes);
    cv_.notify_all();
    return true;
  }

  void Finish(Status status) {
    std::lock_guard<std::mutex> lock(mu_);
    if (finished_) return;
    status_ = std::move(status);
    finished_ = true;
    cv_.notify_all();
  }

  /// Client: blocks until a page arrives or the stream ends. Returns
  /// nullopt at end; error status if the query failed.
  Result<std::optional<Page>> Next() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return !pages_.empty() || finished_; });
    if (!pages_.empty()) {
      auto [page, bytes] = std::move(pages_.front());
      pages_.pop_front();
      buffered_bytes_ -= bytes;
      return std::optional<Page>(std::move(page));
    }
    if (!status_.ok()) return status_;
    return std::optional<Page>();
  }

  bool finished() const {
    std::lock_guard<std::mutex> lock(mu_);
    return finished_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::pair<Page, int64_t>> pages_;  // page + admitted bytes
  int64_t buffered_bytes_ = 0;
  int64_t capacity_bytes_;
  bool finished_ = false;
  Status status_;
};

/// In-task bounded page queue joining pipelines (local shuffles, §IV-C4).
class LocalExchangeQueue {
 public:
  explicit LocalExchangeQueue(int producers, int64_t capacity_bytes = 8 << 20)
      : producers_(producers), capacity_bytes_(capacity_bytes) {}

  bool TryPush(Page page) {
    std::lock_guard<std::mutex> lock(mu_);
    int64_t bytes = page.SizeInBytes();
    // Same admission rule as ExchangeBuffer/ResultQueue: fit, or be the
    // only page in an otherwise empty queue.
    if (buffered_bytes_ > 0 && buffered_bytes_ + bytes > capacity_bytes_) {
      return false;
    }
    buffered_bytes_ += bytes;
    pages_.emplace_back(std::move(page), bytes);  // see ResultQueue::TryPush
    return true;
  }

  void ProducerFinished() {
    std::lock_guard<std::mutex> lock(mu_);
    --producers_;
  }

  std::optional<Page> Poll(bool* done) {
    std::lock_guard<std::mutex> lock(mu_);
    if (pages_.empty()) {
      *done = producers_ == 0;
      return std::nullopt;
    }
    auto [page, bytes] = std::move(pages_.front());
    pages_.pop_front();
    buffered_bytes_ -= bytes;
    *done = false;
    return page;
  }

 private:
  mutable std::mutex mu_;
  std::deque<std::pair<Page, int64_t>> pages_;  // page + admitted bytes
  int64_t buffered_bytes_ = 0;
  int producers_;
  int64_t capacity_bytes_;
};

/// Static description of one task of a fragment.
struct TaskSpec {
  std::string query_id;
  int fragment_id = 0;
  int task_index = 0;
  int num_tasks = 1;            // tasks in this fragment
  int consumer_partitions = 1;  // task count of the consumer fragment
  int worker_id = 0;
  /// Incarnation of this (fragment, task) slot (ISSUE 7): 0 for the
  /// original attempt, +1 for every recovery re-creation. A create request
  /// with a higher generation supersedes the worker's existing entry; its
  /// output buffers and status streams are stamped with the generation so
  /// consumers never mix frames across incarnations.
  int generation = 0;
  /// Producer task counts per source fragment (for RemoteSource readers).
  std::map<int, int> source_task_counts;
};

/// Task-scoped kill switch (ISSUE 7): aborts one task without killing the
/// per-query memory context that other tasks of the same query share on
/// the same worker — required when a single task is superseded by a
/// recovery re-creation while its siblings keep running.
class TaskKillSwitch {
 public:
  void Kill(const Status& reason) {
    std::lock_guard<std::mutex> lock(mu_);
    if (killed_.load()) return;  // first reason wins
    reason_ = reason;
    killed_.store(true);
  }
  bool killed() const { return killed_.load(); }
  Status reason() const {
    std::lock_guard<std::mutex> lock(mu_);
    return killed_.load() ? reason_ : Status::OK();
  }

 private:
  std::atomic<bool> killed_{false};
  mutable std::mutex mu_;
  Status reason_;
};

/// Shared services every operator of a task can reach.
struct TaskRuntime {
  QueryMemory* query_memory = nullptr;
  WorkerMemory* worker_memory = nullptr;
  ExchangeManager* exchange = nullptr;
  const Catalog* catalog = nullptr;
  EvalMode eval_mode = EvalMode::kCompiled;
  int64_t exchange_buffer_bytes = 4 << 20;
  /// Driver instances per parallelizable pipeline (intra-node parallelism,
  /// §IV-C4).
  int max_drivers_per_pipeline = 2;
  /// Per-scan-node split queues (a co-located join has two scans in one
  /// task); owned by the TaskExec. Keyed by TableScanNode id.
  std::map<int, SplitQueue>* split_queues = nullptr;
  ResultQueue* results = nullptr;           // root fragment only
  /// Number of round-robin output partitions currently accepting data
  /// (adaptive writer scaling, §IV-E3); null when not applicable.
  std::atomic<int>* active_output_partitions = nullptr;
  /// Aggregate CPU nanoseconds consumed by this task (MLFQ input).
  std::atomic<int64_t>* task_cpu_nanos = nullptr;
  /// Per-query trace recorder, or null when tracing is off. Raw pointer:
  /// the QueryExecution holds the owning lifecycle alive past every task.
  TraceRecorder* trace = nullptr;
  /// Task-scoped kill switch owned by the TaskExec; null in contexts that
  /// predate task construction (e.g. the reference executor).
  const TaskKillSwitch* task_kill = nullptr;
};

/// Per-operator context: memory accounting against the worker pools plus
/// basic stats. SetMemoryUsage is diff-based: operators report their total
/// retained bytes and the context reconciles with the pools.
class OperatorContext {
 public:
  OperatorContext(TaskRuntime runtime, TaskSpec spec, std::string label,
                  int plan_node_id = -1, int pipeline_id = 0)
      : runtime_(runtime),
        spec_(std::move(spec)),
        label_(std::move(label)),
        plan_node_id_(plan_node_id),
        pipeline_id_(pipeline_id) {}

  ~OperatorContext() { (void)SetMemoryUsage(0, /*user=*/true); }

  const TaskRuntime& runtime() const { return runtime_; }
  const TaskSpec& spec() const { return spec_; }
  const std::string& label() const { return label_; }
  int plan_node_id() const { return plan_node_id_; }
  int pipeline_id() const { return pipeline_id_; }

  /// Updates this operator's retained user-memory footprint.
  Status SetMemoryUsage(int64_t bytes, bool user = true) {
    if (runtime_.worker_memory == nullptr ||
        runtime_.query_memory == nullptr) {
      return Status::OK();
    }
    int64_t delta = bytes - current_bytes_;
    if (delta > 0) {
      PRESTO_RETURN_IF_ERROR(runtime_.worker_memory->Reserve(
          runtime_.query_memory, delta, user));
    } else if (delta < 0) {
      runtime_.worker_memory->Release(runtime_.query_memory, -delta, user);
    }
    // Reserve may revoke this very operator (self-revocation on the same
    // thread through the recursive revoke lock), which re-enters
    // SetMemoryUsage(0) and resets current_bytes_. Apply the delta to the
    // post-reservation value instead of overwriting with `bytes`, so the
    // pool balance always equals current_bytes_.
    current_bytes_ += delta;
    if (bytes > peak_memory_bytes.load(std::memory_order_relaxed)) {
      peak_memory_bytes.store(bytes, std::memory_order_relaxed);
    }
    return Status::OK();
  }

  /// Fails fast when the query — or just this task — was killed elsewhere.
  Status CheckNotKilled() const {
    if (runtime_.query_memory != nullptr && runtime_.query_memory->killed()) {
      return runtime_.query_memory->kill_reason();
    }
    if (runtime_.task_kill != nullptr && runtime_.task_kill->killed()) {
      return runtime_.task_kill->reason();
    }
    return Status::OK();
  }

  /// Reads the counters into an immutable snapshot. Safe to call while the
  /// operator runs; each counter is individually consistent.
  OperatorStats StatsSnapshot() const {
    OperatorStats stats;
    stats.label = label_;
    stats.plan_node_id = plan_node_id_;
    stats.pipeline_id = pipeline_id_;
    stats.fragment_id = spec_.fragment_id;
    stats.instances = 1;
    stats.input_rows = rows_in.load();
    stats.input_pages = input_pages.load();
    stats.input_bytes = input_bytes.load();
    stats.output_rows = rows_out.load();
    stats.output_pages = output_pages.load();
    stats.output_bytes = output_bytes.load();
    stats.add_input_nanos = add_input_nanos.load();
    stats.get_output_nanos = get_output_nanos.load();
    stats.blocked_nanos = blocked_nanos.load();
    stats.queued_nanos = queued_nanos.load();
    stats.peak_memory_bytes = peak_memory_bytes.load();
    stats.spilled_bytes = spilled_bytes.load();
    stats.serde_nanos = serde_nanos.load();
    return stats;
  }

  // Stats: rows are counted by the operators themselves; pages, bytes, and
  // call timings are maintained centrally by the Driver loop.
  std::atomic<int64_t> rows_in{0};
  std::atomic<int64_t> rows_out{0};
  std::atomic<int64_t> input_pages{0};
  std::atomic<int64_t> input_bytes{0};
  std::atomic<int64_t> output_pages{0};
  std::atomic<int64_t> output_bytes{0};
  std::atomic<int64_t> add_input_nanos{0};
  std::atomic<int64_t> get_output_nanos{0};
  std::atomic<int64_t> blocked_nanos{0};
  /// Runnable-but-waiting time in the executor queue (charged by the
  /// executor to the pipeline's sink operator).
  std::atomic<int64_t> queued_nanos{0};
  std::atomic<int64_t> peak_memory_bytes{0};
  std::atomic<int64_t> spilled_bytes{0};
  /// CPU time spent serializing/deserializing wire frames (exchange sinks
  /// and sources) or spill files.
  std::atomic<int64_t> serde_nanos{0};

 private:
  TaskRuntime runtime_;
  TaskSpec spec_;
  std::string label_;
  int plan_node_id_;
  int pipeline_id_;
  int64_t current_bytes_ = 0;
};

}  // namespace presto

#endif  // PRESTOCPP_EXEC_EXEC_CONTEXT_H_
