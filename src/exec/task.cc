#include "exec/task.h"

#include "exec/operators.h"

namespace presto {

namespace {

// Forced-single-driver plan nodes (stateful across all input rows).
bool IsSingleDriverNode(const PlanNode& node) {
  switch (node.kind()) {
    case PlanNodeKind::kAggregate: {
      const auto& agg = static_cast<const AggregateNode&>(node);
      return agg.step() != AggregationStep::kPartial;
    }
    case PlanNodeKind::kSort:
    case PlanNodeKind::kWindow:
    case PlanNodeKind::kTableWrite:
      return true;
    case PlanNodeKind::kTopN:
      return !static_cast<const TopNNode&>(node).partial();
    case PlanNodeKind::kLimit:
      return !static_cast<const LimitNode&>(node).partial();
    default:
      return false;
  }
}

}  // namespace

namespace {

// Pre-creates a split queue per scan node in the fragment.
void CollectScanNodes(const PlanNode& node, std::map<int, SplitQueue>* out) {
  if (node.kind() == PlanNodeKind::kTableScan) {
    (*out)[node.id()];  // default-construct
  }
  for (const auto& c : node.children()) CollectScanNodes(*c, out);
}

}  // namespace

TaskExec::TaskExec(TaskSpec spec, TaskRuntime runtime,
                   const PlanFragment* fragment)
    : spec_(std::move(spec)), runtime_(runtime), fragment_(fragment) {
  CollectScanNodes(*fragment_->root, &split_queues_);
  runtime_.split_queues = &split_queues_;
  runtime_.task_cpu_nanos = &cpu_nanos_;
  runtime_.task_kill = &kill_switch_;
}

std::unique_ptr<OperatorContext> TaskExec::MakeContext(
    const std::string& label, int plan_node_id) {
  // Factories run inside FinishPipeline, before num_pipelines_ is bumped, so
  // the current value is the id of the pipeline under construction.
  return std::make_unique<OperatorContext>(runtime_, spec_, label,
                                           plan_node_id, num_pipelines_);
}

Status TaskExec::Initialize() {
  PipelineBuild root;
  PRESTO_RETURN_IF_ERROR(BuildPipeline(fragment_->root, &root));
  FinishPipeline(std::move(root), /*is_root=*/true);
  return Status::OK();
}

void TaskExec::FinishPipeline(PipelineBuild build, bool is_root) {
  // Root pipelines get the fragment's output sink appended.
  if (is_root) {
    if (fragment_->consumer < 0) {
      build.factories.push_back([this] {
        return std::make_unique<OutputSinkOperator>(MakeContext("output"));
      });
    } else {
      int drivers = build.parallel_safe && build.has_scan
                        ? std::max(1, runtime_.max_drivers_per_pipeline)
                        : 1;
      auto live_sinks = std::make_shared<std::atomic<int>>(drivers);
      ExchangeKind kind = fragment_->output_kind;
      std::vector<int> keys = fragment_->output_keys;
      build.factories.push_back([this, kind, keys, live_sinks] {
        return std::make_unique<ExchangeSinkOperator>(
            MakeContext("exchange_sink"), kind, keys, live_sinks);
      });
    }
  }
  int drivers = build.parallel_safe && build.has_scan
                    ? std::max(1, runtime_.max_drivers_per_pipeline)
                    : 1;
  for (int d = 0; d < drivers; ++d) {
    std::vector<std::unique_ptr<Operator>> ops;
    ops.reserve(build.factories.size());
    for (auto& factory : build.factories) ops.push_back(factory());
    auto driver = std::make_unique<Driver>(std::move(ops));
    if (runtime_.trace != nullptr) {
      // One trace "thread" per driver: worker is the trace process, and
      // the tid packs fragment/task/pipeline/driver so it is unique and
      // sorts sensibly in Perfetto.
      int pid = spec_.worker_id + 1;
      int64_t tid = spec_.fragment_id * 1'000'000LL +
                    spec_.task_index * 10'000LL + num_pipelines_ * 100LL + d;
      driver->SetTraceIdentity(runtime_.trace, pid, tid);
      runtime_.trace->SetThreadName(
          pid, tid,
          "f" + std::to_string(spec_.fragment_id) + ".t" +
              std::to_string(spec_.task_index) + ".p" +
              std::to_string(num_pipelines_) + ".d" + std::to_string(d));
    }
    drivers_.push_back(std::move(driver));
  }
  ++num_pipelines_;
}

Status TaskExec::BuildPipeline(const PlanNodePtr& node,
                               PipelineBuild* current) {
  switch (node->kind()) {
    case PlanNodeKind::kValues: {
      auto values = std::static_pointer_cast<const ValuesNode>(node);
      current->factories.push_back([this, values] {
        return std::make_unique<ValuesOperator>(
            MakeContext("values", values->id()), values);
      });
      current->parallel_safe = false;
      return Status::OK();
    }
    case PlanNodeKind::kTableScan: {
      auto scan = std::static_pointer_cast<const TableScanNode>(node);
      current->factories.push_back([this, scan] {
        return std::make_unique<TableScanOperator>(
            MakeContext("scan", scan->id()), scan);
      });
      current->has_scan = true;
      return Status::OK();
    }
    case PlanNodeKind::kRemoteSource: {
      auto source = std::static_pointer_cast<const RemoteSourceNode>(node);
      auto it = spec_.source_task_counts.find(source->source_fragment());
      int producers = it != spec_.source_task_counts.end() ? it->second : 1;
      int fragment = source->source_fragment();
      int node_id = source->id();
      current->factories.push_back([this, fragment, producers, node_id] {
        return std::make_unique<RemoteSourceOperator>(
            MakeContext("remote_source", node_id), fragment, producers);
      });
      current->parallel_safe = false;
      return Status::OK();
    }
    case PlanNodeKind::kFilter: {
      PRESTO_RETURN_IF_ERROR(BuildPipeline(node->child(), current));
      const auto& filter = static_cast<const FilterNode&>(*node);
      ExprPtr predicate = filter.predicate();
      // Identity projections of all child columns.
      std::vector<ExprPtr> projections;
      for (size_t i = 0; i < node->output().size(); ++i) {
        projections.push_back(Expr::MakeColumn(
            static_cast<int>(i), node->output().at(i).type));
      }
      int node_id = node->id();
      current->factories.push_back([this, predicate, projections, node_id] {
        return std::make_unique<FilterProjectOperator>(
            MakeContext("filter", node_id), predicate, projections);
      });
      return Status::OK();
    }
    case PlanNodeKind::kProject: {
      PRESTO_RETURN_IF_ERROR(BuildPipeline(node->child(), current));
      const auto& project = static_cast<const ProjectNode&>(*node);
      std::vector<ExprPtr> exprs = project.expressions();
      int node_id = node->id();
      current->factories.push_back([this, exprs, node_id] {
        return std::make_unique<FilterProjectOperator>(
            MakeContext("project", node_id), nullptr, exprs);
      });
      return Status::OK();
    }
    case PlanNodeKind::kAggregate: {
      PRESTO_RETURN_IF_ERROR(BuildPipeline(node->child(), current));
      auto agg = std::static_pointer_cast<const AggregateNode>(node);
      if (IsSingleDriverNode(*node) && current->has_scan &&
          runtime_.max_drivers_per_pipeline > 1 && current->parallel_safe) {
        // Intra-node parallelism (§IV-C4): parallel scan drivers feed the
        // single-driver section through a local shuffle.
        int producers = runtime_.max_drivers_per_pipeline;
        auto queue = std::make_shared<LocalExchangeQueue>(producers);
        current->factories.push_back([this, queue] {
          return std::make_unique<LocalExchangeSinkOperator>(
              MakeContext("local_sink"), queue);
        });
        FinishPipeline(std::move(*current), /*is_root=*/false);
        *current = PipelineBuild{};
        current->parallel_safe = false;
        current->factories.push_back([this, queue] {
          return std::make_unique<LocalExchangeSourceOperator>(
              MakeContext("local_source"), queue);
        });
      }
      current->factories.push_back([this, agg] {
        return std::make_unique<HashAggregationOperator>(
            MakeContext("aggregate", agg->id()), agg);
      });
      if (IsSingleDriverNode(*node)) current->parallel_safe = false;
      return Status::OK();
    }
    case PlanNodeKind::kJoin: {
      auto join = std::static_pointer_cast<const JoinNode>(node);
      bool track_matched = join->join_type() == sql::JoinType::kRight ||
                           join->join_type() == sql::JoinType::kFull;
      if (join->residual_filter() != nullptr &&
          join->join_type() != sql::JoinType::kInner &&
          join->join_type() != sql::JoinType::kCross) {
        return Status::Unsupported(
            "non-equi conditions on outer joins are not supported");
      }
      auto bridge = std::make_shared<JoinBridge>();
      // Build side: its own pipeline ending in HashBuild (Fig. 4).
      PipelineBuild build_pipeline;
      PRESTO_RETURN_IF_ERROR(
          BuildPipeline(join->child(1), &build_pipeline));
      std::vector<TypeKind> build_types;
      for (const auto& col : join->child(1)->output().columns()) {
        build_types.push_back(col.type);
      }
      std::vector<int> build_keys = join->right_keys();
      if (build_pipeline.has_scan && build_pipeline.parallel_safe &&
          runtime_.max_drivers_per_pipeline > 1) {
        // Parallel build-side scan into a local shuffle, then a single
        // HashBuild driver — exactly the pipeline split of Fig. 4.
        int producers = runtime_.max_drivers_per_pipeline;
        auto queue = std::make_shared<LocalExchangeQueue>(producers);
        build_pipeline.factories.push_back([this, queue] {
          return std::make_unique<LocalExchangeSinkOperator>(
              MakeContext("local_sink"), queue);
        });
        FinishPipeline(std::move(build_pipeline), /*is_root=*/false);
        PipelineBuild collector;
        collector.parallel_safe = false;
        collector.factories.push_back([this, queue] {
          return std::make_unique<LocalExchangeSourceOperator>(
              MakeContext("local_source"), queue);
        });
        int node_id = join->id();
        collector.factories.push_back(
            [this, bridge, build_types, build_keys, track_matched, node_id] {
              return std::make_unique<HashBuildOperator>(
                  MakeContext("hash_build", node_id), bridge, build_types,
                  build_keys, track_matched);
            });
        FinishPipeline(std::move(collector), /*is_root=*/false);
      } else {
        build_pipeline.parallel_safe = false;
        int node_id = join->id();
        build_pipeline.factories.push_back(
            [this, bridge, build_types, build_keys, track_matched, node_id] {
              return std::make_unique<HashBuildOperator>(
                  MakeContext("hash_build", node_id), bridge, build_types,
                  build_keys, track_matched);
            });
        FinishPipeline(std::move(build_pipeline), /*is_root=*/false);
      }
      // Probe side continues the current pipeline.
      PRESTO_RETURN_IF_ERROR(BuildPipeline(join->child(0), current));
      bool emit_unmatched = track_matched;
      current->factories.push_back([this, join, bridge, emit_unmatched] {
        return std::make_unique<HashProbeOperator>(
            MakeContext("hash_probe", join->id()), join, bridge,
            emit_unmatched);
      });
      if (emit_unmatched) current->parallel_safe = false;
      return Status::OK();
    }
    case PlanNodeKind::kSort: {
      PRESTO_RETURN_IF_ERROR(BuildPipeline(node->child(), current));
      auto sort = std::static_pointer_cast<const SortNode>(node);
      current->factories.push_back([this, sort] {
        return std::make_unique<OrderByOperator>(
            MakeContext("order_by", sort->id()), sort);
      });
      current->parallel_safe = false;
      return Status::OK();
    }
    case PlanNodeKind::kTopN: {
      PRESTO_RETURN_IF_ERROR(BuildPipeline(node->child(), current));
      auto topn = std::static_pointer_cast<const TopNNode>(node);
      current->factories.push_back([this, topn] {
        return std::make_unique<TopNOperator>(
            MakeContext("topn", topn->id()), topn);
      });
      if (!topn->partial()) current->parallel_safe = false;
      return Status::OK();
    }
    case PlanNodeKind::kLimit: {
      PRESTO_RETURN_IF_ERROR(BuildPipeline(node->child(), current));
      const auto& limit = static_cast<const LimitNode&>(*node);
      int64_t n = limit.n();
      int node_id = node->id();
      current->factories.push_back([this, n, node_id] {
        return std::make_unique<LimitOperator>(MakeContext("limit", node_id),
                                               n);
      });
      if (!limit.partial()) current->parallel_safe = false;
      return Status::OK();
    }
    case PlanNodeKind::kWindow: {
      PRESTO_RETURN_IF_ERROR(BuildPipeline(node->child(), current));
      auto window = std::static_pointer_cast<const WindowNode>(node);
      current->factories.push_back([this, window] {
        return std::make_unique<WindowOperator>(
            MakeContext("window", window->id()), window);
      });
      current->parallel_safe = false;
      return Status::OK();
    }
    case PlanNodeKind::kUnionAll: {
      // Each input becomes its own pipeline feeding a local queue.
      auto queue = std::make_shared<LocalExchangeQueue>(
          static_cast<int>(node->children().size()));
      for (const auto& child : node->children()) {
        PipelineBuild input;
        PRESTO_RETURN_IF_ERROR(BuildPipeline(child, &input));
        input.parallel_safe = false;
        input.factories.push_back([this, queue] {
          return std::make_unique<LocalExchangeSinkOperator>(
              MakeContext("union_sink"), queue);
        });
        FinishPipeline(std::move(input), /*is_root=*/false);
      }
      current->parallel_safe = false;
      int node_id = node->id();
      current->factories.push_back([this, queue, node_id] {
        return std::make_unique<LocalExchangeSourceOperator>(
            MakeContext("union_source", node_id), queue);
      });
      return Status::OK();
    }
    case PlanNodeKind::kTableWrite: {
      PRESTO_RETURN_IF_ERROR(BuildPipeline(node->child(), current));
      auto write = std::static_pointer_cast<const TableWriteNode>(node);
      current->factories.push_back([this, write] {
        return std::make_unique<TableWriterOperator>(
            MakeContext("writer", write->id()), write);
      });
      current->parallel_safe = false;
      return Status::OK();
    }
    case PlanNodeKind::kOutput:
      return BuildPipeline(node->child(), current);
    default:
      return Status::Internal("unexpected node in fragment: " +
                              node->Label());
  }
}

TaskStats TaskExec::CollectStats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (final_stats_.has_value()) return *final_stats_;
  return CollectStatsLocked();
}

TaskStats TaskExec::CollectStatsLocked() const {
  TaskStats stats;
  stats.fragment_id = spec_.fragment_id;
  stats.task_index = spec_.task_index;
  stats.worker_id = spec_.worker_id;
  stats.cpu_nanos = cpu_nanos_.load();
  // Drivers of one pipeline are clones of the same operator chain; merge
  // them positionally under the pipeline id recorded in their contexts.
  std::map<int, size_t> by_pipeline;
  for (const auto& driver : drivers_) {
    const auto& ops = driver->operators();
    if (ops.empty()) continue;
    int pipeline_id = ops.front()->ctx().pipeline_id();
    auto it = by_pipeline.find(pipeline_id);
    if (it == by_pipeline.end()) {
      PipelineStats pipeline;
      pipeline.pipeline_id = pipeline_id;
      pipeline.num_drivers = 1;
      pipeline.operators.reserve(ops.size());
      for (const auto& op : ops) {
        pipeline.operators.push_back(op->ctx().StatsSnapshot());
      }
      by_pipeline.emplace(pipeline_id, stats.pipelines.size());
      stats.pipelines.push_back(std::move(pipeline));
    } else {
      PipelineStats& pipeline = stats.pipelines[it->second];
      ++pipeline.num_drivers;
      for (size_t i = 0; i < ops.size() && i < pipeline.operators.size();
           ++i) {
        pipeline.operators[i].Merge(ops[i]->ctx().StatsSnapshot());
      }
    }
  }
  return stats;
}

void TaskExec::ReleaseDrivers() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (final_stats_.has_value()) return;
  final_stats_ = CollectStatsLocked();
  // Destroying the drivers tears down their operators: each
  // OperatorContext destructor returns its memory reservation, and operator
  // destructors drop exchange-buffer references and delete spill files.
  drivers_.clear();
}

bool TaskExec::AllDriversFinished() const {
  for (const auto& driver : drivers_) {
    if (!driver->sink().IsFinished()) return false;
  }
  return true;
}

}  // namespace presto
