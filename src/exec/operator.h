#ifndef PRESTOCPP_EXEC_OPERATOR_H_
#define PRESTOCPP_EXEC_OPERATOR_H_

#include <memory>
#include <optional>

#include "exec/exec_context.h"
#include "vector/page.h"

namespace presto {

/// A single well-defined computation over pages (§IV-D "a pipeline consists
/// of a chain of operators"). The driver loop moves pages between adjacent
/// operators; unlike the Volcano pull model, operators expose their
/// readiness (needs_input / IsBlocked / IsFinished) so the driver can be
/// quickly brought to a known state before yielding its thread (§IV-E1).
class Operator {
 public:
  explicit Operator(std::unique_ptr<OperatorContext> ctx)
      : ctx_(std::move(ctx)) {}
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  OperatorContext& ctx() { return *ctx_; }
  const OperatorContext& ctx() const { return *ctx_; }

  /// True if AddInput may be called now.
  virtual bool needs_input() const = 0;

  /// Pushes a page of input. Only valid when needs_input().
  virtual Status AddInput(Page page) = 0;

  /// Signals that no more input will arrive.
  virtual void NoMoreInput() { no_more_input_ = true; }

  /// Produces output if available; nullopt when none is ready now.
  virtual Result<std::optional<Page>> GetOutput() = 0;

  /// True when the operator has produced all output.
  virtual bool IsFinished() = 0;

  /// True when the operator cannot make progress (waiting on a shuffle
  /// buffer, a split, or a join build). Blocked drivers relinquish their
  /// thread (§IV-F1).
  virtual bool IsBlocked() { return false; }

 protected:
  std::unique_ptr<OperatorContext> ctx_;
  bool no_more_input_ = false;
};

}  // namespace presto

#endif  // PRESTOCPP_EXEC_OPERATOR_H_
