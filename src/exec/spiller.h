#ifndef PRESTOCPP_EXEC_SPILLER_H_
#define PRESTOCPP_EXEC_SPILLER_H_

#include <atomic>
#include <string>
#include <vector>

#include "common/status.h"
#include "stats/trace.h"
#include "vector/page.h"
#include "vector/page_codec.h"

namespace presto {

/// Writes runs of pages to local disk during memory revocation (§IV-F2) and
/// reads them back during finalization. Pages go through the same
/// PageCodec wire format as the shuffle — encoding-preserving, compressed,
/// checksummed — so spill files are both smaller and corruption-detecting.
/// One Spiller owns a set of run files deleted on destruction — including
/// files left behind by a SpillRun that failed partway, so a failed or
/// cancelled query never leaks spill files.
class Spiller {
 public:
  Spiller();
  ~Spiller();

  Spiller(const Spiller&) = delete;
  Spiller& operator=(const Spiller&) = delete;

  /// Writes `pages` as a new run; returns the run index.
  Result<int> SpillRun(const std::vector<Page>& pages);

  /// Records spill/readback spans on `trace` (may be null) against worker
  /// trace process `pid`. Set by the owning operator before spilling.
  void SetTrace(TraceRecorder* trace, int pid) {
    trace_ = trace;
    trace_pid_ = pid;
  }

  int num_runs() const { return static_cast<int>(runs_.size()); }
  /// Bytes written to disk (post-compression frame bytes).
  int64_t spilled_bytes() const { return spilled_bytes_; }
  /// Pre-compression payload bytes behind spilled_bytes().
  int64_t spilled_raw_bytes() const { return spilled_raw_bytes_; }
  /// CPU nanos spent encoding and decoding spill frames.
  int64_t serde_nanos() const { return serde_nanos_.load(); }

  /// Reads back all pages of run `index`.
  Result<std::vector<Page>> ReadRun(int index) const;

  /// Common prefix of every spill file this process creates
  /// ("/tmp/prestocpp-spill-<pid>-"); tests scan for leaks with it.
  static std::string PathPrefix();

  /// Process-wide cumulative spill volume (all Spiller instances), for the
  /// engine gauges: compressed bytes on disk and the raw bytes behind them.
  static int64_t TotalCompressedBytes();
  static int64_t TotalRawBytes();

 private:
  /// Process-unique instance id: two Spillers alive at once (or created in
  /// sequence) can never produce colliding run-file names.
  const int64_t instance_id_;
  PageCodec codec_;
  int64_t next_run_file_ = 0;
  /// Every file ever created, for destructor cleanup (superset of runs_).
  std::vector<std::string> created_files_;
  /// Successfully written runs, indexable by ReadRun.
  std::vector<std::string> runs_;
  int64_t spilled_bytes_ = 0;
  int64_t spilled_raw_bytes_ = 0;
  /// Mutable: ReadRun is logically const but still costs decode CPU.
  mutable std::atomic<int64_t> serde_nanos_{0};
  TraceRecorder* trace_ = nullptr;
  int trace_pid_ = 0;
};

}  // namespace presto

#endif  // PRESTOCPP_EXEC_SPILLER_H_
