#ifndef PRESTOCPP_EXEC_SPILLER_H_
#define PRESTOCPP_EXEC_SPILLER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "vector/page.h"

namespace presto {

/// Writes runs of pages to local disk during memory revocation (§IV-F2) and
/// reads them back during finalization. One Spiller owns a set of run files
/// deleted on destruction.
class Spiller {
 public:
  Spiller();
  ~Spiller();

  Spiller(const Spiller&) = delete;
  Spiller& operator=(const Spiller&) = delete;

  /// Writes `pages` as a new run; returns the run index.
  Result<int> SpillRun(const std::vector<Page>& pages);

  int num_runs() const { return static_cast<int>(files_.size()); }
  int64_t spilled_bytes() const { return spilled_bytes_; }

  /// Reads back all pages of run `index`.
  Result<std::vector<Page>> ReadRun(int index) const;

 private:
  std::vector<std::string> files_;
  int64_t spilled_bytes_ = 0;
};

}  // namespace presto

#endif  // PRESTOCPP_EXEC_SPILLER_H_
