#include "exec/operators.h"

#include <algorithm>
#include <numeric>

namespace presto {

// ---- OrderByOperator ----

OrderByOperator::OrderByOperator(std::unique_ptr<OperatorContext> ctx,
                                 std::shared_ptr<const SortNode> node)
    : Operator(std::move(ctx)),
      node_(std::move(node)),
      types_([this] {
        std::vector<TypeKind> types;
        for (const auto& col : node_->output().columns()) {
          types.push_back(col.type);
        }
        return types;
      }()),
      index_(types_) {
  if (ctx_->runtime().worker_memory != nullptr &&
      ctx_->runtime().query_memory != nullptr &&
      ctx_->runtime().query_memory->config().enable_spill) {
    ctx_->runtime().worker_memory->RegisterRevocable(
        ctx_->runtime().query_memory, this);
    revocable_registered_ = true;
  }
}

OrderByOperator::~OrderByOperator() {
  if (revocable_registered_) {
    ctx_->runtime().worker_memory->UnregisterRevocable(this);
  }
}

Status OrderByOperator::AddInput(Page page) {
  PRESTO_RETURN_IF_ERROR(ctx_->CheckNotKilled());
  if (!error_.ok()) return error_;
  std::lock_guard<std::recursive_mutex> lock(revoke_mu_);
  ctx_->rows_in.fetch_add(page.num_rows());
  index_.AddPage(page);
  return ctx_->SetMemoryUsage(index_.bytes());
}

int64_t OrderByOperator::Revoke() {
  std::unique_lock<std::recursive_mutex> lock(revoke_mu_, std::try_to_lock);
  if (!lock.owns_lock()) return 0;  // busy on another thread: skip
  if (sorted_ready_ || index_.num_rows() == 0) return 0;
  // Sort the in-memory rows and spill them as a sorted run.
  index_.Finish(false);
  std::vector<int32_t> order(static_cast<size_t>(index_.num_rows()));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [this](int32_t a, int32_t b) {
                     return index_.CompareRows(node_->keys(), a, b) < 0;
                   });
  Page sorted = Page(index_.columns(), index_.num_rows())
                    .CopyPositions(order.data(),
                                   static_cast<int64_t>(order.size()));
  int64_t freed = index_.bytes();
  int64_t spilled_before = spiller_.spilled_bytes();
  int64_t serde_before = spiller_.serde_nanos();
  spiller_.SetTrace(ctx_->runtime().trace, ctx_->spec().worker_id + 1);
  auto r = spiller_.SpillRun({sorted});
  if (!r.ok()) {
    error_ = r.status();
    return 0;
  }
  ctx_->spilled_bytes.fetch_add(spiller_.spilled_bytes() - spilled_before);
  ctx_->serde_nanos.fetch_add(spiller_.serde_nanos() - serde_before);
  index_.Clear();
  index_ = PagesIndex(types_);
  (void)ctx_->SetMemoryUsage(0);
  return freed;
}

void OrderByOperator::NoMoreInput() { Operator::NoMoreInput(); }

Result<std::optional<Page>> OrderByOperator::GetOutput() {
  PRESTO_RETURN_IF_ERROR(ctx_->CheckNotKilled());
  if (!error_.ok()) return error_;
  if (!no_more_input_ || output_done_) return std::optional<Page>();
  std::lock_guard<std::recursive_mutex> lock(revoke_mu_);
  if (!sorted_ready_) {
    index_.Finish(false);
    sorted_.resize(static_cast<size_t>(index_.num_rows()));
    std::iota(sorted_.begin(), sorted_.end(), 0);
    std::stable_sort(sorted_.begin(), sorted_.end(),
                     [this](int32_t a, int32_t b) {
                       return index_.CompareRows(node_->keys(), a, b) < 0;
                     });
    // Load spilled runs for the k-way merge.
    for (int run = 0; run < spiller_.num_runs(); ++run) {
      int64_t serde_before = spiller_.serde_nanos();
      PRESTO_ASSIGN_OR_RETURN(std::vector<Page> pages, spiller_.ReadRun(run));
      ctx_->serde_nanos.fetch_add(spiller_.serde_nanos() - serde_before);
      runs_.push_back(RunCursor{std::move(pages), 0, 0});
    }
    sorted_ready_ = true;
  }
  // Merge: in-memory sorted rows + sorted runs.
  const int64_t batch = 4096;
  std::vector<TypeKind> types = types_;
  PageBuilder builder(types);
  auto in_memory_row = [this]() -> int64_t {
    return emit_pos_ < sorted_.size() ? sorted_[emit_pos_] : -1;
  };
  while (builder.num_rows() < batch) {
    // Candidates: the in-memory cursor and each run cursor.
    int best_run = -2;  // -1 = in-memory, -2 = none
    // Compare using a boxed row comparison through the sort keys.
    auto better = [this](const std::vector<Value>& a,
                         const std::vector<Value>& b) {
      for (const auto& key : node_->keys()) {
        int c = a[static_cast<size_t>(key.column)].Compare(
            b[static_cast<size_t>(key.column)]);
        if (c != 0) return (key.ascending ? c : -c) < 0;
      }
      return false;
    };
    std::vector<Value> best_row;
    if (in_memory_row() >= 0) {
      best_run = -1;
      best_row = Page(index_.columns(), index_.num_rows())
                     .GetRow(in_memory_row());
    }
    for (size_t r = 0; r < runs_.size(); ++r) {
      RunCursor& cursor = runs_[r];
      while (cursor.page < cursor.pages.size() &&
             cursor.row >= cursor.pages[cursor.page].num_rows()) {
        ++cursor.page;
        cursor.row = 0;
      }
      if (cursor.page >= cursor.pages.size()) continue;
      std::vector<Value> row = cursor.pages[cursor.page].GetRow(cursor.row);
      if (best_run == -2 || better(row, best_row)) {
        best_run = static_cast<int>(r);
        best_row = std::move(row);
      }
    }
    if (best_run == -2) break;
    builder.AppendRow(best_row);
    if (best_run == -1) {
      ++emit_pos_;
    } else {
      ++runs_[static_cast<size_t>(best_run)].row;
    }
  }
  if (builder.num_rows() == 0) {
    output_done_ = true;
    return std::optional<Page>();
  }
  Page out = builder.Build();
  ctx_->rows_out.fetch_add(out.num_rows());
  return std::optional<Page>(std::move(out));
}

// ---- TopNOperator ----

TopNOperator::TopNOperator(std::unique_ptr<OperatorContext> ctx,
                           std::shared_ptr<const TopNNode> node)
    : Operator(std::move(ctx)), node_(std::move(node)) {}

void TopNOperator::Prune(size_t target) {
  auto cmp = [this](const std::vector<Value>& a,
                    const std::vector<Value>& b) {
    for (const auto& key : node_->keys()) {
      int c = a[static_cast<size_t>(key.column)].Compare(
          b[static_cast<size_t>(key.column)]);
      if (c != 0) return (key.ascending ? c : -c) < 0;
    }
    return false;
  };
  if (rows_.size() <= target) return;
  std::nth_element(rows_.begin(),
                   rows_.begin() + static_cast<ptrdiff_t>(target),
                   rows_.end(), cmp);
  rows_.resize(target);
}

Status TopNOperator::AddInput(Page page) {
  PRESTO_RETURN_IF_ERROR(ctx_->CheckNotKilled());
  ctx_->rows_in.fetch_add(page.num_rows());
  for (int64_t r = 0; r < page.num_rows(); ++r) {
    rows_.push_back(page.GetRow(r));
  }
  auto n = static_cast<size_t>(node_->n());
  if (rows_.size() > 2 * n + 1024) Prune(n);
  return ctx_->SetMemoryUsage(static_cast<int64_t>(rows_.size()) * 64);
}

Result<std::optional<Page>> TopNOperator::GetOutput() {
  PRESTO_RETURN_IF_ERROR(ctx_->CheckNotKilled());
  if (!no_more_input_ || output_done_) return std::optional<Page>();
  output_done_ = true;
  Prune(static_cast<size_t>(node_->n()));
  auto cmp = [this](const std::vector<Value>& a,
                    const std::vector<Value>& b) {
    for (const auto& key : node_->keys()) {
      int c = a[static_cast<size_t>(key.column)].Compare(
          b[static_cast<size_t>(key.column)]);
      if (c != 0) return (key.ascending ? c : -c) < 0;
    }
    return false;
  };
  std::stable_sort(rows_.begin(), rows_.end(), cmp);
  if (rows_.empty()) return std::optional<Page>();
  std::vector<TypeKind> types;
  for (const auto& col : node_->output().columns()) types.push_back(col.type);
  PageBuilder builder(types);
  for (const auto& row : rows_) builder.AppendRow(row);
  ctx_->rows_out.fetch_add(builder.num_rows());
  return std::optional<Page>(builder.Build());
}

// ---- LimitOperator ----

Status LimitOperator::AddInput(Page page) {
  PRESTO_RETURN_IF_ERROR(ctx_->CheckNotKilled());
  ctx_->rows_in.fetch_add(page.num_rows());
  if (page.num_rows() <= remaining_) {
    remaining_ -= page.num_rows();
    pending_ = std::move(page);
  } else {
    std::vector<int32_t> positions;
    for (int64_t i = 0; i < remaining_; ++i) {
      positions.push_back(static_cast<int32_t>(i));
    }
    pending_ = page.CopyPositions(positions.data(), remaining_);
    remaining_ = 0;
  }
  return Status::OK();
}

Result<std::optional<Page>> LimitOperator::GetOutput() {
  if (!pending_.has_value()) return std::optional<Page>();
  Page out = std::move(*pending_);
  pending_.reset();
  ctx_->rows_out.fetch_add(out.num_rows());
  return std::optional<Page>(std::move(out));
}

// ---- WindowOperator ----

WindowOperator::WindowOperator(std::unique_ptr<OperatorContext> ctx,
                               std::shared_ptr<const WindowNode> node)
    : Operator(std::move(ctx)),
      node_(std::move(node)),
      input_types_([this] {
        std::vector<TypeKind> types;
        const auto& input = node_->child()->output();
        for (const auto& col : input.columns()) types.push_back(col.type);
        return types;
      }()),
      index_(input_types_) {}

Status WindowOperator::AddInput(Page page) {
  PRESTO_RETURN_IF_ERROR(ctx_->CheckNotKilled());
  ctx_->rows_in.fetch_add(page.num_rows());
  index_.AddPage(page);
  return ctx_->SetMemoryUsage(index_.bytes());
}

Result<std::optional<Page>> WindowOperator::GetOutput() {
  PRESTO_RETURN_IF_ERROR(ctx_->CheckNotKilled());
  if (!no_more_input_ || output_done_) return std::optional<Page>();
  output_done_ = true;
  index_.Finish(false);
  int64_t rows = index_.num_rows();
  if (rows == 0) return std::optional<Page>();

  // Order rows by (partition keys, order keys).
  std::vector<SortKey> sort_keys;
  for (int p : node_->partition_keys()) sort_keys.push_back({p, true});
  for (const auto& k : node_->order_keys()) sort_keys.push_back(k);
  std::vector<int32_t> order(static_cast<size_t>(rows));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](int32_t a, int32_t b) {
                     return index_.CompareRows(sort_keys, a, b) < 0;
                   });

  auto same_keys = [&](const std::vector<SortKey>& keys, int32_t a,
                       int32_t b) { return index_.CompareRows(keys, a, b) == 0; };
  std::vector<SortKey> partition_keys;
  for (int p : node_->partition_keys()) partition_keys.push_back({p, true});
  const auto& order_keys = node_->order_keys();

  // Compute each window function into a builder aligned with `order`.
  std::vector<BlockBuilder> builders;
  for (const auto& fn : node_->functions()) {
    builders.emplace_back(fn.result_type);
  }

  size_t start = 0;
  auto n = static_cast<size_t>(rows);
  while (start < n) {
    size_t end = start + 1;
    while (end < n && (partition_keys.empty() ||
                       same_keys(partition_keys, order[start], order[end]))) {
      ++end;
    }
    // Partition [start, end) in sorted order.
    for (size_t f = 0; f < node_->functions().size(); ++f) {
      const WindowFunction& fn = node_->functions()[f];
      BlockBuilder& builder = builders[f];
      switch (fn.kind) {
        case WindowFunction::Kind::kRowNumber: {
          for (size_t i = start; i < end; ++i) {
            builder.AppendBigint(static_cast<int64_t>(i - start + 1));
          }
          break;
        }
        case WindowFunction::Kind::kRank:
        case WindowFunction::Kind::kDenseRank: {
          int64_t rank = 0;
          int64_t dense = 0;
          for (size_t i = start; i < end; ++i) {
            if (i == start || !same_keys(order_keys, order[i - 1], order[i])) {
              rank = static_cast<int64_t>(i - start + 1);
              ++dense;
            }
            builder.AppendBigint(
                fn.kind == WindowFunction::Kind::kRank ? rank : dense);
          }
          break;
        }
        case WindowFunction::Kind::kAggregate: {
          // Default SQL frame: RANGE UNBOUNDED PRECEDING .. CURRENT ROW
          // (including peers); with no ORDER BY the frame is the whole
          // partition.
          bool whole_partition = order_keys.empty();
          int64_t count = 0;
          double sum = 0;
          bool sum_valid = false;
          Value min_v, max_v;
          auto accumulate = [&](size_t i) {
            if (fn.arg_column < 0) {
              ++count;
              return;
            }
            Value v = index_.columns()[static_cast<size_t>(fn.arg_column)]
                          ->GetValue(order[i]);
            if (v.is_null()) return;
            ++count;
            if (v.type() != TypeKind::kVarchar &&
                v.type() != TypeKind::kBoolean) {
              sum += v.AsDouble();
              sum_valid = true;
            }
            if (min_v.is_null() || v.Compare(min_v) < 0) min_v = v;
            if (max_v.is_null() || v.Compare(max_v) > 0) max_v = v;
          };
          auto emit_current = [&](int64_t repeat) {
            for (int64_t r = 0; r < repeat; ++r) {
              switch (fn.signature.kind) {
                case AggKind::kCountAll:
                case AggKind::kCount:
                  builder.AppendBigint(count);
                  break;
                case AggKind::kSum:
                  if (!sum_valid) {
                    builder.AppendNull();
                  } else if (fn.result_type == TypeKind::kBigint) {
                    builder.AppendBigint(static_cast<int64_t>(sum));
                  } else {
                    builder.AppendDouble(sum);
                  }
                  break;
                case AggKind::kAvg:
                  if (count == 0) {
                    builder.AppendNull();
                  } else {
                    builder.AppendDouble(sum / static_cast<double>(count));
                  }
                  break;
                case AggKind::kMin:
                  builder.AppendValue(min_v);
                  break;
                case AggKind::kMax:
                  builder.AppendValue(max_v);
                  break;
                default:
                  builder.AppendNull();
              }
            }
          };
          if (whole_partition) {
            for (size_t i = start; i < end; ++i) accumulate(i);
            emit_current(static_cast<int64_t>(end - start));
          } else {
            size_t i = start;
            while (i < end) {
              // Peer group [i, j).
              size_t j = i + 1;
              while (j < end && same_keys(order_keys, order[i], order[j])) {
                ++j;
              }
              for (size_t k = i; k < j; ++k) accumulate(k);
              emit_current(static_cast<int64_t>(j - i));
              i = j;
            }
          }
          break;
        }
      }
    }
    start = end;
  }

  // Assemble output: input columns in sorted order + function columns.
  Page input_sorted = Page(index_.columns(), rows)
                          .CopyPositions(order.data(), rows);
  std::vector<BlockPtr> blocks = input_sorted.blocks();
  for (auto& builder : builders) blocks.push_back(builder.Build());
  ctx_->rows_out.fetch_add(rows);
  return std::optional<Page>(Page(std::move(blocks), rows));
}

}  // namespace presto
