#include "exec/spiller.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <unistd.h>

#include "common/fault_injection.h"
#include "vector/page_serde.h"

namespace presto {

namespace {
// Distinguishes Spiller instances within a process; the pid alone is not
// enough because concurrent queries each get their own Spiller.
std::atomic<int64_t> g_spiller_instance_counter{0};
}  // namespace

std::string Spiller::PathPrefix() {
  return "/tmp/prestocpp-spill-" + std::to_string(getpid()) + "-";
}

Spiller::Spiller() : instance_id_(g_spiller_instance_counter.fetch_add(1)) {}

Spiller::~Spiller() {
  for (const auto& file : created_files_) {
    std::remove(file.c_str());
  }
}

Result<int> Spiller::SpillRun(const std::vector<Page>& pages) {
  std::string path = PathPrefix() + std::to_string(instance_id_) + "-" +
                     std::to_string(next_run_file_++) + ".bin";
  // Track the file before any I/O so the destructor removes it even when the
  // write below fails partway.
  created_files_.push_back(path);
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    return Status::IOError("cannot create spill file " + path);
  }
  PRESTO_FAULT_POINT("spill.write");
  for (const auto& page : pages) {
    std::string data = SerializePage(page);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    spilled_bytes_ += static_cast<int64_t>(data.size());
  }
  out.close();
  if (!out.good()) return Status::IOError("failed writing spill file " + path);
  runs_.push_back(std::move(path));
  return static_cast<int>(runs_.size()) - 1;
}

Result<std::vector<Page>> Spiller::ReadRun(int index) const {
  if (index < 0 || static_cast<size_t>(index) >= runs_.size()) {
    return Status::InvalidArgument("spill run index out of range: " +
                                   std::to_string(index));
  }
  PRESTO_FAULT_POINT("spill.read");
  const std::string& path = runs_[static_cast<size_t>(index)];
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open spill file " + path);
  }
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::vector<Page> pages;
  size_t offset = 0;
  while (offset < data.size()) {
    PRESTO_ASSIGN_OR_RETURN(Page page, DeserializePage(data, &offset));
    pages.push_back(std::move(page));
  }
  return pages;
}

}  // namespace presto
