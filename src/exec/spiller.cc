#include "exec/spiller.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <unistd.h>

#include "common/fault_injection.h"

namespace presto {

namespace {
// Distinguishes Spiller instances within a process; the pid alone is not
// enough because concurrent queries each get their own Spiller.
std::atomic<int64_t> g_spiller_instance_counter{0};
// Process-wide spill volume, feeding the presto_spill_compressed_bytes
// gauge; cumulative, so it survives Spiller teardown at query end.
std::atomic<int64_t> g_spill_compressed_bytes{0};
std::atomic<int64_t> g_spill_raw_bytes{0};

int64_t ElapsedNanos(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}
}  // namespace

std::string Spiller::PathPrefix() {
  return "/tmp/prestocpp-spill-" + std::to_string(getpid()) + "-";
}

int64_t Spiller::TotalCompressedBytes() {
  return g_spill_compressed_bytes.load();
}

int64_t Spiller::TotalRawBytes() { return g_spill_raw_bytes.load(); }

Spiller::Spiller()
    : instance_id_(g_spiller_instance_counter.fetch_add(1)),
      codec_(PageCodecOptions{PageCompression::kLz4,
                              /*preserve_encodings=*/true,
                              /*checksum=*/true}) {}

Spiller::~Spiller() {
  for (const auto& file : created_files_) {
    std::remove(file.c_str());
  }
}

Result<int> Spiller::SpillRun(const std::vector<Page>& pages) {
  int64_t trace_start = trace_ != nullptr ? trace_->NowNanos() : 0;
  int64_t bytes_before = spilled_bytes_;
  std::string path = PathPrefix() + std::to_string(instance_id_) + "-" +
                     std::to_string(next_run_file_++) + ".bin";
  // Track the file before any I/O so the destructor removes it even when the
  // write below fails partway.
  created_files_.push_back(path);
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    return Status::IOError("cannot create spill file " + path);
  }
  PRESTO_FAULT_POINT("spill.write");
  for (const auto& page : pages) {
    auto start = std::chrono::steady_clock::now();
    PageCodec::Frame frame = codec_.Encode(page);
    serde_nanos_.fetch_add(ElapsedNanos(start));
    out.write(frame.bytes.data(),
              static_cast<std::streamsize>(frame.bytes.size()));
    spilled_bytes_ += frame.wire_bytes();
    spilled_raw_bytes_ += frame.raw_bytes;
    g_spill_compressed_bytes.fetch_add(frame.wire_bytes());
    g_spill_raw_bytes.fetch_add(frame.raw_bytes);
  }
  out.close();
  if (!out.good()) return Status::IOError("failed writing spill file " + path);
  runs_.push_back(std::move(path));
  if (trace_ != nullptr) {
    trace_->RecordSpan(
        "memory", "spill_run", trace_pid_, 0, trace_start,
        trace_->NowNanos() - trace_start,
        {{"pages", std::to_string(pages.size())},
         {"bytes", std::to_string(spilled_bytes_ - bytes_before)}});
  }
  return static_cast<int>(runs_.size()) - 1;
}

Result<std::vector<Page>> Spiller::ReadRun(int index) const {
  if (index < 0 || static_cast<size_t>(index) >= runs_.size()) {
    return Status::InvalidArgument("spill run index out of range: " +
                                   std::to_string(index));
  }
  PRESTO_FAULT_POINT("spill.read");
  const std::string& path = runs_[static_cast<size_t>(index)];
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open spill file " + path);
  }
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::vector<Page> pages;
  size_t offset = 0;
  int64_t trace_start = trace_ != nullptr ? trace_->NowNanos() : 0;
  while (offset < data.size()) {
    PRESTO_FAULT_POINT("spill.decompress");
    auto start = std::chrono::steady_clock::now();
    PRESTO_ASSIGN_OR_RETURN(Page page, codec_.Decode(data, &offset));
    serde_nanos_.fetch_add(ElapsedNanos(start));
    pages.push_back(std::move(page));
  }
  if (trace_ != nullptr) {
    trace_->RecordSpan("memory", "spill_read", trace_pid_, 0, trace_start,
                       trace_->NowNanos() - trace_start,
                       {{"run", std::to_string(index)},
                        {"pages", std::to_string(pages.size())}});
  }
  return pages;
}

}  // namespace presto
