#include "exec/spiller.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <unistd.h>

#include "vector/page_serde.h"

namespace presto {

namespace {
std::atomic<int64_t> g_spill_file_counter{0};
}  // namespace

Spiller::Spiller() = default;

Spiller::~Spiller() {
  for (const auto& file : files_) {
    std::remove(file.c_str());
  }
}

Result<int> Spiller::SpillRun(const std::vector<Page>& pages) {
  std::string path = "/tmp/prestocpp-spill-" + std::to_string(getpid()) +
                     "-" + std::to_string(g_spill_file_counter.fetch_add(1)) +
                     ".bin";
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    return Status::IOError("cannot create spill file " + path);
  }
  for (const auto& page : pages) {
    std::string data = SerializePage(page);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    spilled_bytes_ += static_cast<int64_t>(data.size());
  }
  out.close();
  if (!out.good()) return Status::IOError("failed writing spill file " + path);
  files_.push_back(std::move(path));
  return static_cast<int>(files_.size()) - 1;
}

Result<std::vector<Page>> Spiller::ReadRun(int index) const {
  const std::string& path = files_[static_cast<size_t>(index)];
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open spill file " + path);
  }
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::vector<Page> pages;
  size_t offset = 0;
  while (offset < data.size()) {
    PRESTO_ASSIGN_OR_RETURN(Page page, DeserializePage(data, &offset));
    pages.push_back(std::move(page));
  }
  return pages;
}

}  // namespace presto
