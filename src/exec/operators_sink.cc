#include "exec/operators.h"

#include <chrono>

#include "common/fault_injection.h"
#include "common/hash.h"
#include "vector/decoded_block.h"

namespace presto {

namespace {

/// Serializes one partition's slice and charges the wall time to the
/// operator's serde counter (shown as "serde" in EXPLAIN ANALYZE).
PageCodec::Frame EncodeTimed(const PageCodec& codec, const Page& page,
                             OperatorContext* ctx) {
  auto start = std::chrono::steady_clock::now();
  PageCodec::Frame frame = codec.Encode(page);
  ctx->serde_nanos.fetch_add(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return frame;
}

}  // namespace

// ---- ExchangeSinkOperator ----

ExchangeSinkOperator::ExchangeSinkOperator(
    std::unique_ptr<OperatorContext> ctx, ExchangeKind kind,
    std::vector<int> partition_keys,
    std::shared_ptr<std::atomic<int>> live_sinks)
    : Operator(std::move(ctx)),
      kind_(kind),
      partition_keys_(std::move(partition_keys)),
      partitions_(ctx_->spec().consumer_partitions),
      live_sinks_(std::move(live_sinks)) {
  const TaskSpec& spec = ctx_->spec();
  ctx_->runtime().exchange->CreateOutputBuffers(
      spec.query_id, spec.fragment_id, spec.task_index, partitions_,
      ctx_->runtime().exchange_buffer_bytes, spec.generation);
  buffers_.resize(static_cast<size_t>(partitions_));
}

std::shared_ptr<ExchangeBuffer> ExchangeSinkOperator::Buffer(int partition) {
  auto& buffer = buffers_[static_cast<size_t>(partition)];
  if (buffer == nullptr) {
    const TaskSpec& spec = ctx_->spec();
    buffer = ctx_->runtime().exchange->GetBuffer(
        {spec.query_id, spec.fragment_id, spec.task_index, partition});
    PRESTO_CHECK(buffer != nullptr);
  }
  return buffer;
}

Status ExchangeSinkOperator::AddInput(Page page) {
  PRESTO_RETURN_IF_ERROR(ctx_->CheckNotKilled());
  ctx_->rows_in.fetch_add(page.num_rows());
  const PageCodec& codec = ctx_->runtime().exchange->codec();
  switch (kind_) {
    case ExchangeKind::kGather:
      pending_.emplace_back(0, EncodeTimed(codec, page, ctx_.get()));
      break;
    case ExchangeKind::kBroadcast: {
      // One serialization, N cheap frame copies — the whole point of
      // shipping serialized bytes instead of Page objects.
      PageCodec::Frame frame = EncodeTimed(codec, page, ctx_.get());
      for (int p = 0; p < partitions_; ++p) {
        pending_.emplace_back(p, frame);
      }
      break;
    }
    case ExchangeKind::kRoundRobin: {
      int active = partitions_;
      if (ctx_->runtime().active_output_partitions != nullptr) {
        active = std::max(
            1, std::min(partitions_,
                        ctx_->runtime().active_output_partitions->load()));
      }
      round_robin_next_ = (round_robin_next_ + 1) % active;
      pending_.emplace_back(round_robin_next_,
                            EncodeTimed(codec, page, ctx_.get()));
      break;
    }
    case ExchangeKind::kRepartition: {
      // Hash-partition rows (§IV-C3).
      int64_t rows = page.num_rows();
      std::vector<uint64_t> hashes(static_cast<size_t>(rows), 0);
      for (int key : partition_keys_) {
        const auto& block = page.block(static_cast<size_t>(key));
        for (int64_t i = 0; i < rows; ++i) {
          hashes[static_cast<size_t>(i)] = HashCombine(
              hashes[static_cast<size_t>(i)], block->HashAt(i));
        }
      }
      std::vector<std::vector<int32_t>> positions(
          static_cast<size_t>(partitions_));
      for (int64_t i = 0; i < rows; ++i) {
        auto p = static_cast<size_t>(
            hashes[static_cast<size_t>(i)] %
            static_cast<uint64_t>(partitions_));
        positions[p].push_back(static_cast<int32_t>(i));
      }
      for (int p = 0; p < partitions_; ++p) {
        auto& pos = positions[static_cast<size_t>(p)];
        if (pos.empty()) continue;
        Page slice = page.CopyPositions(pos.data(),
                                        static_cast<int64_t>(pos.size()));
        pending_.emplace_back(p, EncodeTimed(codec, slice, ctx_.get()));
      }
      break;
    }
  }
  return Status::OK();
}

Result<std::optional<Page>> ExchangeSinkOperator::GetOutput() {
  PRESTO_RETURN_IF_ERROR(ctx_->CheckNotKilled());
  PRESTO_FAULT_POINT("exchange.enqueue");
  while (!pending_.empty()) {
    auto& [partition, frame] = pending_.front();
    // TryEnqueue copies the frame only on admission, so on a full buffer
    // (backpressure) retrying the same frame later is free.
    if (!Buffer(partition)->TryEnqueue(frame)) {
      // Backpressure: the consumer has not drained its buffer (§IV-E2).
      return std::optional<Page>();
    }
    if (TraceRecorder* trace = ctx_->runtime().trace) {
      trace->RecordInstant("exchange", "enqueue",
                           ctx_->spec().worker_id + 1, 0,
                           {{"partition", std::to_string(partition)},
                            {"rows", std::to_string(frame.rows)},
                            {"bytes", std::to_string(frame.wire_bytes())}});
    }
    ctx_->rows_out.fetch_add(frame.rows);
    pending_.erase(pending_.begin());
  }
  if (no_more_input_ && pending_.empty() && !finished_) {
    // The last sink instance across parallel drivers closes the buffers.
    if (live_sinks_ == nullptr || live_sinks_->fetch_sub(1) == 1) {
      for (int p = 0; p < partitions_; ++p) Buffer(p)->NoMorePages();
    }
    finished_ = true;
  }
  return std::optional<Page>();
}

// ---- TableWriterOperator ----

TableWriterOperator::TableWriterOperator(
    std::unique_ptr<OperatorContext> ctx,
    std::shared_ptr<const TableWriteNode> node)
    : Operator(std::move(ctx)), node_(std::move(node)) {
  auto connector = ctx_->runtime().catalog->Get(node_->connector());
  if (!connector.ok()) {
    init_error_ = connector.status();
    return;
  }
  // Writer id: globally unique per (fragment task); sinks create one file
  // (or equivalent) each, so writer parallelism controls output fragmentation
  // (§IV-E3).
  int writer_id = ctx_->spec().task_index;
  auto sink = (*connector)->CreateDataSink(*node_->table(), writer_id);
  if (!sink.ok()) {
    init_error_ = sink.status();
    return;
  }
  sink_ = std::move(*sink);
}

Status TableWriterOperator::AddInput(Page page) {
  PRESTO_RETURN_IF_ERROR(ctx_->CheckNotKilled());
  if (!init_error_.ok()) return init_error_;
  ctx_->rows_in.fetch_add(page.num_rows());
  bytes_written_ += page.SizeInBytes();
  return sink_->Append(page);
}

Result<std::optional<Page>> TableWriterOperator::GetOutput() {
  PRESTO_RETURN_IF_ERROR(ctx_->CheckNotKilled());
  if (!init_error_.ok()) return init_error_;
  if (!no_more_input_ || emitted_) {
    if (no_more_input_ && emitted_) done_ = true;
    return std::optional<Page>();
  }
  PRESTO_ASSIGN_OR_RETURN(int64_t rows, sink_->Finish());
  emitted_ = true;
  done_ = true;
  ctx_->rows_out.fetch_add(1);
  return std::optional<Page>(Page({MakeBigintBlock({rows})}));
}

}  // namespace presto
