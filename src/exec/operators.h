#ifndef PRESTOCPP_EXEC_OPERATORS_H_
#define PRESTOCPP_EXEC_OPERATORS_H_

#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "exchange/http/exchange_http.h"
#include "exec/group_by_hash.h"
#include "exec/operator.h"
#include "exec/pages_index.h"
#include "exec/spiller.h"
#include "expr/aggregates.h"
#include "expr/page_processor.h"
#include "plan/plan_node.h"

namespace presto {

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Emits the literal rows of a ValuesNode once.
class ValuesOperator final : public Operator {
 public:
  ValuesOperator(std::unique_ptr<OperatorContext> ctx,
                 std::shared_ptr<const ValuesNode> node);
  bool needs_input() const override { return false; }
  Status AddInput(Page) override;
  Result<std::optional<Page>> GetOutput() override;
  bool IsFinished() override { return done_; }

 private:
  std::shared_ptr<const ValuesNode> node_;
  bool done_ = false;
};

/// Reads splits from the task's split queue through the connector Data
/// Source API (§IV-D3): blocked while no split is available, finished when
/// the coordinator declares no-more-splits and all assigned splits are read.
class TableScanOperator final : public Operator {
 public:
  TableScanOperator(std::unique_ptr<OperatorContext> ctx,
                    std::shared_ptr<const TableScanNode> node);
  bool needs_input() const override { return false; }
  Status AddInput(Page) override;
  Result<std::optional<Page>> GetOutput() override;
  bool IsFinished() override { return finished_; }
  bool IsBlocked() override { return blocked_; }

  int64_t bytes_read() const { return bytes_read_; }
  int64_t splits_processed() const { return splits_processed_; }

 private:
  std::shared_ptr<const TableScanNode> node_;
  Connector* connector_ = nullptr;
  std::unique_ptr<DataSource> current_;
  bool finished_ = false;
  bool blocked_ = false;
  int64_t bytes_read_ = 0;
  int64_t splits_processed_ = 0;
};

/// Consumer end of a shuffle: pulls serialized frames from every producer
/// task of the source fragment. Two transports (NetworkConfig.transport):
/// kInProcess polls the producers' ExchangeBuffers directly with a
/// simulated network charge; kHttp long-polls each producer's exchange
/// server over a real localhost socket with the token/ack protocol and
/// retry (§IV-E2).
class RemoteSourceOperator final : public Operator {
 public:
  RemoteSourceOperator(std::unique_ptr<OperatorContext> ctx,
                       int source_fragment, int producer_tasks);
  bool needs_input() const override { return false; }
  Status AddInput(Page) override;
  Result<std::optional<Page>> GetOutput() override;
  bool IsFinished() override { return finished_; }
  bool IsBlocked() override { return blocked_; }

 private:
  /// One in-process poll attempt against producer `i`; delivers via
  /// ready_pages_.
  Status PollInProcess(size_t i);
  /// One HTTP fetch attempt against producer `i`; decodes every returned
  /// frame into ready_pages_. Under task recovery (retain_for_replay on)
  /// fetch errors re-resolve the producer's endpoint: a moved or
  /// re-generationed endpoint re-opens the stream against the replacement
  /// (replaying from token 0 with duplicate frames dropped), anything else
  /// is tolerated until a patience deadline before propagating.
  Status FetchHttp(size_t i);
  /// Decodes all frames of a fetched body into ready_pages_, dropping the
  /// first `skip_frames` of them (already delivered before a producer
  /// replacement replayed the stream).
  Status DecodeFrames(const std::string& body, int64_t skip_frames);
  std::optional<Page> TakeReadyPage();

  int source_fragment_;
  int producer_tasks_;
  std::vector<std::shared_ptr<ExchangeBuffer>> buffers_;   // kInProcess
  std::vector<std::unique_ptr<ExchangeHttpClient>> clients_;  // kHttp
  std::deque<Page> ready_pages_;  // decoded, not yet delivered downstream
  std::vector<bool> done_;
  /// Per-producer fetch-error deadline (recovery mode): errors within the
  /// window read as "replacement in flight", past it they propagate.
  std::vector<std::optional<std::chrono::steady_clock::time_point>>
      error_deadlines_;
  size_t next_ = 0;
  bool finished_ = false;
  bool blocked_ = false;
};

/// In-task pipeline connectors (local shuffles, §IV-C4).
class LocalExchangeSourceOperator final : public Operator {
 public:
  LocalExchangeSourceOperator(std::unique_ptr<OperatorContext> ctx,
                              std::shared_ptr<LocalExchangeQueue> queue)
      : Operator(std::move(ctx)), queue_(std::move(queue)) {}
  bool needs_input() const override { return false; }
  Status AddInput(Page) override {
    return Status::Internal("source takes no input");
  }
  Result<std::optional<Page>> GetOutput() override {
    bool done = false;
    auto page = queue_->Poll(&done);
    blocked_ = !page.has_value() && !done;
    if (done) finished_ = true;
    if (page.has_value()) ctx_->rows_out.fetch_add(page->num_rows());
    return page.has_value() ? Result<std::optional<Page>>(std::move(page))
                            : Result<std::optional<Page>>(std::optional<Page>());
  }
  bool IsFinished() override { return finished_; }
  bool IsBlocked() override { return blocked_; }

 private:
  std::shared_ptr<LocalExchangeQueue> queue_;
  bool finished_ = false;
  bool blocked_ = false;
};

class LocalExchangeSinkOperator final : public Operator {
 public:
  LocalExchangeSinkOperator(std::unique_ptr<OperatorContext> ctx,
                            std::shared_ptr<LocalExchangeQueue> queue)
      : Operator(std::move(ctx)), queue_(std::move(queue)) {}
  bool needs_input() const override { return !pending_.has_value(); }
  Status AddInput(Page page) override {
    ctx_->rows_in.fetch_add(page.num_rows());
    pending_ = std::move(page);
    return Status::OK();
  }
  void NoMoreInput() override { Operator::NoMoreInput(); }
  Result<std::optional<Page>> GetOutput() override {
    // Copy, not move: on a full queue the same page is retried later.
    if (pending_.has_value() && queue_->TryPush(*pending_)) {
      ctx_->rows_out.fetch_add(pending_->num_rows());
      pending_.reset();
    }
    if (!pending_.has_value() && no_more_input_ && !finished_) {
      queue_->ProducerFinished();
      finished_ = true;
    }
    return std::optional<Page>();
  }
  bool IsFinished() override { return finished_; }
  bool IsBlocked() override { return pending_.has_value(); }

 private:
  std::shared_ptr<LocalExchangeQueue> queue_;
  std::optional<Page> pending_;
  bool finished_ = false;
};

// ---------------------------------------------------------------------------
// Transforms
// ---------------------------------------------------------------------------

/// Fused filter + projections over a PageProcessor (dictionary/RLE-aware,
/// §V-E).
class FilterProjectOperator final : public Operator {
 public:
  FilterProjectOperator(std::unique_ptr<OperatorContext> ctx, ExprPtr filter,
                        std::vector<ExprPtr> projections);
  bool needs_input() const override {
    return !pending_.has_value() && !no_more_input_;
  }
  Status AddInput(Page page) override;
  Result<std::optional<Page>> GetOutput() override;
  bool IsFinished() override { return no_more_input_ && !pending_.has_value(); }

  const PageProcessor::Stats& processor_stats() const {
    return processor_.stats();
  }

 private:
  PageProcessor processor_;
  std::optional<Page> pending_;
};

/// Grouped/global aggregation with partial flushing and spill-based memory
/// revocation (§IV-F2).
class HashAggregationOperator final : public Operator, public Revocable {
 public:
  HashAggregationOperator(std::unique_ptr<OperatorContext> ctx,
                          std::shared_ptr<const AggregateNode> node);
  ~HashAggregationOperator() override;

  bool needs_input() const override {
    return !no_more_input_ && !flush_pending_.has_value();
  }
  Status AddInput(Page page) override;
  void NoMoreInput() override;
  Result<std::optional<Page>> GetOutput() override;
  bool IsFinished() override;

  int64_t Revoke() override;
  int64_t spilled_bytes() const { return spiller_.spilled_bytes(); }

 private:
  Page BuildOutputPage(bool intermediate);
  Status MergeSpilledRuns();
  Status error_;

  std::shared_ptr<const AggregateNode> node_;
  std::vector<TypeKind> key_types_;
  GroupByHash groups_;
  std::vector<std::unique_ptr<Accumulator>> accumulators_;
  std::vector<int32_t> group_ids_;
  std::optional<Page> flush_pending_;  // partial-flush output
  bool output_done_ = false;
  bool finalized_ = false;
  Spiller spiller_;
  bool revocable_registered_ = false;
  int64_t partial_flush_bytes_ = 16 << 20;
  // Recursive + try_lock in Revoke(): a reservation made while holding the
  // lock may synchronously revoke this same operator (self-revocation), and
  // cross-operator revocation cycles must not deadlock.
  std::recursive_mutex revoke_mu_;
};

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

/// Shared state between the build and probe pipelines of one hash join
/// within a task (Fig. 4).
struct JoinBridge {
  std::atomic<bool> ready{false};
  std::vector<BlockPtr> columns;  // build columns + trailing null sentinel
  std::vector<int> key_columns;
  int64_t rows = 0;               // excluding the sentinel
  std::vector<int32_t> heads;     // hash buckets -> first row in chain
  std::vector<int32_t> next;      // chain links
  uint64_t mask = 0;
  std::unique_ptr<std::atomic<uint8_t>[]> matched;  // right/full joins
};

class HashBuildOperator final : public Operator {
 public:
  HashBuildOperator(std::unique_ptr<OperatorContext> ctx,
                    std::shared_ptr<JoinBridge> bridge,
                    std::vector<TypeKind> types, std::vector<int> key_columns,
                    bool track_matched);
  bool needs_input() const override { return !no_more_input_; }
  Status AddInput(Page page) override;
  void NoMoreInput() override;
  Result<std::optional<Page>> GetOutput() override {
    return std::optional<Page>();
  }
  bool IsFinished() override { return bridge_->ready.load(); }

 private:
  std::shared_ptr<JoinBridge> bridge_;
  PagesIndex index_;
  std::vector<int> key_columns_;
  bool track_matched_;
};

class HashProbeOperator final : public Operator {
 public:
  HashProbeOperator(std::unique_ptr<OperatorContext> ctx,
                    std::shared_ptr<const JoinNode> node,
                    std::shared_ptr<JoinBridge> bridge,
                    bool emit_unmatched_build);
  bool needs_input() const override {
    return bridge_->ready.load() && !probe_page_.has_value() &&
           !no_more_input_;
  }
  Status AddInput(Page page) override;
  Result<std::optional<Page>> GetOutput() override;
  bool IsFinished() override;
  bool IsBlocked() override {
    return !bridge_->ready.load() && !no_more_input_;
  }

 private:
  Result<std::optional<Page>> BuildOutput(
      const std::vector<int32_t>& probe_positions,
      const std::vector<int32_t>& build_positions);
  Result<std::optional<Page>> EmitUnmatchedBuild();

  std::shared_ptr<const JoinNode> node_;
  std::shared_ptr<JoinBridge> bridge_;
  std::optional<Page> probe_page_;
  int64_t probe_row_ = 0;
  bool emit_unmatched_build_;
  bool unmatched_emitted_ = false;
  bool finished_ = false;
};

// ---------------------------------------------------------------------------
// Sorting / limiting / windows
// ---------------------------------------------------------------------------

class OrderByOperator final : public Operator, public Revocable {
 public:
  OrderByOperator(std::unique_ptr<OperatorContext> ctx,
                  std::shared_ptr<const SortNode> node);
  ~OrderByOperator() override;
  bool needs_input() const override { return !no_more_input_; }
  Status AddInput(Page page) override;
  void NoMoreInput() override;
  Result<std::optional<Page>> GetOutput() override;
  bool IsFinished() override { return output_done_; }
  int64_t Revoke() override;

 private:
  std::shared_ptr<const SortNode> node_;
  std::vector<TypeKind> types_;
  PagesIndex index_;
  Spiller spiller_;
  bool revocable_registered_ = false;
  std::recursive_mutex revoke_mu_;
  // Merge state after NoMoreInput.
  struct RunCursor {
    std::vector<Page> pages;
    size_t page = 0;
    int64_t row = 0;
  };
  std::vector<RunCursor> runs_;
  std::vector<int32_t> sorted_;  // in-memory sorted row order
  size_t emit_pos_ = 0;
  bool sorted_ready_ = false;
  bool output_done_ = false;
  Status error_;
};

class TopNOperator final : public Operator {
 public:
  TopNOperator(std::unique_ptr<OperatorContext> ctx,
               std::shared_ptr<const TopNNode> node);
  bool needs_input() const override { return !no_more_input_; }
  Status AddInput(Page page) override;
  Result<std::optional<Page>> GetOutput() override;
  bool IsFinished() override { return output_done_; }

 private:
  void Prune(size_t target);

  std::shared_ptr<const TopNNode> node_;
  std::vector<std::vector<Value>> rows_;
  bool output_done_ = false;
};

class LimitOperator final : public Operator {
 public:
  LimitOperator(std::unique_ptr<OperatorContext> ctx, int64_t limit)
      : Operator(std::move(ctx)), remaining_(limit) {}
  bool needs_input() const override {
    return remaining_ > 0 && !pending_.has_value() && !no_more_input_;
  }
  Status AddInput(Page page) override;
  Result<std::optional<Page>> GetOutput() override;
  bool IsFinished() override {
    return (remaining_ <= 0 || no_more_input_) && !pending_.has_value();
  }

 private:
  int64_t remaining_;
  std::optional<Page> pending_;
};

class WindowOperator final : public Operator {
 public:
  WindowOperator(std::unique_ptr<OperatorContext> ctx,
                 std::shared_ptr<const WindowNode> node);
  bool needs_input() const override { return !no_more_input_; }
  Status AddInput(Page page) override;
  Result<std::optional<Page>> GetOutput() override;
  bool IsFinished() override { return output_done_; }

 private:
  std::shared_ptr<const WindowNode> node_;
  std::vector<TypeKind> input_types_;
  PagesIndex index_;
  bool output_done_ = false;
};

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Producer end of a shuffle: partitions pages, serializes each partition's
/// slice to a wire frame (encoding-preserving, compressed, checksummed), and
/// enqueues the frames into the per-consumer output buffers with
/// backpressure charged in wire bytes (§IV-E2).
class ExchangeSinkOperator final : public Operator {
 public:
  /// `live_sinks` counts sink instances across parallel drivers; the last
  /// one to finish closes the output buffers.
  ExchangeSinkOperator(std::unique_ptr<OperatorContext> ctx,
                       ExchangeKind kind, std::vector<int> partition_keys,
                       std::shared_ptr<std::atomic<int>> live_sinks);
  bool needs_input() const override {
    return pending_.empty() && !no_more_input_;
  }
  Status AddInput(Page page) override;
  Result<std::optional<Page>> GetOutput() override;
  bool IsFinished() override { return finished_; }
  bool IsBlocked() override { return !pending_.empty(); }

 private:
  std::shared_ptr<ExchangeBuffer> Buffer(int partition);

  ExchangeKind kind_;
  std::vector<int> partition_keys_;
  int partitions_;
  std::vector<std::shared_ptr<ExchangeBuffer>> buffers_;
  std::vector<std::pair<int, PageCodec::Frame>> pending_;
  std::shared_ptr<std::atomic<int>> live_sinks_;
  int round_robin_next_ = 0;
  bool finished_ = false;
};

/// Streams final results into the client's ResultQueue; a full queue (slow
/// client) blocks the pipeline.
class OutputSinkOperator final : public Operator {
 public:
  explicit OutputSinkOperator(std::unique_ptr<OperatorContext> ctx)
      : Operator(std::move(ctx)) {}
  bool needs_input() const override {
    return !pending_.has_value() && !no_more_input_;
  }
  Status AddInput(Page page) override {
    ctx_->rows_in.fetch_add(page.num_rows());
    pending_ = std::move(page);
    return Status::OK();
  }
  Result<std::optional<Page>> GetOutput() override {
    // Copy, not move: a full result queue (slow client) retries the page.
    if (pending_.has_value() &&
        ctx_->runtime().results->TryPush(*pending_)) {
      ctx_->rows_out.fetch_add(pending_->num_rows());
      pending_.reset();
    }
    if (!pending_.has_value() && no_more_input_) finished_ = true;
    return std::optional<Page>();
  }
  bool IsFinished() override { return finished_; }
  bool IsBlocked() override { return pending_.has_value(); }

 private:
  std::optional<Page> pending_;
  bool finished_ = false;
};

/// Writes pages through the connector Data Sink API and emits the row count
/// at the end (the TableWrite contract).
class TableWriterOperator final : public Operator {
 public:
  TableWriterOperator(std::unique_ptr<OperatorContext> ctx,
                      std::shared_ptr<const TableWriteNode> node);
  bool needs_input() const override { return !no_more_input_; }
  Status AddInput(Page page) override;
  Result<std::optional<Page>> GetOutput() override;
  bool IsFinished() override { return done_; }

  int64_t bytes_written() const { return bytes_written_; }

 private:
  std::shared_ptr<const TableWriteNode> node_;
  std::unique_ptr<DataSink> sink_;
  Status init_error_;
  bool done_ = false;
  bool emitted_ = false;
  int64_t bytes_written_ = 0;
};

}  // namespace presto

#endif  // PRESTOCPP_EXEC_OPERATORS_H_
