#include "exec/operators.h"

#include "common/hash.h"
#include "expr/evaluator.h"
#include "vector/decoded_block.h"
#include "vector/encoded_block.h"

namespace presto {

namespace {

// Combined hash of the key columns at `row` (0 if any key is null, with a
// null flag out-param: null keys never join).
uint64_t HashKeys(const std::vector<BlockPtr>& columns,
                  const std::vector<int>& keys, int64_t row, bool* any_null) {
  uint64_t h = 0;
  *any_null = false;
  for (int k : keys) {
    const auto& col = columns[static_cast<size_t>(k)];
    if (col->IsNull(row)) {
      *any_null = true;
      return 0;
    }
    h = HashCombine(h, col->HashAt(row));
  }
  return h;
}

uint64_t NextPowerOfTwo(uint64_t n) {
  uint64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

// ---- HashBuildOperator ----

HashBuildOperator::HashBuildOperator(std::unique_ptr<OperatorContext> ctx,
                                     std::shared_ptr<JoinBridge> bridge,
                                     std::vector<TypeKind> types,
                                     std::vector<int> key_columns,
                                     bool track_matched)
    : Operator(std::move(ctx)),
      bridge_(std::move(bridge)),
      index_(std::move(types)),
      key_columns_(std::move(key_columns)),
      track_matched_(track_matched) {}

Status HashBuildOperator::AddInput(Page page) {
  PRESTO_RETURN_IF_ERROR(ctx_->CheckNotKilled());
  ctx_->rows_in.fetch_add(page.num_rows());
  index_.AddPage(page);
  return ctx_->SetMemoryUsage(index_.bytes());
}

void HashBuildOperator::NoMoreInput() {
  Operator::NoMoreInput();
  // Build the table and publish the bridge (the hash-build pipeline of
  // Fig. 4 completing). num_rows() excludes the appended null sentinel,
  // which lives at column index `rows`.
  index_.Finish(/*extra_null_row=*/true);
  int64_t rows = index_.num_rows();
  bridge_->columns = index_.columns();
  bridge_->key_columns = key_columns_;
  bridge_->rows = rows;
  if (!key_columns_.empty() && rows > 0) {
    uint64_t buckets = NextPowerOfTwo(static_cast<uint64_t>(rows) * 2);
    bridge_->heads.assign(buckets, -1);
    bridge_->next.assign(static_cast<size_t>(rows), -1);
    bridge_->mask = buckets - 1;
    for (int64_t r = 0; r < rows; ++r) {
      bool any_null = false;
      uint64_t h = HashKeys(bridge_->columns, key_columns_, r, &any_null);
      if (any_null) continue;  // null keys never match
      auto bucket = static_cast<size_t>(h & bridge_->mask);
      bridge_->next[static_cast<size_t>(r)] = bridge_->heads[bucket];
      bridge_->heads[bucket] = static_cast<int32_t>(r);
    }
  }
  if (track_matched_ && rows > 0) {
    bridge_->matched =
        std::make_unique<std::atomic<uint8_t>[]>(static_cast<size_t>(rows));
    for (int64_t r = 0; r < rows; ++r) bridge_->matched[r] = 0;
  }
  int64_t bytes = 0;
  for (const auto& col : bridge_->columns) bytes += col->SizeInBytes();
  (void)ctx_->SetMemoryUsage(
      bytes + static_cast<int64_t>(bridge_->heads.size() * 4 +
                                   bridge_->next.size() * 4));
  bridge_->ready.store(true);
}

// ---- HashProbeOperator ----

HashProbeOperator::HashProbeOperator(std::unique_ptr<OperatorContext> ctx,
                                     std::shared_ptr<const JoinNode> node,
                                     std::shared_ptr<JoinBridge> bridge,
                                     bool emit_unmatched_build)
    : Operator(std::move(ctx)),
      node_(std::move(node)),
      bridge_(std::move(bridge)),
      emit_unmatched_build_(emit_unmatched_build) {}

Status HashProbeOperator::AddInput(Page page) {
  PRESTO_RETURN_IF_ERROR(ctx_->CheckNotKilled());
  ctx_->rows_in.fetch_add(page.num_rows());
  probe_page_ = std::move(page);
  probe_row_ = 0;
  return Status::OK();
}

Result<std::optional<Page>> HashProbeOperator::BuildOutput(
    const std::vector<int32_t>& probe_positions,
    const std::vector<int32_t>& build_positions) {
  if (probe_positions.empty()) return std::optional<Page>();
  auto rows = static_cast<int64_t>(probe_positions.size());
  std::vector<BlockPtr> blocks;
  // Probe columns: copy the matching positions.
  Page probe_cols =
      probe_page_->CopyPositions(probe_positions.data(), rows);
  for (const auto& b : probe_cols.blocks()) blocks.push_back(b);
  // Build columns: dictionary blocks over the build-side data — the paper's
  // compressed intermediate results for joins (§V-E). The trailing null
  // sentinel row represents non-matches in outer joins.
  for (size_t c = 0; c < bridge_->columns.size(); ++c) {
    blocks.push_back(std::make_shared<DictionaryBlock>(
        bridge_->columns[c], build_positions));
  }
  Page out(std::move(blocks), rows);
  // Residual filter (only on inner/cross joins; enforced at plan time).
  if (node_->residual_filter() != nullptr) {
    ExprEvaluator eval(node_->residual_filter(),
                       ctx_->runtime().eval_mode);
    PRESTO_ASSIGN_OR_RETURN(BlockPtr mask, eval.Eval(out));
    DecodedBlock d;
    d.Decode(mask);
    std::vector<int32_t> selected;
    for (int64_t i = 0; i < rows; ++i) {
      if (!d.IsNull(i) && d.ValueAt<uint8_t>(i) != 0) {
        selected.push_back(static_cast<int32_t>(i));
      }
    }
    if (selected.empty()) return std::optional<Page>();
    out = out.CopyPositions(selected.data(),
                            static_cast<int64_t>(selected.size()));
  }
  ctx_->rows_out.fetch_add(out.num_rows());
  return std::optional<Page>(std::move(out));
}

Result<std::optional<Page>> HashProbeOperator::EmitUnmatchedBuild() {
  unmatched_emitted_ = true;
  if (bridge_->rows == 0 || bridge_->matched == nullptr) {
    return std::optional<Page>();
  }
  std::vector<int32_t> build_positions;
  for (int64_t r = 0; r < bridge_->rows; ++r) {
    if (bridge_->matched[static_cast<size_t>(r)].load() == 0) {
      build_positions.push_back(static_cast<int32_t>(r));
    }
  }
  if (build_positions.empty()) return std::optional<Page>();
  auto rows = static_cast<int64_t>(build_positions.size());
  std::vector<BlockPtr> blocks;
  size_t probe_width =
      node_->output().size() - bridge_->columns.size();
  for (size_t c = 0; c < probe_width; ++c) {
    blocks.push_back(
        MakeAllNullBlock(node_->output().at(c).type, rows));
  }
  for (const auto& col : bridge_->columns) {
    blocks.push_back(std::make_shared<DictionaryBlock>(col, build_positions));
  }
  ctx_->rows_out.fetch_add(rows);
  return std::optional<Page>(Page(std::move(blocks), rows));
}

Result<std::optional<Page>> HashProbeOperator::GetOutput() {
  PRESTO_RETURN_IF_ERROR(ctx_->CheckNotKilled());
  if (!bridge_->ready.load()) return std::optional<Page>();
  const bool preserve_probe = node_->join_type() == sql::JoinType::kLeft ||
                              node_->join_type() == sql::JoinType::kFull;
  const auto null_sentinel = static_cast<int32_t>(bridge_->rows);
  if (probe_page_.has_value()) {
    std::vector<int32_t> probe_positions;
    std::vector<int32_t> build_positions;
    const int64_t batch_limit = 8192;
    const auto& probe_blocks = probe_page_->blocks();
    while (probe_row_ < probe_page_->num_rows() &&
           static_cast<int64_t>(probe_positions.size()) < batch_limit) {
      int64_t row = probe_row_++;
      if (node_->left_keys().empty()) {
        // Cross join: match every build row.
        for (int64_t b = 0; b < bridge_->rows; ++b) {
          probe_positions.push_back(static_cast<int32_t>(row));
          build_positions.push_back(static_cast<int32_t>(b));
        }
        if (bridge_->rows == 0 && preserve_probe) {
          probe_positions.push_back(static_cast<int32_t>(row));
          build_positions.push_back(null_sentinel);
        }
        continue;
      }
      bool any_null = false;
      uint64_t h = 0;
      {
        // Hash the probe keys directly off the probe page blocks.
        bool null_flag = false;
        uint64_t combined = 0;
        for (int k : node_->left_keys()) {
          const auto& col = probe_blocks[static_cast<size_t>(k)];
          if (col->IsNull(row)) {
            null_flag = true;
            break;
          }
          combined = HashCombine(combined, col->HashAt(row));
        }
        any_null = null_flag;
        h = combined;
      }
      bool matched = false;
      if (!any_null && bridge_->rows > 0 && !bridge_->heads.empty()) {
        auto bucket = static_cast<size_t>(h & bridge_->mask);
        for (int32_t b = bridge_->heads[bucket]; b >= 0;
             b = bridge_->next[static_cast<size_t>(b)]) {
          bool equal = true;
          for (size_t k = 0; k < node_->left_keys().size(); ++k) {
            const auto& probe_col =
                probe_blocks[static_cast<size_t>(node_->left_keys()[k])];
            const auto& build_col =
                bridge_->columns[static_cast<size_t>(
                    bridge_->key_columns[k])];
            if (!probe_col->EqualsAt(row, *build_col, b)) {
              equal = false;
              break;
            }
          }
          if (equal) {
            matched = true;
            probe_positions.push_back(static_cast<int32_t>(row));
            build_positions.push_back(b);
            if (bridge_->matched != nullptr) {
              bridge_->matched[static_cast<size_t>(b)].store(1);
            }
          }
        }
      }
      if (!matched && preserve_probe) {
        probe_positions.push_back(static_cast<int32_t>(row));
        build_positions.push_back(null_sentinel);
      }
    }
    PRESTO_ASSIGN_OR_RETURN(
        std::optional<Page> out,
        BuildOutput(probe_positions, build_positions));
    if (probe_row_ >= probe_page_->num_rows() && out.has_value()) {
      // Keep the page until BuildOutput no longer references it.
      probe_page_.reset();
      probe_row_ = 0;
    } else if (probe_row_ >= probe_page_->num_rows()) {
      probe_page_.reset();
      probe_row_ = 0;
    }
    if (out.has_value()) return out;
    // Fall through: batch produced nothing (e.g. all filtered); try again
    // next call.
    return std::optional<Page>();
  }
  if (no_more_input_) {
    if (emit_unmatched_build_ && !unmatched_emitted_) {
      return EmitUnmatchedBuild();
    }
    finished_ = true;
  }
  return std::optional<Page>();
}

bool HashProbeOperator::IsFinished() {
  return finished_ ||
         (no_more_input_ && !probe_page_.has_value() &&
          (!emit_unmatched_build_ || unmatched_emitted_));
}

}  // namespace presto
