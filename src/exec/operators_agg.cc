#include "exec/operators.h"

namespace presto {

HashAggregationOperator::HashAggregationOperator(
    std::unique_ptr<OperatorContext> ctx,
    std::shared_ptr<const AggregateNode> node)
    : Operator(std::move(ctx)),
      node_(std::move(node)),
      key_types_([this] {
        std::vector<TypeKind> types;
        for (size_t k = 0; k < node_->group_keys().size(); ++k) {
          types.push_back(node_->output().at(k).type);
        }
        return types;
      }()),
      groups_(key_types_) {
  for (const auto& call : node_->aggregates()) {
    accumulators_.push_back(CreateAccumulator(call.signature));
  }
  // Partial aggregations flush adaptively; size the flush threshold to the
  // worker pool so constrained clusters flush early.
  if (ctx_->runtime().query_memory != nullptr) {
    partial_flush_bytes_ = std::min<int64_t>(
        partial_flush_bytes_,
        ctx_->runtime().query_memory->config().per_worker_general / 8);
  }
  // Final/single aggregations are spillable (§IV-F2); partial aggregations
  // adaptively flush instead.
  if (node_->step() != AggregationStep::kPartial &&
      ctx_->runtime().worker_memory != nullptr &&
      ctx_->runtime().query_memory != nullptr &&
      ctx_->runtime().query_memory->config().enable_spill) {
    ctx_->runtime().worker_memory->RegisterRevocable(
        ctx_->runtime().query_memory, this);
    revocable_registered_ = true;
  }
}

HashAggregationOperator::~HashAggregationOperator() {
  if (revocable_registered_) {
    ctx_->runtime().worker_memory->UnregisterRevocable(this);
  }
}

Status HashAggregationOperator::AddInput(Page page) {
  PRESTO_RETURN_IF_ERROR(ctx_->CheckNotKilled());
  if (!error_.ok()) return error_;
  std::lock_guard<std::recursive_mutex> lock(revoke_mu_);
  ctx_->rows_in.fetch_add(page.num_rows());
  std::vector<BlockPtr> keys;
  keys.reserve(node_->group_keys().size());
  for (int k : node_->group_keys()) {
    keys.push_back(page.block(static_cast<size_t>(k)));
  }
  groups_.ComputeGroupIds(keys, page.num_rows(), &group_ids_);
  // Global aggregations route every row to group 0.
  if (node_->group_keys().empty()) {
    group_ids_.assign(static_cast<size_t>(page.num_rows()), 0);
  }
  int64_t num_groups =
      node_->group_keys().empty() ? 1 : groups_.size();
  for (size_t a = 0; a < accumulators_.size(); ++a) {
    accumulators_[a]->Resize(num_groups);
    const auto& call = node_->aggregates()[a];
    BlockPtr arg = call.arg_column >= 0
                       ? page.block(static_cast<size_t>(call.arg_column))
                       : nullptr;
    if (node_->step() == AggregationStep::kFinal) {
      PRESTO_RETURN_IF_ERROR(
          accumulators_[a]->Merge(group_ids_.data(), arg, page.num_rows()));
    } else {
      accumulators_[a]->Add(group_ids_.data(), arg, page.num_rows());
    }
  }
  // Memory accounting + adaptive partial flush.
  int64_t bytes = groups_.MemoryBytes();
  for (const auto& acc : accumulators_) bytes += acc->MemoryBytes();
  PRESTO_RETURN_IF_ERROR(ctx_->SetMemoryUsage(bytes));
  if (node_->step() == AggregationStep::kPartial &&
      bytes > partial_flush_bytes_) {
    flush_pending_ = BuildOutputPage(/*intermediate=*/true);
    groups_.Clear();
    for (size_t a = 0; a < accumulators_.size(); ++a) {
      accumulators_[a] = CreateAccumulator(node_->aggregates()[a].signature);
    }
    PRESTO_RETURN_IF_ERROR(ctx_->SetMemoryUsage(0));
  }
  return Status::OK();
}

Page HashAggregationOperator::BuildOutputPage(bool intermediate) {
  int64_t num_groups = node_->group_keys().empty()
                           ? std::max<int64_t>(groups_.size(), 1)
                           : groups_.size();
  std::vector<BlockPtr> blocks;
  if (!node_->group_keys().empty()) {
    blocks = groups_.BuildKeyBlocks(0, num_groups);
  }
  for (size_t a = 0; a < accumulators_.size(); ++a) {
    accumulators_[a]->Resize(num_groups);
    blocks.push_back(intermediate
                         ? accumulators_[a]->BuildIntermediate(num_groups)
                         : accumulators_[a]->BuildFinal(num_groups));
  }
  ctx_->rows_out.fetch_add(num_groups);
  return Page(std::move(blocks), num_groups);
}

int64_t HashAggregationOperator::Revoke() {
  std::unique_lock<std::recursive_mutex> lock(revoke_mu_, std::try_to_lock);
  if (!lock.owns_lock()) return 0;  // busy on another thread: skip
  if (finalized_ || groups_.size() == 0) return 0;
  if (node_->step() == AggregationStep::kPartial) return 0;
  // Spill current groups as an intermediate-format run.
  Page run = BuildOutputPage(/*intermediate=*/true);
  int64_t bytes = groups_.MemoryBytes();
  for (const auto& acc : accumulators_) bytes += acc->MemoryBytes();
  int64_t spilled_before = spiller_.spilled_bytes();
  int64_t serde_before = spiller_.serde_nanos();
  spiller_.SetTrace(ctx_->runtime().trace, ctx_->spec().worker_id + 1);
  auto r = spiller_.SpillRun({run});
  if (!r.ok()) {
    error_ = r.status();
    return 0;
  }
  ctx_->spilled_bytes.fetch_add(spiller_.spilled_bytes() - spilled_before);
  ctx_->serde_nanos.fetch_add(spiller_.serde_nanos() - serde_before);
  groups_.Clear();
  for (size_t a = 0; a < accumulators_.size(); ++a) {
    accumulators_[a] = CreateAccumulator(node_->aggregates()[a].signature);
  }
  (void)ctx_->SetMemoryUsage(0);
  return bytes;
}

Status HashAggregationOperator::MergeSpilledRuns() {
  // Re-absorb spilled runs by merging intermediate states. (Peak memory at
  // merge time is bounded by the number of distinct groups.)
  size_t num_keys = node_->group_keys().size();
  for (int run = 0; run < spiller_.num_runs(); ++run) {
    int64_t serde_before = spiller_.serde_nanos();
    PRESTO_ASSIGN_OR_RETURN(std::vector<Page> pages, spiller_.ReadRun(run));
    ctx_->serde_nanos.fetch_add(spiller_.serde_nanos() - serde_before);
    for (const Page& page : pages) {
      std::vector<BlockPtr> keys;
      for (size_t k = 0; k < num_keys; ++k) keys.push_back(page.block(k));
      groups_.ComputeGroupIds(keys, page.num_rows(), &group_ids_);
      if (num_keys == 0) {
        group_ids_.assign(static_cast<size_t>(page.num_rows()), 0);
      }
      int64_t num_groups = num_keys == 0 ? 1 : groups_.size();
      for (size_t a = 0; a < accumulators_.size(); ++a) {
        accumulators_[a]->Resize(num_groups);
        PRESTO_RETURN_IF_ERROR(accumulators_[a]->Merge(
            group_ids_.data(), page.block(num_keys + a), page.num_rows()));
      }
    }
  }
  return Status::OK();
}

void HashAggregationOperator::NoMoreInput() { Operator::NoMoreInput(); }

Result<std::optional<Page>> HashAggregationOperator::GetOutput() {
  PRESTO_RETURN_IF_ERROR(ctx_->CheckNotKilled());
  if (!error_.ok()) return error_;
  if (flush_pending_.has_value()) {
    Page out = std::move(*flush_pending_);
    flush_pending_.reset();
    return std::optional<Page>(std::move(out));
  }
  if (!no_more_input_ || output_done_) return std::optional<Page>();
  std::lock_guard<std::recursive_mutex> lock(revoke_mu_);
  finalized_ = true;
  if (spiller_.num_runs() > 0) {
    PRESTO_RETURN_IF_ERROR(MergeSpilledRuns());
  }
  output_done_ = true;
  // Grouped aggregation with zero input produces zero rows; global
  // aggregation produces exactly one default row.
  if (!node_->group_keys().empty() && groups_.size() == 0) {
    return std::optional<Page>();
  }
  return std::optional<Page>(
      BuildOutputPage(node_->step() == AggregationStep::kPartial));
}

bool HashAggregationOperator::IsFinished() {
  return output_done_ && !flush_pending_.has_value();
}

}  // namespace presto
