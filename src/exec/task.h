#ifndef PRESTOCPP_EXEC_TASK_H_
#define PRESTOCPP_EXEC_TASK_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "exec/driver.h"
#include "exec/exec_context.h"
#include "fragment/fragmenter.h"

namespace presto {

/// A single processing unit of a stage running on one worker (§IV-D): it
/// instantiates the fragment's operator tree as pipelines of drivers.
/// Pipelines split at hash-join build sides (Fig. 4), at UNION ALL inputs,
/// and — for intra-node parallelism (§IV-C4) — between parallelizable scan
/// sections and single-driver operators (final aggregation, sort, window),
/// joined by local in-memory shuffles.
class TaskExec {
 public:
  TaskExec(TaskSpec spec, TaskRuntime runtime, const PlanFragment* fragment);

  /// Builds pipelines and drivers. Must be called once before execution.
  Status Initialize();

  const TaskSpec& spec() const { return spec_; }
  TaskRuntime& runtime() { return runtime_; }
  /// Split queue for a TableScanNode of this fragment (by node id).
  SplitQueue* splits(int scan_node_id) {
    auto it = split_queues_.find(scan_node_id);
    return it == split_queues_.end() ? nullptr : &it->second;
  }
  std::map<int, SplitQueue>& split_queues() { return split_queues_; }
  std::atomic<int64_t>& cpu_nanos() { return cpu_nanos_; }

  std::vector<std::unique_ptr<Driver>>& drivers() { return drivers_; }

  bool AllDriversFinished() const;

  int num_pipelines() const { return num_pipelines_; }

  /// Snapshots the runtime stats of every operator, merged per pipeline
  /// across parallel driver instances. Safe while the task runs; after
  /// ReleaseDrivers it returns the cached final snapshot.
  TaskStats CollectStats() const;

  /// Destroys all drivers (and through their operator contexts releases
  /// every memory reservation, exchange-buffer reference, and spill file),
  /// caching a final stats snapshot first so EXPLAIN ANALYZE still works.
  /// Must only be called once no executor references the drivers — i.e.
  /// after the task's on_done callback fired. Idempotent.
  void ReleaseDrivers();

  /// Aborts this task alone: drivers observe the kill through
  /// OperatorContext::CheckNotKilled on their next quantum. Unlike
  /// QueryMemory::Kill this does not touch sibling tasks of the same query
  /// on this worker (needed when one task is superseded by a recovery
  /// re-creation, ISSUE 7).
  void Kill(const Status& reason) { kill_switch_.Kill(reason); }
  const TaskKillSwitch& kill_switch() const { return kill_switch_; }

 private:
  using OperatorFactory = std::function<std::unique_ptr<Operator>()>;

  struct PipelineBuild {
    std::vector<OperatorFactory> factories;
    bool parallel_safe = true;
    bool has_scan = false;
  };

  std::unique_ptr<OperatorContext> MakeContext(const std::string& label,
                                               int plan_node_id = -1);
  TaskStats CollectStatsLocked() const;
  Status BuildPipeline(const PlanNodePtr& node, PipelineBuild* current);
  void FinishPipeline(PipelineBuild build, bool is_root);

  TaskSpec spec_;
  TaskRuntime runtime_;
  TaskKillSwitch kill_switch_;
  const PlanFragment* fragment_;
  std::map<int, SplitQueue> split_queues_;
  std::atomic<int64_t> cpu_nanos_{0};
  std::vector<std::unique_ptr<Driver>> drivers_;
  /// Serializes CollectStats against ReleaseDrivers (a stats poll must not
  /// walk operators while they are being destroyed).
  mutable std::mutex stats_mu_;
  std::optional<TaskStats> final_stats_;
  int num_pipelines_ = 0;
};

}  // namespace presto

#endif  // PRESTOCPP_EXEC_TASK_H_
