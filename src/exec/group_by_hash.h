#ifndef PRESTOCPP_EXEC_GROUP_BY_HASH_H_
#define PRESTOCPP_EXEC_GROUP_BY_HASH_H_

#include <string>
#include <vector>

#include "types/type.h"
#include "vector/block.h"
#include "vector/decoded_block.h"

namespace presto {

/// Group-by hash table over serialized keys. Keys are normalized into a
/// flat byte arena (null tag + fixed-width value or length-prefixed bytes)
/// so one memcmp-based code path handles any combination of key types —
/// flat memory in the critical path per §V-A. Group ids are dense, in
/// insertion order, so accumulators can use plain arrays.
class GroupByHash {
 public:
  explicit GroupByHash(std::vector<TypeKind> key_types);

  /// Maps each row of `keys` to its group id, creating groups as needed.
  /// `keys` are the key columns (any encoding), all with `rows` rows.
  void ComputeGroupIds(const std::vector<BlockPtr>& keys, int64_t rows,
                       std::vector<int32_t>* group_ids);

  int64_t size() const { return static_cast<int64_t>(group_offsets_.size()); }

  /// Rebuilds the key columns for group ids [from, to).
  std::vector<BlockPtr> BuildKeyBlocks(int64_t from, int64_t to) const;

  int64_t MemoryBytes() const;

  /// Drops all groups (used by partial-aggregation flushes and spills).
  void Clear();

 private:
  int64_t Probe(uint64_t hash, const char* key, size_t len);
  void Rehash();

  std::vector<TypeKind> key_types_;
  // Arena of serialized keys; group i occupies
  // [group_offsets_[i], group_offsets_[i] + group_lengths_[i]).
  std::string arena_;
  std::vector<int64_t> group_offsets_;
  std::vector<int32_t> group_lengths_;
  std::vector<uint64_t> group_hashes_;
  // Open-addressing table of group ids (-1 empty).
  std::vector<int32_t> table_;
  int64_t mask_ = 0;
};

}  // namespace presto

#endif  // PRESTOCPP_EXEC_GROUP_BY_HASH_H_
