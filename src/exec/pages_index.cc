#include "exec/pages_index.h"

namespace presto {

void PagesIndex::Finish(bool extra_null_row) {
  if (finished_) return;
  columns_.clear();
  for (size_t c = 0; c < types_.size(); ++c) {
    BlockBuilder builder(types_[c]);
    for (const auto& page : pages_) {
      const auto& block = *page.block(c);
      for (int64_t r = 0; r < page.num_rows(); ++r) {
        builder.AppendFrom(block, r);
      }
    }
    if (extra_null_row) builder.AppendNull();
    columns_.push_back(builder.Build());
  }
  pages_.clear();
  finished_ = true;
}

}  // namespace presto
