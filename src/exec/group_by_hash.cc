#include "exec/group_by_hash.h"

#include <cstring>

#include "common/check.h"
#include "common/hash.h"
#include "vector/block_builder.h"

namespace presto {

namespace {

constexpr size_t kInitialBuckets = 1024;  // power of two

// Appends the serialized key for row `row` of the decoded key columns.
void SerializeKey(const std::vector<DecodedBlock>& keys,
                  const std::vector<TypeKind>& types, int64_t row,
                  std::string* out) {
  for (size_t k = 0; k < keys.size(); ++k) {
    if (keys[k].IsNull(row)) {
      out->push_back(1);
      continue;
    }
    out->push_back(0);
    switch (types[k]) {
      case TypeKind::kBoolean: {
        out->push_back(static_cast<char>(keys[k].ValueAt<uint8_t>(row)));
        break;
      }
      case TypeKind::kBigint:
      case TypeKind::kDate: {
        int64_t v = keys[k].ValueAt<int64_t>(row);
        out->append(reinterpret_cast<const char*>(&v), sizeof(v));
        break;
      }
      case TypeKind::kDouble: {
        double v = keys[k].ValueAt<double>(row);
        if (v == 0.0) v = 0.0;  // normalize -0.0
        out->append(reinterpret_cast<const char*>(&v), sizeof(v));
        break;
      }
      case TypeKind::kVarchar: {
        std::string_view s = keys[k].StringAt(row);
        auto len = static_cast<uint32_t>(s.size());
        out->append(reinterpret_cast<const char*>(&len), sizeof(len));
        out->append(s.data(), s.size());
        break;
      }
      default:
        PRESTO_UNREACHABLE();
    }
  }
}

}  // namespace

GroupByHash::GroupByHash(std::vector<TypeKind> key_types)
    : key_types_(std::move(key_types)),
      table_(kInitialBuckets, -1),
      mask_(kInitialBuckets - 1) {}

void GroupByHash::ComputeGroupIds(const std::vector<BlockPtr>& keys,
                                  int64_t rows,
                                  std::vector<int32_t>* group_ids) {
  PRESTO_DCHECK(keys.size() == key_types_.size());
  std::vector<DecodedBlock> decoded(keys.size());
  for (size_t k = 0; k < keys.size(); ++k) decoded[k].Decode(keys[k]);
  group_ids->resize(static_cast<size_t>(rows));
  std::string scratch;
  for (int64_t i = 0; i < rows; ++i) {
    scratch.clear();
    SerializeKey(decoded, key_types_, i, &scratch);
    uint64_t hash = HashBytes(scratch.data(), scratch.size());
    (*group_ids)[static_cast<size_t>(i)] = static_cast<int32_t>(
        Probe(hash, scratch.data(), scratch.size()));
  }
}

int64_t GroupByHash::Probe(uint64_t hash, const char* key, size_t len) {
  if (size() * 2 >= static_cast<int64_t>(table_.size())) Rehash();
  auto bucket = static_cast<size_t>(hash & static_cast<uint64_t>(mask_));
  for (;;) {
    int32_t group = table_[bucket];
    if (group < 0) {
      // New group.
      auto id = static_cast<int32_t>(group_offsets_.size());
      group_offsets_.push_back(static_cast<int64_t>(arena_.size()));
      group_lengths_.push_back(static_cast<int32_t>(len));
      group_hashes_.push_back(hash);
      arena_.append(key, len);
      table_[bucket] = id;
      return id;
    }
    if (group_hashes_[static_cast<size_t>(group)] == hash &&
        group_lengths_[static_cast<size_t>(group)] ==
            static_cast<int32_t>(len) &&
        std::memcmp(arena_.data() +
                        group_offsets_[static_cast<size_t>(group)],
                    key, len) == 0) {
      return group;
    }
    bucket = (bucket + 1) & static_cast<size_t>(mask_);
  }
}

void GroupByHash::Rehash() {
  size_t new_size = table_.size() * 2;
  table_.assign(new_size, -1);
  mask_ = static_cast<int64_t>(new_size) - 1;
  for (size_t g = 0; g < group_hashes_.size(); ++g) {
    auto bucket =
        static_cast<size_t>(group_hashes_[g] & static_cast<uint64_t>(mask_));
    while (table_[bucket] >= 0) {
      bucket = (bucket + 1) & static_cast<size_t>(mask_);
    }
    table_[bucket] = static_cast<int32_t>(g);
  }
}

std::vector<BlockPtr> GroupByHash::BuildKeyBlocks(int64_t from,
                                                  int64_t to) const {
  std::vector<BlockBuilder> builders;
  builders.reserve(key_types_.size());
  for (TypeKind t : key_types_) builders.emplace_back(t);
  for (int64_t g = from; g < to; ++g) {
    const char* p = arena_.data() + group_offsets_[static_cast<size_t>(g)];
    for (size_t k = 0; k < key_types_.size(); ++k) {
      char null_tag = *p++;
      if (null_tag) {
        builders[k].AppendNull();
        continue;
      }
      switch (key_types_[k]) {
        case TypeKind::kBoolean:
          builders[k].AppendBoolean(*p++ != 0);
          break;
        case TypeKind::kBigint:
        case TypeKind::kDate: {
          int64_t v;
          std::memcpy(&v, p, sizeof(v));
          p += sizeof(v);
          builders[k].AppendBigint(v);
          break;
        }
        case TypeKind::kDouble: {
          double v;
          std::memcpy(&v, p, sizeof(v));
          p += sizeof(v);
          builders[k].AppendDouble(v);
          break;
        }
        case TypeKind::kVarchar: {
          uint32_t len;
          std::memcpy(&len, p, sizeof(len));
          p += sizeof(len);
          builders[k].AppendString(std::string_view(p, len));
          p += len;
          break;
        }
        default:
          PRESTO_UNREACHABLE();
      }
    }
  }
  std::vector<BlockPtr> out;
  out.reserve(builders.size());
  for (auto& b : builders) out.push_back(b.Build());
  return out;
}

int64_t GroupByHash::MemoryBytes() const {
  return static_cast<int64_t>(arena_.size() +
                              group_offsets_.size() * sizeof(int64_t) +
                              group_lengths_.size() * sizeof(int32_t) +
                              group_hashes_.size() * sizeof(uint64_t) +
                              table_.size() * sizeof(int32_t));
}

void GroupByHash::Clear() {
  arena_.clear();
  group_offsets_.clear();
  group_lengths_.clear();
  group_hashes_.clear();
  table_.assign(kInitialBuckets, -1);
  mask_ = kInitialBuckets - 1;
}

}  // namespace presto
