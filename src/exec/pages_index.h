#ifndef PRESTOCPP_EXEC_PAGES_INDEX_H_
#define PRESTOCPP_EXEC_PAGES_INDEX_H_

#include <vector>

#include "plan/plan_node.h"
#include "vector/block_builder.h"
#include "vector/page.h"

namespace presto {

/// Accumulates pages and, on Finish(), concatenates them into one flat
/// block per column for random access by row number. Backs hash-join build
/// sides, sorting, and window evaluation.
class PagesIndex {
 public:
  explicit PagesIndex(std::vector<TypeKind> types)
      : types_(std::move(types)) {}

  void AddPage(const Page& page) {
    rows_ += page.num_rows();
    bytes_ += page.SizeInBytes();
    pages_.push_back(page);
  }

  int64_t num_rows() const { return rows_; }
  int64_t bytes() const { return bytes_; }
  const std::vector<TypeKind>& types() const { return types_; }
  const std::vector<Page>& pages() const { return pages_; }

  /// Concatenates into per-column blocks; `extra_null_row` appends one
  /// all-null row at index num_rows() (the outer-join null sentinel used by
  /// dictionary-encoded join output, §V-E).
  void Finish(bool extra_null_row);

  bool finished() const { return finished_; }
  const std::vector<BlockPtr>& columns() const { return columns_; }

  /// Three-way comparison of rows by sort keys (columns must be finished).
  int CompareRows(const std::vector<SortKey>& keys, int64_t a,
                  int64_t b) const {
    for (const auto& key : keys) {
      const auto& col = columns_[static_cast<size_t>(key.column)];
      int c = col->CompareAt(a, *col, b);
      if (c != 0) return key.ascending ? c : -c;
    }
    return 0;
  }

  /// Releases all state (spill).
  void Clear() {
    pages_.clear();
    columns_.clear();
    rows_ = 0;
    bytes_ = 0;
    finished_ = false;
  }

 private:
  std::vector<TypeKind> types_;
  std::vector<Page> pages_;
  std::vector<BlockPtr> columns_;
  int64_t rows_ = 0;
  int64_t bytes_ = 0;
  bool finished_ = false;
};

}  // namespace presto

#endif  // PRESTOCPP_EXEC_PAGES_INDEX_H_
