#ifndef PRESTOCPP_EXEC_DRIVER_H_
#define PRESTOCPP_EXEC_DRIVER_H_

#include <chrono>
#include <memory>
#include <vector>

#include "exec/operator.h"

namespace presto {

/// The Presto driver loop (§IV-E1): owns one instance of a pipeline's
/// operator chain and moves pages between every pair of operators that can
/// make progress. More flexible than the Volcano pull model: the driver can
/// be brought to a known state quickly (yield points between iterations)
/// which makes cooperative multitasking practical.
///
/// The driver is also the central stats instrumentation point: it times
/// every AddInput/GetOutput call, counts pages/bytes crossing each operator
/// boundary, and attributes off-thread blocked time to the operators that
/// reported IsBlocked() — so individual operators only count rows.
class Driver {
 public:
  explicit Driver(std::vector<std::unique_ptr<Operator>> operators)
      : operators_(std::move(operators)),
        no_more_signaled_(operators_.size(), false) {}

  enum class State {
    kYielded,   // quantum expired with progress still possible
    kBlocked,   // no operator can make progress right now
    kFinished,  // the sink finished
    kFailed,
  };

  /// Runs the loop until the deadline (steady-clock nanos budget), a block,
  /// or completion. CPU time consumed is added to *cpu_nanos.
  Result<State> Process(int64_t quantum_nanos, int64_t* cpu_nanos);

  Operator& sink() { return *operators_.back(); }
  const std::vector<std::unique_ptr<Operator>>& operators() const {
    return operators_;
  }

  /// Identifies this driver in the query trace (one trace "thread" per
  /// driver). `trace` may be null (tracing off).
  void SetTraceIdentity(TraceRecorder* trace, int pid, int64_t tid) {
    trace_ = trace;
    trace_pid_ = pid;
    trace_tid_ = tid;
  }
  TraceRecorder* trace() const { return trace_; }
  int trace_pid() const { return trace_pid_; }
  int64_t trace_tid() const { return trace_tid_; }

 private:
  // Charges the time since the last kBlocked return to the operators that
  // reported IsBlocked() then.
  void SettleBlockedTime();

  std::vector<std::unique_ptr<Operator>> operators_;
  std::vector<bool> no_more_signaled_;
  std::vector<size_t> blocked_ops_;
  std::chrono::steady_clock::time_point blocked_since_;
  bool blocked_recorded_ = false;
  int64_t blocked_since_trace_nanos_ = 0;
  TraceRecorder* trace_ = nullptr;
  int trace_pid_ = 0;
  int64_t trace_tid_ = 0;
};

}  // namespace presto

#endif  // PRESTOCPP_EXEC_DRIVER_H_
