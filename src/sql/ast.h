#ifndef PRESTOCPP_SQL_AST_H_
#define PRESTOCPP_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "types/value.h"

namespace presto::sql {

// ---------------------------------------------------------------------------
// Expression AST (untyped; produced by the parser, consumed by the analyzer).
// ---------------------------------------------------------------------------

struct AstExpr;
using AstExprPtr = std::shared_ptr<AstExpr>;

/// Kinds of parsed expressions. Binary/unary operators carry their operator
/// text in `op` ("+", "=", "and", ...).
enum class AstExprKind : uint8_t {
  kIdentifier,   // possibly qualified: parts = {"t", "x"} for t.x
  kLiteral,      // value
  kStar,         // * or t.* (only valid in select lists and COUNT(*))
  kBinaryOp,     // op, children[0..1]
  kUnaryOp,      // op ("-", "not"), children[0]
  kFunctionCall, // name, children = args, distinct flag, optional window
  kCase,         // children = [operand?] whens/thens..., else?; see flags
  kCast,         // children[0], cast_type
  kIn,           // children[0] IN (children[1..]); negated flag
  kBetween,      // children[0] BETWEEN children[1] AND children[2]; negated
  kIsNull,       // children[0] IS [NOT] NULL; negated flag
  kLike,         // children[0] LIKE children[1]; negated flag
};

/// Window specification attached to a function call: fn(...) OVER (...).
struct WindowSpec {
  std::vector<AstExprPtr> partition_by;
  std::vector<std::pair<AstExprPtr, bool>> order_by;  // (expr, ascending)
};

struct AstExpr {
  AstExprKind kind;
  // kIdentifier
  std::vector<std::string> parts;
  // kLiteral
  Value value;
  // kBinaryOp / kUnaryOp
  std::string op;
  // kFunctionCall
  std::string function_name;
  bool distinct = false;
  std::shared_ptr<WindowSpec> window;
  // kCase
  bool has_operand = false;  // simple CASE <operand> WHEN ...
  bool has_else = false;
  // kCast
  std::string cast_type;
  // kIn / kBetween / kIsNull / kLike
  bool negated = false;

  std::vector<AstExprPtr> children;

  /// Canonical text used for alias derivation and equality.
  std::string ToString() const;
};

/// Structural equality (used to match GROUP BY keys inside SELECT items).
bool AstExprEquals(const AstExpr& a, const AstExpr& b);

// ---------------------------------------------------------------------------
// Relations and statements.
// ---------------------------------------------------------------------------

struct SelectStmt;
using SelectStmtPtr = std::shared_ptr<SelectStmt>;

enum class JoinType : uint8_t { kInner, kLeft, kRight, kFull, kCross };

const char* JoinTypeToString(JoinType t);

struct TableRef;
using TableRefPtr = std::shared_ptr<TableRef>;

enum class TableRefKind : uint8_t { kNamed, kSubquery, kJoin };

struct TableRef {
  TableRefKind kind;
  // kNamed: catalog-qualified name parts ({"hive","orders"} or {"orders"}).
  std::vector<std::string> name_parts;
  // kSubquery
  SelectStmtPtr subquery;
  // Alias for kNamed/kSubquery ("" if none).
  std::string alias;
  // kJoin
  JoinType join_type = JoinType::kInner;
  TableRefPtr left;
  TableRefPtr right;
  AstExprPtr on_condition;                 // nullable (CROSS JOIN / USING)
  std::vector<std::string> using_columns;  // non-empty for USING(...)
};

/// One item in a SELECT list: expression with optional alias, or a
/// (possibly qualified) star.
struct SelectItem {
  AstExprPtr expr;  // null for star
  std::string alias;
  bool is_star = false;
  std::string star_qualifier;  // "t" for t.*
};

struct OrderByItem {
  AstExprPtr expr;
  bool ascending = true;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  TableRefPtr from;  // null => SELECT without FROM (single-row VALUES)
  AstExprPtr where;
  std::vector<AstExprPtr> group_by;
  AstExprPtr having;
  std::vector<OrderByItem> order_by;
  std::optional<int64_t> limit;
  // UNION ALL chain: when set, this statement is `this UNION ALL next`.
  SelectStmtPtr union_next;
};

/// Top-level statement kinds.
enum class StatementKind : uint8_t {
  kSelect,
  kCreateTableAs,
  kInsert,
  kExplain,
};

struct Statement {
  StatementKind kind;
  SelectStmtPtr select;                  // all kinds carry a query
  std::vector<std::string> target_name;  // CTAS / INSERT target
  bool explain = false;
  bool explain_analyze = false;  // EXPLAIN ANALYZE: execute, then annotate
  bool explain_verbose = false;  // ... VERBOSE: append the trace timeline
};
using StatementPtr = std::shared_ptr<Statement>;

}  // namespace presto::sql

#endif  // PRESTOCPP_SQL_AST_H_
