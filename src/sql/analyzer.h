#ifndef PRESTOCPP_SQL_ANALYZER_H_
#define PRESTOCPP_SQL_ANALYZER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "expr/expression.h"
#include "sql/ast.h"
#include "types/row_schema.h"

namespace presto::sql {

/// A column visible in a name-resolution scope: its relation qualifier
/// (table alias or table name; may be empty) plus name and type. The scope
/// position is the column's index in the relation's output page.
struct ScopeColumn {
  std::string qualifier;
  std::string name;
  TypeKind type;
};

/// A flat name-resolution scope over the output of a relation (or the
/// concatenation of join inputs). Presto's analyzer builds the same
/// structure when it "resolves functions and scopes" (§IV-B2).
class Scope {
 public:
  Scope() = default;

  void Add(std::string qualifier, std::string name, TypeKind type) {
    columns_.push_back({std::move(qualifier), std::move(name), type});
  }

  const std::vector<ScopeColumn>& columns() const { return columns_; }
  size_t size() const { return columns_.size(); }

  /// Resolves `parts` ("x" or "t"."x") to a column index. Errors on unknown
  /// or ambiguous references.
  Result<int> Resolve(const std::vector<std::string>& parts) const;

  /// All column indices whose qualifier matches (for t.* expansion); all
  /// columns when qualifier is empty.
  std::vector<int> ColumnsForQualifier(const std::string& qualifier) const;

 private:
  std::vector<ScopeColumn> columns_;
};

/// True for names resolved as aggregate functions (count/sum/avg/...).
bool IsAggregateFunctionName(const std::string& name);

/// True for names only valid with an OVER clause (row_number, rank).
bool IsWindowOnlyFunctionName(const std::string& name);

/// True if the expression contains an aggregate function call outside any
/// OVER clause.
bool ContainsAggregate(const AstExpr& expr);

/// True if the expression contains any call with an OVER clause.
bool ContainsWindowCall(const AstExpr& expr);

/// Collects pointers to all aggregate calls (no OVER) in the tree,
/// outside-in, deduplicated by structural equality.
void CollectAggregates(const AstExpr& expr,
                       std::vector<const AstExpr*>* aggregates);

/// Collects pointers to all window calls (with OVER) in the tree.
void CollectWindowCalls(const AstExpr& expr,
                        std::vector<const AstExpr*>* calls);

/// Binds untyped AST expressions to typed engine expressions against a
/// scope. Rejects aggregates and window calls — the planner replaces those
/// with synthetic columns before binding.
class ExprBinder {
 public:
  explicit ExprBinder(const Scope* scope) : scope_(scope) {}

  Result<ExprPtr> Bind(const AstExpr& ast) const;

  /// Coerces `expr` to `target` inserting a CAST when allowed; errors when
  /// no implicit coercion exists.
  static Result<ExprPtr> Coerce(ExprPtr expr, TypeKind target);

  /// Binds a call to a registry scalar function by name with already-bound
  /// arguments, inserting argument casts.
  static Result<ExprPtr> BindScalarCall(const std::string& name,
                                        std::vector<ExprPtr> args);

 private:
  const Scope* scope_;
};

}  // namespace presto::sql

#endif  // PRESTOCPP_SQL_ANALYZER_H_
