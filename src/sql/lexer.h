#ifndef PRESTOCPP_SQL_LEXER_H_
#define PRESTOCPP_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace presto::sql {

enum class TokenKind : uint8_t {
  kIdentifier,  // foo, "Quoted"
  kKeyword,     // select, from, ... (lowercased in text)
  kInteger,     // 123
  kDouble,      // 1.5, .5, 1e3
  kString,      // 'abc' (text holds unescaped contents)
  kOperator,    // + - * / % = <> != < <= > >= ( ) , . ;
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;  // keywords lowercased; identifiers case-folded unless quoted
  size_t position;   // byte offset in the input (for error messages)
};

/// Tokenizes a SQL string. Keywords are recognized case-insensitively and
/// emitted lowercase; unquoted identifiers are lowercased (ANSI folding to
/// our canonical case); "quoted" identifiers preserve case. Comments
/// (-- to end of line) are skipped.
Result<std::vector<Token>> Tokenize(const std::string& input);

/// True if `word` (lowercase) is a reserved keyword.
bool IsKeyword(const std::string& word);

}  // namespace presto::sql

#endif  // PRESTOCPP_SQL_LEXER_H_
