#include "sql/ast.h"

#include "common/check.h"
#include "common/string_utils.h"

namespace presto::sql {

const char* JoinTypeToString(JoinType t) {
  switch (t) {
    case JoinType::kInner:
      return "INNER";
    case JoinType::kLeft:
      return "LEFT";
    case JoinType::kRight:
      return "RIGHT";
    case JoinType::kFull:
      return "FULL";
    case JoinType::kCross:
      return "CROSS";
  }
  return "?";
}

std::string AstExpr::ToString() const {
  switch (kind) {
    case AstExprKind::kIdentifier:
      return Join(parts, ".");
    case AstExprKind::kLiteral:
      return value.ToString();
    case AstExprKind::kStar:
      return "*";
    case AstExprKind::kBinaryOp:
      return "(" + children[0]->ToString() + " " + op + " " +
             children[1]->ToString() + ")";
    case AstExprKind::kUnaryOp:
      return "(" + op + " " + children[0]->ToString() + ")";
    case AstExprKind::kFunctionCall: {
      std::string out = function_name + "(";
      if (distinct) out += "DISTINCT ";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      out += ")";
      if (window != nullptr) out += " OVER (...)";
      return out;
    }
    case AstExprKind::kCase:
      return "CASE...END";
    case AstExprKind::kCast:
      return "CAST(" + children[0]->ToString() + " AS " + cast_type + ")";
    case AstExprKind::kIn: {
      std::string out = children[0]->ToString();
      out += negated ? " NOT IN (" : " IN (";
      for (size_t i = 1; i < children.size(); ++i) {
        if (i > 1) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case AstExprKind::kBetween:
      return children[0]->ToString() + (negated ? " NOT BETWEEN " : " BETWEEN ") +
             children[1]->ToString() + " AND " + children[2]->ToString();
    case AstExprKind::kIsNull:
      return children[0]->ToString() + (negated ? " IS NOT NULL" : " IS NULL");
    case AstExprKind::kLike:
      return children[0]->ToString() + (negated ? " NOT LIKE " : " LIKE ") +
             children[1]->ToString();
  }
  return "?";
}

bool AstExprEquals(const AstExpr& a, const AstExpr& b) {
  if (a.kind != b.kind || a.children.size() != b.children.size()) {
    return false;
  }
  switch (a.kind) {
    case AstExprKind::kIdentifier:
      // Compare by last part too (t.x vs x may refer to the same column, but
      // we require exact syntactic match for GROUP BY correlation; the
      // analyzer additionally matches by resolved column).
      if (a.parts != b.parts) return false;
      break;
    case AstExprKind::kLiteral:
      if (!(a.value == b.value)) return false;
      break;
    case AstExprKind::kBinaryOp:
    case AstExprKind::kUnaryOp:
      if (a.op != b.op) return false;
      break;
    case AstExprKind::kFunctionCall:
      if (a.function_name != b.function_name || a.distinct != b.distinct ||
          (a.window == nullptr) != (b.window == nullptr)) {
        return false;
      }
      break;
    case AstExprKind::kCast:
      if (a.cast_type != b.cast_type) return false;
      break;
    case AstExprKind::kCase:
      if (a.has_operand != b.has_operand || a.has_else != b.has_else) {
        return false;
      }
      break;
    case AstExprKind::kIn:
    case AstExprKind::kBetween:
    case AstExprKind::kIsNull:
    case AstExprKind::kLike:
      if (a.negated != b.negated) return false;
      break;
    case AstExprKind::kStar:
      break;
  }
  for (size_t i = 0; i < a.children.size(); ++i) {
    if (!AstExprEquals(*a.children[i], *b.children[i])) return false;
  }
  return true;
}

}  // namespace presto::sql
