#include "sql/analyzer.h"

#include <unordered_set>

#include "common/string_utils.h"
#include "expr/function_registry.h"

namespace presto::sql {

Result<int> Scope::Resolve(const std::vector<std::string>& parts) const {
  std::string qualifier;
  std::string name;
  if (parts.size() == 1) {
    name = parts[0];
  } else if (parts.size() == 2) {
    qualifier = parts[0];
    name = parts[1];
  } else {
    return Status::InvalidArgument("too many qualifiers in column reference " +
                                   Join(parts, "."));
  }
  int found = -1;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const auto& col = columns_[i];
    if (col.name != name) continue;
    if (!qualifier.empty() && col.qualifier != qualifier) continue;
    if (found >= 0) {
      return Status::InvalidArgument("ambiguous column reference: " +
                                     Join(parts, "."));
    }
    found = static_cast<int>(i);
  }
  if (found < 0) {
    return Status::InvalidArgument("column not found: " + Join(parts, "."));
  }
  return found;
}

std::vector<int> Scope::ColumnsForQualifier(
    const std::string& qualifier) const {
  std::vector<int> out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (qualifier.empty() || columns_[i].qualifier == qualifier) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

bool IsAggregateFunctionName(const std::string& name) {
  static const auto* kNames = new std::unordered_set<std::string>{
      "count", "sum",     "avg",      "min",      "max",
      "approx_distinct", "stddev", "stddev_samp", "variance", "var_samp"};
  return kNames->count(ToLowerAscii(name)) > 0;
}

bool IsWindowOnlyFunctionName(const std::string& name) {
  static const auto* kNames =
      new std::unordered_set<std::string>{"row_number", "rank", "dense_rank"};
  return kNames->count(ToLowerAscii(name)) > 0;
}

bool ContainsAggregate(const AstExpr& expr) {
  if (expr.kind == AstExprKind::kFunctionCall && expr.window == nullptr &&
      IsAggregateFunctionName(expr.function_name)) {
    return true;
  }
  for (const auto& c : expr.children) {
    if (ContainsAggregate(*c)) return true;
  }
  return false;
}

bool ContainsWindowCall(const AstExpr& expr) {
  if (expr.kind == AstExprKind::kFunctionCall && expr.window != nullptr) {
    return true;
  }
  for (const auto& c : expr.children) {
    if (ContainsWindowCall(*c)) return true;
  }
  return false;
}

void CollectAggregates(const AstExpr& expr,
                       std::vector<const AstExpr*>* aggregates) {
  if (expr.kind == AstExprKind::kFunctionCall && expr.window == nullptr &&
      IsAggregateFunctionName(expr.function_name)) {
    for (const auto* existing : *aggregates) {
      if (AstExprEquals(*existing, expr)) return;
    }
    aggregates->push_back(&expr);
    return;  // no nested aggregates
  }
  for (const auto& c : expr.children) CollectAggregates(*c, aggregates);
}

void CollectWindowCalls(const AstExpr& expr,
                        std::vector<const AstExpr*>* calls) {
  if (expr.kind == AstExprKind::kFunctionCall && expr.window != nullptr) {
    for (const auto* existing : *calls) {
      if (AstExprEquals(*existing, expr)) return;
    }
    calls->push_back(&expr);
    return;
  }
  for (const auto& c : expr.children) CollectWindowCalls(*c, calls);
}

Result<ExprPtr> ExprBinder::Coerce(ExprPtr expr, TypeKind target) {
  if (expr->type() == target) return expr;
  if (!IsImplicitlyCoercible(expr->type(), target)) {
    return Status::InvalidArgument(
        std::string("cannot coerce ") + TypeToString(expr->type()) + " to " +
        TypeToString(target));
  }
  return Expr::MakeCast(target, std::move(expr));
}

Result<ExprPtr> ExprBinder::BindScalarCall(const std::string& name,
                                           std::vector<ExprPtr> args) {
  std::vector<TypeKind> types;
  types.reserve(args.size());
  for (const auto& a : args) types.push_back(a->type());
  PRESTO_ASSIGN_OR_RETURN(const ScalarFunction* fn,
                          FunctionRegistry::Instance().Resolve(name, types));
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i]->type() != fn->arg_types[i]) {
      PRESTO_ASSIGN_OR_RETURN(args[i],
                              Coerce(std::move(args[i]), fn->arg_types[i]));
    }
  }
  return Expr::MakeCall(fn, std::move(args));
}

namespace {

// Maps a parser operator to a registry function name.
const char* BinaryOpFunction(const std::string& op) {
  if (op == "+") return "plus";
  if (op == "-") return "minus";
  if (op == "*") return "multiply";
  if (op == "/") return "divide";
  if (op == "%") return "modulus";
  if (op == "=") return "eq";
  if (op == "<>") return "neq";
  if (op == "<") return "lt";
  if (op == "<=") return "lte";
  if (op == ">") return "gt";
  if (op == ">=") return "gte";
  return nullptr;
}

}  // namespace

Result<ExprPtr> ExprBinder::Bind(const AstExpr& ast) const {
  switch (ast.kind) {
    case AstExprKind::kIdentifier: {
      PRESTO_ASSIGN_OR_RETURN(int index, scope_->Resolve(ast.parts));
      return Expr::MakeColumn(index,
                              scope_->columns()[static_cast<size_t>(index)]
                                  .type);
    }
    case AstExprKind::kLiteral:
      return Expr::MakeLiteral(ast.value);
    case AstExprKind::kStar:
      return Status::InvalidArgument("'*' is only valid in SELECT lists");
    case AstExprKind::kBinaryOp: {
      if (ast.op == "and" || ast.op == "or") {
        std::vector<ExprPtr> children;
        for (const auto& c : ast.children) {
          PRESTO_ASSIGN_OR_RETURN(ExprPtr bound, Bind(*c));
          PRESTO_ASSIGN_OR_RETURN(bound,
                                  Coerce(std::move(bound), TypeKind::kBoolean));
          children.push_back(std::move(bound));
        }
        return ast.op == "and" ? Expr::MakeAnd(std::move(children))
                               : Expr::MakeOr(std::move(children));
      }
      const char* fn = BinaryOpFunction(ast.op);
      if (fn == nullptr) {
        return Status::InvalidArgument("unknown operator: " + ast.op);
      }
      PRESTO_ASSIGN_OR_RETURN(ExprPtr left, Bind(*ast.children[0]));
      PRESTO_ASSIGN_OR_RETURN(ExprPtr right, Bind(*ast.children[1]));
      // UNKNOWN literals (bare NULL) adopt the sibling's type.
      if (left->type() == TypeKind::kUnknown &&
          right->type() != TypeKind::kUnknown) {
        left = Expr::MakeLiteral(Value::Null(right->type()));
      } else if (right->type() == TypeKind::kUnknown &&
                 left->type() != TypeKind::kUnknown) {
        right = Expr::MakeLiteral(Value::Null(left->type()));
      }
      std::vector<ExprPtr> args;
      args.push_back(std::move(left));
      args.push_back(std::move(right));
      return BindScalarCall(fn, std::move(args));
    }
    case AstExprKind::kUnaryOp: {
      PRESTO_ASSIGN_OR_RETURN(ExprPtr inner, Bind(*ast.children[0]));
      if (ast.op == "-") {
        std::vector<ExprPtr> args;
        args.push_back(std::move(inner));
        return BindScalarCall("negate", std::move(args));
      }
      if (ast.op == "not") {
        PRESTO_ASSIGN_OR_RETURN(inner,
                                Coerce(std::move(inner), TypeKind::kBoolean));
        std::vector<ExprPtr> args;
        args.push_back(std::move(inner));
        return BindScalarCall("not", std::move(args));
      }
      return Status::InvalidArgument("unknown unary operator: " + ast.op);
    }
    case AstExprKind::kFunctionCall: {
      std::string name = ToLowerAscii(ast.function_name);
      if (ast.window != nullptr) {
        return Status::InvalidArgument(
            "window function not allowed in this context: " + name);
      }
      if (IsAggregateFunctionName(name)) {
        return Status::InvalidArgument(
            "aggregate function not allowed in this context: " + name);
      }
      if (IsWindowOnlyFunctionName(name)) {
        return Status::InvalidArgument(name + " requires an OVER clause");
      }
      std::vector<ExprPtr> args;
      for (const auto& c : ast.children) {
        PRESTO_ASSIGN_OR_RETURN(ExprPtr bound, Bind(*c));
        args.push_back(std::move(bound));
      }
      // Special variadic / conditional forms.
      if (name == "coalesce") {
        if (args.empty()) {
          return Status::InvalidArgument("coalesce requires arguments");
        }
        TypeKind t = args[0]->type();
        for (const auto& a : args) {
          auto super = CommonSuperType(t, a->type());
          if (!super.has_value()) {
            return Status::InvalidArgument("coalesce argument type mismatch");
          }
          t = *super;
        }
        return Expr::MakeCoalesce(std::move(args), t);
      }
      if (name == "if") {
        if (args.size() != 3) {
          return Status::InvalidArgument("if(cond, a, b) requires 3 args");
        }
        PRESTO_ASSIGN_OR_RETURN(args[0], Coerce(std::move(args[0]),
                                                TypeKind::kBoolean));
        auto t = CommonSuperType(args[1]->type(), args[2]->type());
        if (!t.has_value()) {
          return Status::InvalidArgument("if branch type mismatch");
        }
        std::vector<ExprPtr> children = {args[0], args[1], args[2]};
        return Expr::MakeCase(std::move(children), /*has_else=*/true, *t);
      }
      if (name == "nullif") {
        if (args.size() != 2) {
          return Status::InvalidArgument("nullif(a, b) requires 2 args");
        }
        // CASE WHEN a = b THEN NULL ELSE a END
        TypeKind t = args[0]->type();
        std::vector<ExprPtr> eq_args = {args[0], args[1]};
        PRESTO_ASSIGN_OR_RETURN(ExprPtr eq,
                                BindScalarCall("eq", std::move(eq_args)));
        std::vector<ExprPtr> children = {eq,
                                         Expr::MakeLiteral(Value::Null(t)),
                                         args[0]};
        return Expr::MakeCase(std::move(children), /*has_else=*/true, t);
      }
      return BindScalarCall(name, std::move(args));
    }
    case AstExprKind::kCase: {
      size_t idx = 0;
      ExprPtr operand;
      if (ast.has_operand) {
        PRESTO_ASSIGN_OR_RETURN(operand, Bind(*ast.children[idx++]));
      }
      size_t rest = ast.children.size() - idx - (ast.has_else ? 1 : 0);
      size_t pair_count = rest / 2;
      std::vector<ExprPtr> children;
      TypeKind result_type = TypeKind::kUnknown;
      for (size_t p = 0; p < pair_count; ++p) {
        PRESTO_ASSIGN_OR_RETURN(ExprPtr cond, Bind(*ast.children[idx++]));
        if (ast.has_operand) {
          // Simple CASE: operand = when-value
          std::vector<ExprPtr> eq_args = {operand, cond};
          PRESTO_ASSIGN_OR_RETURN(cond,
                                  BindScalarCall("eq", std::move(eq_args)));
        } else {
          PRESTO_ASSIGN_OR_RETURN(cond,
                                  Coerce(std::move(cond), TypeKind::kBoolean));
        }
        PRESTO_ASSIGN_OR_RETURN(ExprPtr val, Bind(*ast.children[idx++]));
        auto super = CommonSuperType(result_type, val->type());
        if (!super.has_value()) {
          return Status::InvalidArgument("CASE branch type mismatch");
        }
        result_type = *super;
        children.push_back(std::move(cond));
        children.push_back(std::move(val));
      }
      if (ast.has_else) {
        PRESTO_ASSIGN_OR_RETURN(ExprPtr val, Bind(*ast.children[idx++]));
        auto super = CommonSuperType(result_type, val->type());
        if (!super.has_value()) {
          return Status::InvalidArgument("CASE branch type mismatch");
        }
        result_type = *super;
        children.push_back(std::move(val));
      }
      if (result_type == TypeKind::kUnknown) result_type = TypeKind::kBigint;
      return Expr::MakeCase(std::move(children), ast.has_else, result_type);
    }
    case AstExprKind::kCast: {
      auto type = TypeFromString(ast.cast_type);
      if (!type.has_value()) {
        return Status::InvalidArgument("unknown type in CAST: " +
                                       ast.cast_type);
      }
      PRESTO_ASSIGN_OR_RETURN(ExprPtr inner, Bind(*ast.children[0]));
      return Expr::MakeCast(*type, std::move(inner));
    }
    case AstExprKind::kIn: {
      std::vector<ExprPtr> children;
      TypeKind t = TypeKind::kUnknown;
      for (const auto& c : ast.children) {
        PRESTO_ASSIGN_OR_RETURN(ExprPtr bound, Bind(*c));
        auto super = CommonSuperType(t, bound->type());
        if (!super.has_value()) {
          return Status::InvalidArgument("IN list type mismatch");
        }
        t = *super;
        children.push_back(std::move(bound));
      }
      for (auto& c : children) {
        if (c->type() != t && c->type() != TypeKind::kUnknown) {
          PRESTO_ASSIGN_OR_RETURN(c, Coerce(std::move(c), t));
        }
      }
      ExprPtr in = Expr::MakeIn(std::move(children));
      if (!ast.negated) return in;
      std::vector<ExprPtr> args;
      args.push_back(std::move(in));
      return BindScalarCall("not", std::move(args));
    }
    case AstExprKind::kBetween: {
      PRESTO_ASSIGN_OR_RETURN(ExprPtr x, Bind(*ast.children[0]));
      PRESTO_ASSIGN_OR_RETURN(ExprPtr lo, Bind(*ast.children[1]));
      PRESTO_ASSIGN_OR_RETURN(ExprPtr hi, Bind(*ast.children[2]));
      std::vector<ExprPtr> ge_args = {x, std::move(lo)};
      std::vector<ExprPtr> le_args = {x, std::move(hi)};
      PRESTO_ASSIGN_OR_RETURN(ExprPtr ge,
                              BindScalarCall("gte", std::move(ge_args)));
      PRESTO_ASSIGN_OR_RETURN(ExprPtr le,
                              BindScalarCall("lte", std::move(le_args)));
      ExprPtr both = Expr::MakeAnd({std::move(ge), std::move(le)});
      if (!ast.negated) return both;
      std::vector<ExprPtr> args;
      args.push_back(std::move(both));
      return BindScalarCall("not", std::move(args));
    }
    case AstExprKind::kIsNull: {
      PRESTO_ASSIGN_OR_RETURN(ExprPtr inner, Bind(*ast.children[0]));
      ExprPtr is_null = Expr::MakeIsNull(std::move(inner));
      if (!ast.negated) return is_null;
      std::vector<ExprPtr> args;
      args.push_back(std::move(is_null));
      return BindScalarCall("not", std::move(args));
    }
    case AstExprKind::kLike: {
      PRESTO_ASSIGN_OR_RETURN(ExprPtr value, Bind(*ast.children[0]));
      PRESTO_ASSIGN_OR_RETURN(ExprPtr pattern, Bind(*ast.children[1]));
      std::vector<ExprPtr> args = {std::move(value), std::move(pattern)};
      PRESTO_ASSIGN_OR_RETURN(ExprPtr like,
                              BindScalarCall("like", std::move(args)));
      if (!ast.negated) return like;
      std::vector<ExprPtr> not_args;
      not_args.push_back(std::move(like));
      return BindScalarCall("not", std::move(not_args));
    }
  }
  return Status::Internal("unhandled AST expression kind");
}

}  // namespace presto::sql
