#ifndef PRESTOCPP_SQL_PARSER_H_
#define PRESTOCPP_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace presto::sql {

/// Parses one SQL statement (SELECT / CREATE TABLE AS / INSERT INTO /
/// EXPLAIN) into an AST. Recursive-descent with Pratt-style operator
/// precedence; stands in for the ANTLR-generated parser described in
/// §IV-B2 of the paper.
Result<StatementPtr> ParseStatement(const std::string& sql);

/// Convenience wrapper: parses and requires a query statement.
Result<SelectStmtPtr> ParseSelect(const std::string& sql);

}  // namespace presto::sql

#endif  // PRESTOCPP_SQL_PARSER_H_
