#include "sql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "common/string_utils.h"

namespace presto::sql {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "select", "from",     "where",  "group",    "by",      "having",
      "order",  "limit",    "as",     "and",      "or",      "not",
      "in",     "between",  "like",   "is",       "null",    "true",
      "false",  "case",     "when",   "then",     "else",    "end",
      "cast",   "join",     "inner",  "left",     "right",   "full",
      "outer",  "cross",    "on",     "using",    "distinct", "union",
      "all",    "create",   "table",  "insert",   "into",    "values",
      "explain", "asc",     "desc",   "date",     "over",    "partition",
      "rows",   "with",     "exists", "interval", "analyze", "verbose",
  };
  return *kKeywords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

bool IsKeyword(const std::string& word) {
  return Keywords().count(word) > 0;
}

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    // String literal.
    if (c == '\'') {
      std::string text;
      ++i;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // escaped quote
            text += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text += input[i++];
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal at offset " +
                                       std::to_string(start));
      }
      tokens.push_back({TokenKind::kString, std::move(text), start});
      continue;
    }
    // Quoted identifier.
    if (c == '"') {
      std::string text;
      ++i;
      bool closed = false;
      while (i < n) {
        if (input[i] == '"') {
          closed = true;
          ++i;
          break;
        }
        text += input[i++];
      }
      if (!closed) {
        return Status::InvalidArgument(
            "unterminated quoted identifier at offset " +
            std::to_string(start));
      }
      tokens.push_back({TokenKind::kIdentifier, std::move(text), start});
      continue;
    }
    // Number.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      bool is_double = false;
      std::string text;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
        text += input[i++];
      }
      if (i < n && input[i] == '.') {
        is_double = true;
        text += input[i++];
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          text += input[i++];
        }
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        is_double = true;
        text += input[i++];
        if (i < n && (input[i] == '+' || input[i] == '-')) text += input[i++];
        if (i >= n || !std::isdigit(static_cast<unsigned char>(input[i]))) {
          return Status::InvalidArgument("malformed number at offset " +
                                         std::to_string(start));
        }
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          text += input[i++];
        }
      }
      tokens.push_back({is_double ? TokenKind::kDouble : TokenKind::kInteger,
                        std::move(text), start});
      continue;
    }
    // Identifier or keyword.
    if (IsIdentStart(c)) {
      std::string text;
      while (i < n && IsIdentChar(input[i])) text += input[i++];
      std::string lower = ToLowerAscii(text);
      if (IsKeyword(lower)) {
        tokens.push_back({TokenKind::kKeyword, std::move(lower), start});
      } else {
        tokens.push_back({TokenKind::kIdentifier, std::move(lower), start});
      }
      continue;
    }
    // Multi-char operators.
    auto two = input.substr(i, 2);
    if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
      tokens.push_back({TokenKind::kOperator, two == "!=" ? "<>" : two, start});
      i += 2;
      continue;
    }
    // Single-char operators.
    static const std::string kSingle = "+-*/%=<>(),.;";
    if (kSingle.find(c) != std::string::npos) {
      tokens.push_back({TokenKind::kOperator, std::string(1, c), start});
      ++i;
      continue;
    }
    return Status::InvalidArgument("unexpected character '" +
                                   std::string(1, c) + "' at offset " +
                                   std::to_string(i));
  }
  tokens.push_back({TokenKind::kEnd, "", n});
  return tokens;
}

}  // namespace presto::sql
