#include "sql/parser.h"

#include <cstdlib>

#include "sql/lexer.h"

namespace presto::sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<StatementPtr> ParseStatementTop() {
    PRESTO_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatementInner());
    // Optional trailing semicolon.
    AcceptOperator(";");
    if (Peek().kind != TokenKind::kEnd) {
      return Err("unexpected trailing input");
    }
    return stmt;
  }

 private:
  // ---- Token helpers ----
  const Token& Peek(size_t ahead = 0) const {
    size_t idx = pos_ + ahead;
    return idx < tokens_.size() ? tokens_[idx] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AcceptKeyword(const std::string& kw) {
    if (Peek().kind == TokenKind::kKeyword && Peek().text == kw) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool PeekKeyword(const std::string& kw, size_t ahead = 0) const {
    return Peek(ahead).kind == TokenKind::kKeyword && Peek(ahead).text == kw;
  }
  bool AcceptOperator(const std::string& op) {
    if (Peek().kind == TokenKind::kOperator && Peek().text == op) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool PeekOperator(const std::string& op, size_t ahead = 0) const {
    return Peek(ahead).kind == TokenKind::kOperator && Peek(ahead).text == op;
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) {
      return Status::InvalidArgument("expected " + kw + " near offset " +
                                     std::to_string(Peek().position));
    }
    return Status::OK();
  }
  Status ExpectOperator(const std::string& op) {
    if (!AcceptOperator(op)) {
      return Status::InvalidArgument("expected '" + op + "' near offset " +
                                     std::to_string(Peek().position));
    }
    return Status::OK();
  }
  Status Err(const std::string& msg) const {
    return Status::InvalidArgument(msg + " near offset " +
                                   std::to_string(Peek().position));
  }

  // ---- Statements ----
  Result<StatementPtr> ParseStatementInner() {
    auto stmt = std::make_shared<Statement>();
    if (AcceptKeyword("explain")) {
      bool analyze = AcceptKeyword("analyze");
      bool verbose = analyze && AcceptKeyword("verbose");
      PRESTO_ASSIGN_OR_RETURN(StatementPtr inner, ParseStatementInner());
      inner->explain = true;
      inner->explain_analyze = analyze;
      inner->explain_verbose = verbose;
      return inner;
    }
    if (AcceptKeyword("create")) {
      PRESTO_RETURN_IF_ERROR(ExpectKeyword("table"));
      PRESTO_ASSIGN_OR_RETURN(auto name, ParseQualifiedName());
      PRESTO_RETURN_IF_ERROR(ExpectKeyword("as"));
      PRESTO_ASSIGN_OR_RETURN(SelectStmtPtr select, ParseSelectStmt());
      stmt->kind = StatementKind::kCreateTableAs;
      stmt->target_name = std::move(name);
      stmt->select = std::move(select);
      return stmt;
    }
    if (AcceptKeyword("insert")) {
      PRESTO_RETURN_IF_ERROR(ExpectKeyword("into"));
      PRESTO_ASSIGN_OR_RETURN(auto name, ParseQualifiedName());
      PRESTO_ASSIGN_OR_RETURN(SelectStmtPtr select, ParseSelectStmt());
      stmt->kind = StatementKind::kInsert;
      stmt->target_name = std::move(name);
      stmt->select = std::move(select);
      return stmt;
    }
    PRESTO_ASSIGN_OR_RETURN(SelectStmtPtr select, ParseSelectStmt());
    stmt->kind = StatementKind::kSelect;
    stmt->select = std::move(select);
    return stmt;
  }

  Result<std::vector<std::string>> ParseQualifiedName() {
    if (Peek().kind != TokenKind::kIdentifier) return Err("expected name");
    std::vector<std::string> parts;
    parts.push_back(Advance().text);
    while (PeekOperator(".")) {
      ++pos_;
      if (Peek().kind != TokenKind::kIdentifier) {
        return Err("expected identifier after '.'");
      }
      parts.push_back(Advance().text);
    }
    return parts;
  }

  // select := query (UNION ALL query)* [ORDER BY items] [LIMIT n]
  Result<SelectStmtPtr> ParseSelectStmt() {
    PRESTO_ASSIGN_OR_RETURN(SelectStmtPtr head, ParseQuerySpec());
    SelectStmt* tail = head.get();
    while (AcceptKeyword("union")) {
      PRESTO_RETURN_IF_ERROR(ExpectKeyword("all"));
      PRESTO_ASSIGN_OR_RETURN(SelectStmtPtr next, ParseQuerySpec());
      tail->union_next = next;
      tail = next.get();
    }
    // ORDER BY / LIMIT attach to the whole (possibly union) query, stored on
    // the head statement.
    if (AcceptKeyword("order")) {
      PRESTO_RETURN_IF_ERROR(ExpectKeyword("by"));
      PRESTO_ASSIGN_OR_RETURN(head->order_by, ParseOrderByItems());
    }
    if (AcceptKeyword("limit")) {
      if (Peek().kind != TokenKind::kInteger) {
        return Err("expected integer after LIMIT");
      }
      head->limit = std::atoll(Advance().text.c_str());
    }
    return head;
  }

  Result<std::vector<OrderByItem>> ParseOrderByItems() {
    std::vector<OrderByItem> items;
    do {
      OrderByItem item;
      PRESTO_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (AcceptKeyword("desc")) {
        item.ascending = false;
      } else {
        AcceptKeyword("asc");
      }
      items.push_back(std::move(item));
    } while (AcceptOperator(","));
    return items;
  }

  Result<SelectStmtPtr> ParseQuerySpec() {
    // Parenthesized query: ( select ... )
    if (PeekOperator("(") && PeekKeyword("select", 1)) {
      ++pos_;
      PRESTO_ASSIGN_OR_RETURN(SelectStmtPtr inner, ParseSelectStmt());
      PRESTO_RETURN_IF_ERROR(ExpectOperator(")"));
      return inner;
    }
    PRESTO_RETURN_IF_ERROR(ExpectKeyword("select"));
    auto stmt = std::make_shared<SelectStmt>();
    stmt->distinct = AcceptKeyword("distinct");
    if (!stmt->distinct) AcceptKeyword("all");
    // Select items.
    do {
      SelectItem item;
      if (PeekOperator("*")) {
        ++pos_;
        item.is_star = true;
      } else if (Peek().kind == TokenKind::kIdentifier &&
                 PeekOperator(".", 1) && PeekOperator("*", 2)) {
        item.is_star = true;
        item.star_qualifier = Advance().text;
        pos_ += 2;
      } else {
        PRESTO_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("as")) {
          if (Peek().kind != TokenKind::kIdentifier) {
            return Err("expected alias after AS");
          }
          item.alias = Advance().text;
        } else if (Peek().kind == TokenKind::kIdentifier) {
          item.alias = Advance().text;
        }
      }
      stmt->items.push_back(std::move(item));
    } while (AcceptOperator(","));

    if (AcceptKeyword("from")) {
      PRESTO_ASSIGN_OR_RETURN(stmt->from, ParseTableRef());
    }
    if (AcceptKeyword("where")) {
      PRESTO_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (AcceptKeyword("group")) {
      PRESTO_RETURN_IF_ERROR(ExpectKeyword("by"));
      do {
        PRESTO_ASSIGN_OR_RETURN(AstExprPtr e, ParseExpr());
        stmt->group_by.push_back(std::move(e));
      } while (AcceptOperator(","));
    }
    if (AcceptKeyword("having")) {
      PRESTO_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
    }
    return stmt;
  }

  // ---- Table references ----
  Result<TableRefPtr> ParseTableRef() {
    PRESTO_ASSIGN_OR_RETURN(TableRefPtr left, ParseTablePrimary());
    for (;;) {
      JoinType jt;
      bool is_cross = false;
      if (AcceptKeyword("join")) {
        jt = JoinType::kInner;
      } else if (AcceptKeyword("inner")) {
        PRESTO_RETURN_IF_ERROR(ExpectKeyword("join"));
        jt = JoinType::kInner;
      } else if (AcceptKeyword("left")) {
        AcceptKeyword("outer");
        PRESTO_RETURN_IF_ERROR(ExpectKeyword("join"));
        jt = JoinType::kLeft;
      } else if (AcceptKeyword("right")) {
        AcceptKeyword("outer");
        PRESTO_RETURN_IF_ERROR(ExpectKeyword("join"));
        jt = JoinType::kRight;
      } else if (AcceptKeyword("full")) {
        AcceptKeyword("outer");
        PRESTO_RETURN_IF_ERROR(ExpectKeyword("join"));
        jt = JoinType::kFull;
      } else if (AcceptKeyword("cross")) {
        PRESTO_RETURN_IF_ERROR(ExpectKeyword("join"));
        jt = JoinType::kCross;
        is_cross = true;
      } else {
        break;
      }
      PRESTO_ASSIGN_OR_RETURN(TableRefPtr right, ParseTablePrimary());
      auto join = std::make_shared<TableRef>();
      join->kind = TableRefKind::kJoin;
      join->join_type = jt;
      join->left = std::move(left);
      join->right = std::move(right);
      if (!is_cross) {
        if (AcceptKeyword("on")) {
          PRESTO_ASSIGN_OR_RETURN(join->on_condition, ParseExpr());
        } else if (AcceptKeyword("using")) {
          PRESTO_RETURN_IF_ERROR(ExpectOperator("("));
          do {
            if (Peek().kind != TokenKind::kIdentifier) {
              return Err("expected column in USING");
            }
            join->using_columns.push_back(Advance().text);
          } while (AcceptOperator(","));
          PRESTO_RETURN_IF_ERROR(ExpectOperator(")"));
        } else {
          return Err("expected ON or USING after JOIN");
        }
      }
      left = std::move(join);
    }
    return left;
  }

  Result<TableRefPtr> ParseTablePrimary() {
    auto ref = std::make_shared<TableRef>();
    if (AcceptOperator("(")) {
      if (PeekKeyword("select")) {
        PRESTO_ASSIGN_OR_RETURN(ref->subquery, ParseSelectStmt());
        ref->kind = TableRefKind::kSubquery;
        PRESTO_RETURN_IF_ERROR(ExpectOperator(")"));
      } else {
        PRESTO_ASSIGN_OR_RETURN(TableRefPtr inner, ParseTableRef());
        PRESTO_RETURN_IF_ERROR(ExpectOperator(")"));
        return inner;
      }
    } else {
      PRESTO_ASSIGN_OR_RETURN(ref->name_parts, ParseQualifiedName());
      ref->kind = TableRefKind::kNamed;
    }
    if (AcceptKeyword("as")) {
      if (Peek().kind != TokenKind::kIdentifier) {
        return Err("expected alias after AS");
      }
      ref->alias = Advance().text;
    } else if (Peek().kind == TokenKind::kIdentifier) {
      ref->alias = Advance().text;
    }
    if (ref->kind == TableRefKind::kSubquery && ref->alias.empty()) {
      return Err("subquery in FROM requires an alias");
    }
    return ref;
  }

  // ---- Expressions (precedence climbing) ----
  Result<AstExprPtr> ParseExpr() { return ParseOr(); }

  Result<AstExprPtr> ParseOr() {
    PRESTO_ASSIGN_OR_RETURN(AstExprPtr left, ParseAnd());
    while (AcceptKeyword("or")) {
      PRESTO_ASSIGN_OR_RETURN(AstExprPtr right, ParseAnd());
      left = MakeBinary("or", std::move(left), std::move(right));
    }
    return left;
  }

  Result<AstExprPtr> ParseAnd() {
    PRESTO_ASSIGN_OR_RETURN(AstExprPtr left, ParseNot());
    while (AcceptKeyword("and")) {
      PRESTO_ASSIGN_OR_RETURN(AstExprPtr right, ParseNot());
      left = MakeBinary("and", std::move(left), std::move(right));
    }
    return left;
  }

  Result<AstExprPtr> ParseNot() {
    if (AcceptKeyword("not")) {
      PRESTO_ASSIGN_OR_RETURN(AstExprPtr inner, ParseNot());
      auto e = std::make_shared<AstExpr>();
      e->kind = AstExprKind::kUnaryOp;
      e->op = "not";
      e->children = {std::move(inner)};
      return AstExprPtr(e);
    }
    return ParseComparison();
  }

  Result<AstExprPtr> ParseComparison() {
    PRESTO_ASSIGN_OR_RETURN(AstExprPtr left, ParseAdditive());
    for (;;) {
      // IS [NOT] NULL
      if (PeekKeyword("is")) {
        ++pos_;
        bool negated = AcceptKeyword("not");
        PRESTO_RETURN_IF_ERROR(ExpectKeyword("null"));
        auto e = std::make_shared<AstExpr>();
        e->kind = AstExprKind::kIsNull;
        e->negated = negated;
        e->children = {std::move(left)};
        left = std::move(e);
        continue;
      }
      bool negated = false;
      size_t saved = pos_;
      if (PeekKeyword("not")) {
        // NOT IN / NOT BETWEEN / NOT LIKE
        if (PeekKeyword("in", 1) || PeekKeyword("between", 1) ||
            PeekKeyword("like", 1)) {
          ++pos_;
          negated = true;
        }
      }
      if (AcceptKeyword("in")) {
        PRESTO_RETURN_IF_ERROR(ExpectOperator("("));
        auto e = std::make_shared<AstExpr>();
        e->kind = AstExprKind::kIn;
        e->negated = negated;
        e->children.push_back(std::move(left));
        do {
          PRESTO_ASSIGN_OR_RETURN(AstExprPtr item, ParseExpr());
          e->children.push_back(std::move(item));
        } while (AcceptOperator(","));
        PRESTO_RETURN_IF_ERROR(ExpectOperator(")"));
        left = std::move(e);
        continue;
      }
      if (AcceptKeyword("between")) {
        auto e = std::make_shared<AstExpr>();
        e->kind = AstExprKind::kBetween;
        e->negated = negated;
        e->children.push_back(std::move(left));
        PRESTO_ASSIGN_OR_RETURN(AstExprPtr lo, ParseAdditive());
        PRESTO_RETURN_IF_ERROR(ExpectKeyword("and"));
        PRESTO_ASSIGN_OR_RETURN(AstExprPtr hi, ParseAdditive());
        e->children.push_back(std::move(lo));
        e->children.push_back(std::move(hi));
        left = std::move(e);
        continue;
      }
      if (AcceptKeyword("like")) {
        auto e = std::make_shared<AstExpr>();
        e->kind = AstExprKind::kLike;
        e->negated = negated;
        e->children.push_back(std::move(left));
        PRESTO_ASSIGN_OR_RETURN(AstExprPtr pattern, ParseAdditive());
        e->children.push_back(std::move(pattern));
        left = std::move(e);
        continue;
      }
      pos_ = saved;
      if (Peek().kind == TokenKind::kOperator &&
          (Peek().text == "=" || Peek().text == "<>" || Peek().text == "<" ||
           Peek().text == "<=" || Peek().text == ">" ||
           Peek().text == ">=")) {
        std::string op = Advance().text;
        PRESTO_ASSIGN_OR_RETURN(AstExprPtr right, ParseAdditive());
        left = MakeBinary(op, std::move(left), std::move(right));
        continue;
      }
      break;
    }
    return left;
  }

  Result<AstExprPtr> ParseAdditive() {
    PRESTO_ASSIGN_OR_RETURN(AstExprPtr left, ParseMultiplicative());
    for (;;) {
      if (PeekOperator("+") || PeekOperator("-")) {
        std::string op = Advance().text;
        PRESTO_ASSIGN_OR_RETURN(AstExprPtr right, ParseMultiplicative());
        left = MakeBinary(op, std::move(left), std::move(right));
      } else {
        break;
      }
    }
    return left;
  }

  Result<AstExprPtr> ParseMultiplicative() {
    PRESTO_ASSIGN_OR_RETURN(AstExprPtr left, ParseUnary());
    for (;;) {
      if (PeekOperator("*") || PeekOperator("/") || PeekOperator("%")) {
        std::string op = Advance().text;
        PRESTO_ASSIGN_OR_RETURN(AstExprPtr right, ParseUnary());
        left = MakeBinary(op, std::move(left), std::move(right));
      } else {
        break;
      }
    }
    return left;
  }

  Result<AstExprPtr> ParseUnary() {
    if (AcceptOperator("-")) {
      PRESTO_ASSIGN_OR_RETURN(AstExprPtr inner, ParseUnary());
      // Fold negative literals directly.
      if (inner->kind == AstExprKind::kLiteral &&
          inner->value.type() == TypeKind::kBigint) {
        inner->value = Value::Bigint(-inner->value.AsBigint());
        return inner;
      }
      if (inner->kind == AstExprKind::kLiteral &&
          inner->value.type() == TypeKind::kDouble) {
        inner->value = Value::Double(-inner->value.AsDouble());
        return inner;
      }
      auto e = std::make_shared<AstExpr>();
      e->kind = AstExprKind::kUnaryOp;
      e->op = "-";
      e->children = {std::move(inner)};
      return AstExprPtr(e);
    }
    AcceptOperator("+");
    return ParsePrimary();
  }

  Result<AstExprPtr> ParsePrimary() {
    auto e = std::make_shared<AstExpr>();
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kInteger:
        e->kind = AstExprKind::kLiteral;
        e->value = Value::Bigint(std::atoll(Advance().text.c_str()));
        return AstExprPtr(e);
      case TokenKind::kDouble:
        e->kind = AstExprKind::kLiteral;
        e->value = Value::Double(std::strtod(Advance().text.c_str(), nullptr));
        return AstExprPtr(e);
      case TokenKind::kString:
        e->kind = AstExprKind::kLiteral;
        e->value = Value::Varchar(Advance().text);
        return AstExprPtr(e);
      case TokenKind::kKeyword:
        if (tok.text == "null") {
          ++pos_;
          e->kind = AstExprKind::kLiteral;
          e->value = Value();
          return AstExprPtr(e);
        }
        if (tok.text == "true" || tok.text == "false") {
          e->kind = AstExprKind::kLiteral;
          e->value = Value::Boolean(Advance().text == "true");
          return AstExprPtr(e);
        }
        if (tok.text == "date") {
          ++pos_;
          if (Peek().kind != TokenKind::kString) {
            return Err("expected string after DATE");
          }
          int64_t days = 0;
          if (!ParseDate(Peek().text, &days)) {
            return Err("malformed date literal '" + Peek().text + "'");
          }
          ++pos_;
          e->kind = AstExprKind::kLiteral;
          e->value = Value::Date(days);
          return AstExprPtr(e);
        }
        if (tok.text == "cast") {
          ++pos_;
          PRESTO_RETURN_IF_ERROR(ExpectOperator("("));
          PRESTO_ASSIGN_OR_RETURN(AstExprPtr inner, ParseExpr());
          PRESTO_RETURN_IF_ERROR(ExpectKeyword("as"));
          std::string type_name;
          if (Peek().kind == TokenKind::kIdentifier ||
              Peek().kind == TokenKind::kKeyword) {
            type_name = Advance().text;
          } else {
            return Err("expected type name in CAST");
          }
          PRESTO_RETURN_IF_ERROR(ExpectOperator(")"));
          e->kind = AstExprKind::kCast;
          e->cast_type = type_name;
          e->children = {std::move(inner)};
          return AstExprPtr(e);
        }
        if (tok.text == "case") {
          return ParseCase();
        }
        return Err("unexpected keyword '" + tok.text + "'");
      case TokenKind::kOperator:
        if (tok.text == "(") {
          ++pos_;
          PRESTO_ASSIGN_OR_RETURN(AstExprPtr inner, ParseExpr());
          PRESTO_RETURN_IF_ERROR(ExpectOperator(")"));
          return inner;
        }
        if (tok.text == "*") {
          // COUNT(*) argument handled in function parsing; bare * invalid.
          return Err("unexpected '*'");
        }
        return Err("unexpected operator '" + tok.text + "'");
      case TokenKind::kIdentifier: {
        // Function call?
        if (PeekOperator("(", 1)) {
          return ParseFunctionCall();
        }
        PRESTO_ASSIGN_OR_RETURN(e->parts, ParseQualifiedName());
        e->kind = AstExprKind::kIdentifier;
        return AstExprPtr(e);
      }
      case TokenKind::kEnd:
        return Err("unexpected end of input");
    }
    return Err("unexpected token");
  }

  Result<AstExprPtr> ParseCase() {
    PRESTO_RETURN_IF_ERROR(ExpectKeyword("case"));
    auto e = std::make_shared<AstExpr>();
    e->kind = AstExprKind::kCase;
    if (!PeekKeyword("when")) {
      e->has_operand = true;
      PRESTO_ASSIGN_OR_RETURN(AstExprPtr operand, ParseExpr());
      e->children.push_back(std::move(operand));
    }
    if (!PeekKeyword("when")) return Err("expected WHEN in CASE");
    while (AcceptKeyword("when")) {
      PRESTO_ASSIGN_OR_RETURN(AstExprPtr cond, ParseExpr());
      PRESTO_RETURN_IF_ERROR(ExpectKeyword("then"));
      PRESTO_ASSIGN_OR_RETURN(AstExprPtr val, ParseExpr());
      e->children.push_back(std::move(cond));
      e->children.push_back(std::move(val));
    }
    if (AcceptKeyword("else")) {
      e->has_else = true;
      PRESTO_ASSIGN_OR_RETURN(AstExprPtr val, ParseExpr());
      e->children.push_back(std::move(val));
    }
    PRESTO_RETURN_IF_ERROR(ExpectKeyword("end"));
    return AstExprPtr(e);
  }

  Result<AstExprPtr> ParseFunctionCall() {
    auto e = std::make_shared<AstExpr>();
    e->kind = AstExprKind::kFunctionCall;
    e->function_name = Advance().text;
    PRESTO_RETURN_IF_ERROR(ExpectOperator("("));
    if (AcceptOperator("*")) {
      auto star = std::make_shared<AstExpr>();
      star->kind = AstExprKind::kStar;
      e->children.push_back(std::move(star));
    } else if (!PeekOperator(")")) {
      e->distinct = AcceptKeyword("distinct");
      do {
        PRESTO_ASSIGN_OR_RETURN(AstExprPtr arg, ParseExpr());
        e->children.push_back(std::move(arg));
      } while (AcceptOperator(","));
    }
    PRESTO_RETURN_IF_ERROR(ExpectOperator(")"));
    if (AcceptKeyword("over")) {
      PRESTO_RETURN_IF_ERROR(ExpectOperator("("));
      auto spec = std::make_shared<WindowSpec>();
      if (AcceptKeyword("partition")) {
        PRESTO_RETURN_IF_ERROR(ExpectKeyword("by"));
        do {
          PRESTO_ASSIGN_OR_RETURN(AstExprPtr p, ParseExpr());
          spec->partition_by.push_back(std::move(p));
        } while (AcceptOperator(","));
      }
      if (AcceptKeyword("order")) {
        PRESTO_RETURN_IF_ERROR(ExpectKeyword("by"));
        do {
          AstExprPtr k;
          PRESTO_ASSIGN_OR_RETURN(k, ParseExpr());
          bool asc = true;
          if (AcceptKeyword("desc")) {
            asc = false;
          } else {
            AcceptKeyword("asc");
          }
          spec->order_by.emplace_back(std::move(k), asc);
        } while (AcceptOperator(","));
      }
      PRESTO_RETURN_IF_ERROR(ExpectOperator(")"));
      e->window = std::move(spec);
    }
    return AstExprPtr(e);
  }

  static AstExprPtr MakeBinary(const std::string& op, AstExprPtr l,
                               AstExprPtr r) {
    auto e = std::make_shared<AstExpr>();
    e->kind = AstExprKind::kBinaryOp;
    e->op = op;
    e->children = {std::move(l), std::move(r)};
    return e;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<StatementPtr> ParseStatement(const std::string& sql) {
  PRESTO_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatementTop();
}

Result<SelectStmtPtr> ParseSelect(const std::string& sql) {
  PRESTO_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement(sql));
  if (stmt->kind != StatementKind::kSelect) {
    return Status::InvalidArgument("expected a SELECT statement");
  }
  return stmt->select;
}

}  // namespace presto::sql
