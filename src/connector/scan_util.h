#ifndef PRESTOCPP_CONNECTOR_SCAN_UTIL_H_
#define PRESTOCPP_CONNECTOR_SCAN_UTIL_H_

#include <string>
#include <vector>

#include "connector/connector.h"

namespace presto {

/// Reads an entire table through the connector API into pages (single
/// threaded). Used to copy data between connectors (e.g. loading the hive
/// and raptor substrates from the tpch generator) in tests, examples, and
/// benchmark setup.
Result<std::vector<Page>> ReadAllPages(Connector* connector,
                                       const std::string& table_name);

}  // namespace presto

#endif  // PRESTOCPP_CONNECTOR_SCAN_UTIL_H_
