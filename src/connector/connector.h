#ifndef PRESTOCPP_CONNECTOR_CONNECTOR_H_
#define PRESTOCPP_CONNECTOR_CONNECTOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "types/row_schema.h"
#include "types/value.h"
#include "vector/page.h"

namespace presto {

/// Monotonic per-table metadata version (ISSUE 8). Every write-path
/// mutation of a table (DataSink commit, fixture CreateTable, CTAS begin)
/// bumps it; planning-path caches record the version they read and treat
/// any mismatch as an invalidation. Version 0 means "never mutated since
/// the connector was constructed" — immutable connectors (tpch) stay at 0
/// forever, which makes their cached metadata valid forever.
using MetadataVersion = int64_t;

// ---------------------------------------------------------------------------
// The Connector API (§III): Metadata API, Data Location API (splits +
// layouts), Data Source API, and Data Sink API. Every storage system in this
// repository — hive (minidfs+storc), raptor, shardedstore, tpch, memcon —
// implements these interfaces, and the engine is written only against them.
// ---------------------------------------------------------------------------

/// Table and column statistics reported by connectors (§IV-C: "cost-based
/// optimizations that take table and column statistics into account").
struct ColumnStats {
  int64_t distinct_values = -1;  // -1 = unknown
  double null_fraction = 0.0;
  Value min;  // null Value = unknown
  Value max;
};

struct TableStats {
  int64_t row_count = -1;  // -1 = unknown
  std::map<std::string, ColumnStats> columns;

  bool valid() const { return row_count >= 0; }
};

/// A physical data layout exposed through the Data Layout API (§IV-C1):
/// partitioning/bucketing (enables co-located joins and shuffle elision),
/// sort order (enables range pruning) and indexes (enables index joins and
/// exact predicate pushdown).
struct DataLayout {
  std::string id;
  std::vector<std::string> partition_columns;  // bucketed-by columns
  int bucket_count = 0;
  std::vector<std::string> sort_columns;
  std::vector<std::string> index_columns;
};

/// Opaque connector table handle; concrete connectors subclass.
class TableHandle {
 public:
  virtual ~TableHandle() = default;
  virtual const std::string& name() const = 0;
  virtual const RowSchema& schema() const = 0;
};
using TableHandlePtr = std::shared_ptr<const TableHandle>;

/// A simple conjunct of the form `column OP literal(s)` that the optimizer
/// offers to connectors for pushdown (§IV-C2).
struct ColumnPredicate {
  enum class Op : uint8_t { kEq, kNeq, kLt, kLte, kGt, kGte, kIn };
  std::string column;
  Op op;
  std::vector<Value> values;  // one value, or several for kIn

  std::string ToString() const;

  /// Stable, type-tagged serialization for fingerprinting: unlike
  /// ToString() (a debug rendering), it distinguishes BIGINT 1 from
  /// VARCHAR '1' and is the canonical comparison form — use it (or
  /// ScanSpec::Fingerprint) instead of comparing ToString() output.
  std::string CanonicalString() const;
};

/// How completely a connector enforces a pushed-down predicate.
enum class PushdownSupport : uint8_t {
  kUnsupported,  // connector ignores it; engine must filter
  kInexact,      // connector prunes (e.g. stripe stats) but may leak rows
  kExact,        // connector guarantees only matching rows are produced
};

/// An opaque handle to an addressable chunk of data in an external system
/// (§III). Concrete connectors subclass; the scheduler only looks at the
/// affinity fields.
class Split {
 public:
  virtual ~Split() = default;
  /// Preferred worker for shared-nothing/locality-constrained connectors
  /// (§IV-D2 "workers be co-located with storage nodes"); -1 = any worker.
  virtual int preferred_worker() const { return -1; }
  /// True if the split MUST run on preferred_worker() (shared-nothing).
  virtual bool hard_affinity() const { return false; }
  /// Debug label.
  virtual std::string ToString() const = 0;
};
using SplitPtr = std::shared_ptr<const Split>;

/// Lazily enumerates splits in small batches (§IV-D3 "Presto asks
/// connectors to enumerate small batches of splits, and assigns them to
/// tasks lazily").
class SplitSource {
 public:
  virtual ~SplitSource() = default;
  /// Returns up to `max_batch` more splits; empty vector = exhausted.
  virtual Result<std::vector<SplitPtr>> NextBatch(int max_batch) = 0;
};

/// Streaming page reader for one split (Data Source API).
class DataSource {
 public:
  virtual ~DataSource() = default;
  /// Next page of data, or nullopt at end of split.
  virtual Result<std::optional<Page>> NextPage() = 0;
  /// Bytes fetched from (simulated) storage so far, for stats.
  virtual int64_t bytes_read() const { return 0; }
};

/// Streaming page writer (Data Sink API).
class DataSink {
 public:
  virtual ~DataSink() = default;
  virtual Status Append(const Page& page) = 0;
  /// Flushes and commits; returns rows written by this sink.
  virtual Result<int64_t> Finish() = 0;
};

/// Everything a connector tells the engine about its tables — the
/// Metadata API (§III), redesigned in ISSUE 8 around an explicit version/
/// invalidation protocol so planning-path caches can be *invalidated*
/// instead of merely expired:
///
///  - every table carries a monotonic MetadataVersion (GetTableVersion);
///  - write paths call BumpTableVersion, which increments the version and
///    then fires every registered invalidation hook *after* the bump, so
///    by the time a hook observes the mutation the new version is already
///    visible — a cache entry recorded under the old version can never
///    revalidate;
///  - the analyzer/optimizer/coordinator read tables only through this
///    interface (via MetadataResolver snapshots, src/metadata/).
///
/// The version/hook machinery is virtual so delegating wrappers (test
/// doubles, federated views) can forward to an inner connector's state.
class ConnectorMetadata {
 public:
  /// Fired after a table's version was bumped; receives the table name.
  /// Called outside the version lock — hooks may call GetTableVersion.
  using InvalidationHook = std::function<void(const std::string& table)>;

  virtual ~ConnectorMetadata() = default;
  virtual std::vector<std::string> ListTables() const = 0;

  /// Current metadata version of `table`; 0 if never mutated.
  virtual MetadataVersion GetTableVersion(const std::string& table) const;

  /// Registers an invalidation hook; returns an id for removal. Hooks run
  /// synchronously on the mutating thread, after the version bump.
  virtual int AddInvalidationHook(InvalidationHook hook);
  virtual void RemoveInvalidationHook(int id);
  virtual Result<TableHandlePtr> GetTable(const std::string& name) const = 0;
  virtual Result<TableStats> GetStats(const TableHandle& table) const {
    (void)table;
    return TableStats{};
  }
  virtual std::vector<DataLayout> GetLayouts(const TableHandle& table) const {
    (void)table;
    return {};
  }
  /// Which pushdown level the connector provides for `pred` on `table`.
  virtual PushdownSupport GetPushdownSupport(
      const TableHandle& table, const ColumnPredicate& pred) const {
    (void)table;
    (void)pred;
    return PushdownSupport::kUnsupported;
  }
  /// Starts a CREATE TABLE AS; returns the handle future sinks write into.
  virtual Result<TableHandlePtr> BeginCreateTable(const std::string& name,
                                                  const RowSchema& schema) {
    (void)name;
    (void)schema;
    return Status::Unsupported("connector does not support CREATE TABLE");
  }
  /// Commits a CTAS/INSERT once all sinks finished. Implementations must
  /// call BumpTableVersion(table.name()) so dependent caches invalidate.
  virtual Status FinishWrite(const TableHandle& table) {
    (void)table;
    return Status::OK();
  }

 protected:
  /// The write-path mutation hook: increments `table`'s version, then
  /// fires every invalidation hook (outside the lock). Connectors call
  /// this from every path that changes a table's data or shape.
  void BumpTableVersion(const std::string& table);

 private:
  mutable std::mutex version_mu_;
  std::map<std::string, MetadataVersion> versions_;
  std::map<int, InvalidationHook> hooks_;
  int next_hook_id_ = 0;
};

/// Everything the engine has decided about one scan, handed to the
/// connector as a unit: the table, the chosen layout, the projected
/// columns, the pushed-down predicates, and the cluster parallelism hint.
/// Split enumeration and data-source creation read the same spec, so the
/// two halves of a scan can never disagree about what is being scanned.
struct ScanSpec {
  TableHandlePtr table;
  /// Selects among metadata().GetLayouts(); empty = connector default.
  std::string layout_id;
  /// Projected column ordinals into the table schema. Ignored by
  /// GetSplits; empty means "all columns" for callers that only
  /// enumerate splits.
  std::vector<int> columns;
  /// Conjuncts the optimizer pushed down (already filtered to those the
  /// connector said it supports).
  std::vector<ColumnPredicate> predicates;
  /// Worker count, sizing split granularity (§IV-D3).
  int num_workers = 1;

  /// Canonical text form of everything that determines this scan's split
  /// set and page stream: table name, layout, projected columns, the
  /// predicates in sorted canonical form (conjunct order is irrelevant),
  /// and the worker count (which sizes split granularity). Two specs with
  /// equal CanonicalString() describe the same scan.
  std::string CanonicalString() const;

  /// Stable 64-bit hash of CanonicalString() — the split-cache key and the
  /// canonical way to compare specs/predicate sets for equality.
  uint64_t Fingerprint() const;
};

/// A connector instance registered in the catalog under a name ("hive",
/// "raptor", "mysql", "tpch", "memory").
class Connector {
 public:
  virtual ~Connector() = default;

  virtual const std::string& name() const = 0;
  virtual ConnectorMetadata& metadata() = 0;

  /// Data Location API: split enumeration for the scan described by `spec`
  /// (§IV-D3).
  virtual Result<std::unique_ptr<SplitSource>> GetSplits(
      const ScanSpec& spec) = 0;

  /// Data Source API: page reader for one split of the scan described by
  /// `spec`.
  virtual Result<std::unique_ptr<DataSource>> CreateDataSource(
      const Split& split, const ScanSpec& spec) = 0;

  /// Data Sink API: writer `writer_id` for a CTAS/INSERT target.
  virtual Result<std::unique_ptr<DataSink>> CreateDataSink(
      const TableHandle& table, int writer_id) {
    (void)table;
    (void)writer_id;
    return Status::Unsupported("connector does not support writes");
  }

  /// Wire form of a split for the out-of-process task protocol: the
  /// coordinator enumerates splits, serializes them, and streams them to
  /// workers, which re-materialize concrete Split objects against their own
  /// instance of the same connector. The encoding is connector-private; the
  /// engine treats it as an opaque string.
  virtual Result<std::string> SerializeSplit(const Split& split) const {
    (void)split;
    return Status::Unsupported("connector '" + name() +
                               "' does not support split serialization");
  }
  virtual Result<SplitPtr> DeserializeSplit(const std::string& data) const {
    (void)data;
    return Status::Unsupported("connector '" + name() +
                               "' does not support split deserialization");
  }
};
using ConnectorPtr = std::shared_ptr<Connector>;

/// Catalog: the set of registered connectors plus a default for unqualified
/// table names. A single query may touch several connectors (federation).
class Catalog {
 public:
  void Register(ConnectorPtr connector);
  Result<Connector*> Get(const std::string& name) const;
  void SetDefault(const std::string& name) { default_name_ = name; }
  const std::string& default_name() const { return default_name_; }
  std::vector<std::string> ConnectorNames() const;

 private:
  std::map<std::string, ConnectorPtr> connectors_;
  std::string default_name_;
};

}  // namespace presto

#endif  // PRESTOCPP_CONNECTOR_CONNECTOR_H_
