#include "connector/connector.h"

#include "common/check.h"

namespace presto {

std::string ColumnPredicate::ToString() const {
  const char* op_text = "?";
  switch (op) {
    case Op::kEq:
      op_text = "=";
      break;
    case Op::kNeq:
      op_text = "<>";
      break;
    case Op::kLt:
      op_text = "<";
      break;
    case Op::kLte:
      op_text = "<=";
      break;
    case Op::kGt:
      op_text = ">";
      break;
    case Op::kGte:
      op_text = ">=";
      break;
    case Op::kIn:
      op_text = "IN";
      break;
  }
  std::string out = column;
  out += " ";
  out += op_text;
  out += " ";
  if (op == Op::kIn) {
    out += "(";
    for (size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out += ", ";
      out += values[i].ToString();
    }
    out += ")";
  } else if (!values.empty()) {
    out += values[0].ToString();
  }
  return out;
}

void Catalog::Register(ConnectorPtr connector) {
  PRESTO_CHECK(connector != nullptr);
  std::string name = connector->name();
  if (default_name_.empty()) default_name_ = name;
  connectors_[name] = std::move(connector);
}

Result<Connector*> Catalog::Get(const std::string& name) const {
  auto it = connectors_.find(name);
  if (it == connectors_.end()) {
    return Status::NotFound("unknown catalog: " + name);
  }
  return it->second.get();
}

std::vector<std::string> Catalog::ConnectorNames() const {
  std::vector<std::string> names;
  names.reserve(connectors_.size());
  for (const auto& [name, _] : connectors_) names.push_back(name);
  return names;
}

}  // namespace presto
