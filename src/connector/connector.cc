#include "connector/connector.h"

#include <algorithm>

#include "common/check.h"
#include "common/hash.h"
#include "types/type.h"

namespace presto {

std::string ColumnPredicate::ToString() const {
  const char* op_text = "?";
  switch (op) {
    case Op::kEq:
      op_text = "=";
      break;
    case Op::kNeq:
      op_text = "<>";
      break;
    case Op::kLt:
      op_text = "<";
      break;
    case Op::kLte:
      op_text = "<=";
      break;
    case Op::kGt:
      op_text = ">";
      break;
    case Op::kGte:
      op_text = ">=";
      break;
    case Op::kIn:
      op_text = "IN";
      break;
  }
  std::string out = column;
  out += " ";
  out += op_text;
  out += " ";
  if (op == Op::kIn) {
    out += "(";
    for (size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out += ", ";
      out += values[i].ToString();
    }
    out += ")";
  } else if (!values.empty()) {
    out += values[0].ToString();
  }
  return out;
}

std::string ColumnPredicate::CanonicalString() const {
  std::string out = column;
  out += '|';
  out += std::to_string(static_cast<int>(op));
  for (const Value& v : values) {
    out += '|';
    out += TypeToString(v.type());
    out += ':';
    out += v.is_null() ? "<null>" : v.ToString();
  }
  return out;
}

std::string ScanSpec::CanonicalString() const {
  std::string out = table != nullptr ? table->name() : "<none>";
  out += "/layout=";
  out += layout_id;
  out += "/cols=";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(columns[i]);
  }
  out += "/preds=";
  std::vector<std::string> canonical;
  canonical.reserve(predicates.size());
  for (const auto& p : predicates) canonical.push_back(p.CanonicalString());
  // Conjunct order is semantically irrelevant; sort so `a AND b` and
  // `b AND a` fingerprint identically.
  std::sort(canonical.begin(), canonical.end());
  for (size_t i = 0; i < canonical.size(); ++i) {
    if (i > 0) out += '&';
    out += canonical[i];
  }
  out += "/workers=";
  out += std::to_string(num_workers);
  return out;
}

uint64_t ScanSpec::Fingerprint() const {
  std::string canonical = CanonicalString();
  return XxHash64(canonical.data(), canonical.size());
}

MetadataVersion ConnectorMetadata::GetTableVersion(
    const std::string& table) const {
  std::lock_guard<std::mutex> lock(version_mu_);
  auto it = versions_.find(table);
  return it != versions_.end() ? it->second : 0;
}

int ConnectorMetadata::AddInvalidationHook(InvalidationHook hook) {
  std::lock_guard<std::mutex> lock(version_mu_);
  int id = next_hook_id_++;
  hooks_[id] = std::move(hook);
  return id;
}

void ConnectorMetadata::RemoveInvalidationHook(int id) {
  std::lock_guard<std::mutex> lock(version_mu_);
  hooks_.erase(id);
}

void ConnectorMetadata::BumpTableVersion(const std::string& table) {
  std::vector<InvalidationHook> hooks;
  {
    std::lock_guard<std::mutex> lock(version_mu_);
    ++versions_[table];
    hooks.reserve(hooks_.size());
    for (const auto& [_, hook] : hooks_) hooks.push_back(hook);
  }
  // Fire outside the lock: hooks typically take a cache mutex and may call
  // GetTableVersion back; the bump is already visible to them.
  for (const auto& hook : hooks) hook(table);
}

void Catalog::Register(ConnectorPtr connector) {
  PRESTO_CHECK(connector != nullptr);
  std::string name = connector->name();
  if (default_name_.empty()) default_name_ = name;
  connectors_[name] = std::move(connector);
}

Result<Connector*> Catalog::Get(const std::string& name) const {
  auto it = connectors_.find(name);
  if (it == connectors_.end()) {
    return Status::NotFound("unknown catalog: " + name);
  }
  return it->second.get();
}

std::vector<std::string> Catalog::ConnectorNames() const {
  std::vector<std::string> names;
  names.reserve(connectors_.size());
  for (const auto& [name, _] : connectors_) names.push_back(name);
  return names;
}

}  // namespace presto
