#include "connector/scan_util.h"

namespace presto {

Result<std::vector<Page>> ReadAllPages(Connector* connector,
                                       const std::string& table_name) {
  PRESTO_ASSIGN_OR_RETURN(TableHandlePtr table,
                          connector->metadata().GetTable(table_name));
  ScanSpec spec;
  spec.table = table;
  for (size_t c = 0; c < table->schema().size(); ++c) {
    spec.columns.push_back(static_cast<int>(c));
  }
  PRESTO_ASSIGN_OR_RETURN(auto splits, connector->GetSplits(spec));
  std::vector<Page> pages;
  for (;;) {
    PRESTO_ASSIGN_OR_RETURN(auto batch, splits->NextBatch(64));
    if (batch.empty()) break;
    for (const auto& split : batch) {
      PRESTO_ASSIGN_OR_RETURN(auto source,
                              connector->CreateDataSource(*split, spec));
      for (;;) {
        PRESTO_ASSIGN_OR_RETURN(auto page, source->NextPage());
        if (!page.has_value()) break;
        pages.push_back(std::move(*page));
      }
    }
  }
  return pages;
}

}  // namespace presto
