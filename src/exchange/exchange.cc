#include "exchange/exchange.h"

#include <thread>

namespace presto {

bool ExchangeBuffer::TryEnqueue(const PageCodec::Frame& frame) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t bytes = frame.wire_bytes();
  // Admit a frame only if it fits within capacity. The empty-buffer exception
  // guarantees progress for a single frame larger than the whole buffer —
  // without it an oversized page could never be shipped at all.
  if (buffered_bytes_ > 0 && buffered_bytes_ + bytes > capacity_bytes_) {
    return false;
  }
  buffered_bytes_ += bytes;
  total_bytes_.fetch_add(bytes);
  total_raw_bytes_.fetch_add(frame.raw_bytes);
  total_rows_.fetch_add(frame.rows);
  if (wire_total_ != nullptr) wire_total_->fetch_add(bytes);
  if (raw_total_ != nullptr) raw_total_->fetch_add(frame.raw_bytes);
  frames_.push_back(frame);
  return true;
}

void ExchangeBuffer::NoMorePages() {
  std::lock_guard<std::mutex> lock(mu_);
  no_more_ = true;
}

std::optional<PageCodec::Frame> ExchangeBuffer::Poll(bool* finished) {
  std::lock_guard<std::mutex> lock(mu_);
  if (frames_.empty()) {
    *finished = no_more_;
    return std::nullopt;
  }
  PageCodec::Frame frame = std::move(frames_.front());
  frames_.pop_front();
  buffered_bytes_ -= frame.wire_bytes();
  *finished = false;
  return frame;
}

double ExchangeBuffer::utilization() const {
  std::lock_guard<std::mutex> lock(mu_);
  // A buffer with no (or nonsensical) capacity is saturated the moment it
  // holds data — reporting 0 here would hide backpressure from the §IV-E3
  // writer-scaling trigger and the §IV-E2 concurrency reduction.
  if (capacity_bytes_ <= 0) return buffered_bytes_ > 0 ? 1.0 : 0.0;
  double u = static_cast<double>(buffered_bytes_) /
             static_cast<double>(capacity_bytes_);
  return u > 1.0 ? 1.0 : u;
}

bool ExchangeBuffer::finished() const {
  std::lock_guard<std::mutex> lock(mu_);
  return no_more_ && frames_.empty();
}

int64_t ExchangeBuffer::buffered_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buffered_bytes_;
}

void ExchangeManager::CreateOutputBuffers(const std::string& query_id,
                                          int fragment, int task,
                                          int partitions,
                                          int64_t capacity_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  for (int p = 0; p < partitions; ++p) {
    StreamId id{query_id, fragment, task, p};
    if (buffers_.find(id) == buffers_.end()) {
      buffers_[id] = std::make_shared<ExchangeBuffer>(
          capacity_bytes, &serialized_wire_, &serialized_raw_);
    }
  }
}

std::shared_ptr<ExchangeBuffer> ExchangeManager::GetBuffer(
    const StreamId& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buffers_.find(id);
  return it == buffers_.end() ? nullptr : it->second;
}

double ExchangeManager::OutputUtilization(const std::string& query_id,
                                          int fragment, int task) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Maximum across partitions: a single full buffer stalls the producer
  // (and is the §IV-E3 writer-scaling trigger).
  double max_utilization = 0;
  StreamId lo{query_id, fragment, task, 0};
  for (auto it = buffers_.lower_bound(lo); it != buffers_.end(); ++it) {
    if (it->first.query_id != query_id || it->first.fragment != fragment ||
        it->first.task != task) {
      break;
    }
    max_utilization = std::max(max_utilization, it->second->utilization());
  }
  return max_utilization;
}

void ExchangeManager::RemoveQuery(const std::string& query_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = buffers_.begin(); it != buffers_.end();) {
    if (it->first.query_id == query_id) {
      it = buffers_.erase(it);
    } else {
      ++it;
    }
  }
}

int64_t ExchangeManager::TotalBufferedBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [id, buffer] : buffers_) {
    total += buffer->buffered_bytes();
  }
  return total;
}

void ExchangeManager::SimulateTransfer(int64_t bytes) const {
  transferred_bytes_.fetch_add(bytes);
  int64_t micros = network_.latency_micros;
  if (network_.bytes_per_second > 0) {
    micros += bytes * 1000000 / network_.bytes_per_second;
  }
  if (micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

}  // namespace presto
