#include "exchange/exchange.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace presto {

bool ExchangeBuffer::TryEnqueue(const PageCodec::Frame& frame) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t bytes = frame.wire_bytes();
  // Admit a frame only if it fits within capacity. The empty-buffer exception
  // guarantees progress for a single frame larger than the whole buffer —
  // without it an oversized page could never be shipped at all. Unacked
  // frames count against capacity: a consumer that never acks eventually
  // stalls its producer (backpressure end to end).
  if (buffered_bytes_ > 0 && buffered_bytes_ + bytes > capacity_bytes_) {
    return false;
  }
  buffered_bytes_ += bytes;
  total_bytes_.fetch_add(bytes);
  total_raw_bytes_.fetch_add(frame.raw_bytes);
  total_rows_.fetch_add(frame.rows);
  if (wire_total_ != nullptr) wire_total_->fetch_add(bytes);
  if (raw_total_ != nullptr) raw_total_->fetch_add(frame.raw_bytes);
  frames_.push_back(frame);
  cv_.notify_all();
  return true;
}

void ExchangeBuffer::NoMorePages() {
  std::lock_guard<std::mutex> lock(mu_);
  no_more_ = true;
  cv_.notify_all();
}

std::optional<PageCodec::Frame> ExchangeBuffer::Poll(bool* finished) {
  // In-process transport only; never mixed with retain mode (which exists
  // for the HTTP replay path), so pop-and-ack keeps base == acked.
  std::lock_guard<std::mutex> lock(mu_);
  if (frames_.empty()) {
    *finished = no_more_;
    return std::nullopt;
  }
  PageCodec::Frame frame = std::move(frames_.front());
  frames_.pop_front();
  buffered_bytes_ -= frame.wire_bytes();
  ++base_token_;  // fetch + immediate ack
  acked_token_ = base_token_;
  sent_token_ = std::max(sent_token_, base_token_);
  *finished = false;
  return frame;
}

Result<ExchangeBuffer::FrameBatch> ExchangeBuffer::GetBatch(
    int64_t token, int64_t max_bytes, int64_t wait_micros) {
  std::unique_lock<std::mutex> lock(mu_);
  if (token < base_token_) {
    return Status::InvalidArgument("token " + std::to_string(token) +
                                   " already retired (acked past " +
                                   std::to_string(base_token_) + ")");
  }
  int64_t end_token = base_token_ + static_cast<int64_t>(frames_.size());
  if (token > end_token) {
    return Status::InvalidArgument("token " + std::to_string(token) +
                                   " not yet produced (have up to " +
                                   std::to_string(end_token) + ")");
  }
  // Ack: a request for token n retires everything below n, freeing capacity
  // for the producer. In retain mode the frames themselves are kept (their
  // bytes move to the retained pool) so a replacement consumer can replay
  // the stream from token 0 after a task retry (ISSUE 7). A replay request
  // (token < acked_token_) acks nothing — those frames were already freed.
  while (acked_token_ < token) {
    PageCodec::Frame& acked = frames_[static_cast<size_t>(acked_token_ -
                                                          base_token_)];
    buffered_bytes_ -= acked.wire_bytes();
    if (retain_) {
      retained_bytes_ += acked.wire_bytes();
      ++acked_token_;
    } else {
      frames_.pop_front();
      ++base_token_;
      ++acked_token_;
    }
  }
  // Long-poll: wait (releasing the lock) for data at/after `token` or
  // end-of-stream.
  auto have_data = [this, token] {
    return token < base_token_ + static_cast<int64_t>(frames_.size()) ||
           no_more_;
  };
  if (!have_data() && wait_micros > 0) {
    cv_.wait_for(lock, std::chrono::microseconds(wait_micros), have_data);
  }
  FrameBatch batch;
  batch.token = token;
  int64_t bytes = 0;
  for (size_t i = static_cast<size_t>(token - base_token_);
       i < frames_.size(); ++i) {
    const auto& frame = frames_[i];
    if (!batch.frames.empty() && bytes + frame.wire_bytes() > max_bytes) {
      break;
    }
    batch.frames.push_back(frame);
    bytes += frame.wire_bytes();
  }
  batch.next_token = token + static_cast<int64_t>(batch.frames.size());
  batch.complete =
      no_more_ &&
      batch.next_token == base_token_ + static_cast<int64_t>(frames_.size());
  sent_token_ = std::max(sent_token_, batch.next_token);
  return batch;
}

double ExchangeBuffer::utilization() const {
  std::lock_guard<std::mutex> lock(mu_);
  // A buffer with no (or nonsensical) capacity is saturated the moment it
  // holds data — reporting 0 here would hide backpressure from the §IV-E3
  // writer-scaling trigger and the §IV-E2 concurrency reduction.
  if (capacity_bytes_ <= 0) return buffered_bytes_ > 0 ? 1.0 : 0.0;
  double u = static_cast<double>(buffered_bytes_) /
             static_cast<double>(capacity_bytes_);
  return u > 1.0 ? 1.0 : u;
}

bool ExchangeBuffer::finished() const {
  std::lock_guard<std::mutex> lock(mu_);
  return no_more_ && frames_.empty();
}

int64_t ExchangeBuffer::buffered_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buffered_bytes_;
}

int64_t ExchangeBuffer::inflight_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Frames sent but not yet acked: [acked_token_, min(sent_token_, end)).
  int64_t from = std::max(acked_token_, base_token_);
  int64_t to = std::min(sent_token_,
                        base_token_ + static_cast<int64_t>(frames_.size()));
  int64_t bytes = 0;
  for (int64_t t = from; t < to; ++t) {
    bytes += frames_[static_cast<size_t>(t - base_token_)].wire_bytes();
  }
  return bytes;
}

int64_t ExchangeBuffer::retained_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retained_bytes_;
}

void ExchangeManager::CreateOutputBuffers(const std::string& query_id,
                                          int fragment, int task,
                                          int partitions,
                                          int64_t capacity_bytes,
                                          int generation) {
  std::lock_guard<std::mutex> lock(mu_);
  bool retain = retain_for_replay_.load();
  for (int p = 0; p < partitions; ++p) {
    StreamId id{query_id, fragment, task, p};
    auto it = buffers_.find(id);
    // Same-or-newer generation: idempotent create, keep the buffer. Older
    // generation: a recovery re-creation superseded the task on this
    // worker — its stale stream must not be served to the new consumers.
    if (it != buffers_.end() && it->second->generation() >= generation) {
      continue;
    }
    buffers_[id] = std::make_shared<ExchangeBuffer>(
        capacity_bytes, &serialized_wire_, &serialized_raw_, generation,
        retain);
  }
}

void ExchangeManager::RemoveTaskBuffers(const std::string& query_id,
                                        int fragment, int task) {
  std::lock_guard<std::mutex> lock(mu_);
  StreamId lo{query_id, fragment, task, 0};
  for (auto it = buffers_.lower_bound(lo); it != buffers_.end();) {
    if (it->first.query_id != query_id || it->first.fragment != fragment ||
        it->first.task != task) {
      break;
    }
    it = buffers_.erase(it);
  }
}

std::shared_ptr<ExchangeBuffer> ExchangeManager::GetBuffer(
    const StreamId& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buffers_.find(id);
  return it == buffers_.end() ? nullptr : it->second;
}

double ExchangeManager::OutputUtilization(const std::string& query_id,
                                          int fragment, int task) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Maximum across partitions: a single full buffer stalls the producer
  // (and is the §IV-E3 writer-scaling trigger).
  double max_utilization = 0;
  StreamId lo{query_id, fragment, task, 0};
  for (auto it = buffers_.lower_bound(lo); it != buffers_.end(); ++it) {
    if (it->first.query_id != query_id || it->first.fragment != fragment ||
        it->first.task != task) {
      break;
    }
    max_utilization = std::max(max_utilization, it->second->utilization());
  }
  return max_utilization;
}

void ExchangeManager::RemoveQuery(const std::string& query_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = buffers_.begin(); it != buffers_.end();) {
    if (it->first.query_id == query_id) {
      it = buffers_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = endpoints_.begin(); it != endpoints_.end();) {
    if (it->first.query_id == query_id) {
      it = endpoints_.erase(it);
    } else {
      ++it;
    }
  }
}

void ExchangeManager::RemoveStream(const StreamId& id) {
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.erase(id);
}

void ExchangeManager::RegisterTaskEndpoint(const std::string& query_id,
                                           int fragment, int task, int port,
                                           int generation) {
  std::lock_guard<std::mutex> lock(mu_);
  endpoints_[StreamId{query_id, fragment, task, 0}] =
      TaskEndpoint{port, generation};
}

int ExchangeManager::LookupTaskEndpoint(const std::string& query_id,
                                        int fragment, int task) const {
  return LookupTaskEndpointInfo(query_id, fragment, task).port;
}

ExchangeManager::TaskEndpoint ExchangeManager::LookupTaskEndpointInfo(
    const std::string& query_id, int fragment, int task) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = endpoints_.find(StreamId{query_id, fragment, task, 0});
  return it == endpoints_.end() ? TaskEndpoint{} : it->second;
}

int64_t ExchangeManager::TotalBufferedBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [id, buffer] : buffers_) {
    total += buffer->buffered_bytes();
  }
  return total;
}

int64_t ExchangeManager::TotalInflightBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [id, buffer] : buffers_) {
    total += buffer->inflight_bytes();
  }
  return total;
}

int64_t ExchangeManager::TotalRetainedBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [id, buffer] : buffers_) {
    total += buffer->retained_bytes();
  }
  return total;
}

void ExchangeManager::SimulateTransfer(int64_t bytes) const {
  RecordTransfer(bytes);
  int64_t micros = network_.latency_micros;
  if (network_.bytes_per_second > 0) {
    micros += bytes * 1000000 / network_.bytes_per_second;
  }
  if (micros > 0) {
    // The sleep deliberately happens without mu_ (or any other lock) held:
    // concurrent transfers on different consumer threads must overlap.
    // Pinned by ExchangeTransferTest.ConcurrentTransfersOverlap.
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

}  // namespace presto
