#ifndef PRESTOCPP_EXCHANGE_EXCHANGE_H_
#define PRESTOCPP_EXCHANGE_EXCHANGE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "vector/page_codec.h"

namespace presto {

class Histogram;
class TraceRegistry;

/// How serialized frames move between tasks (§IV-E2).
enum class TransportMode : uint8_t {
  /// Consumers poll producer buffers directly through the shared
  /// ExchangeManager map, with SimulateTransfer standing in for the network.
  kInProcess = 0,
  /// Consumers pull over real localhost HTTP/1.1 sockets: long-poll GET
  /// /v1/task/{taskId}/results/{bufferId}/{token} with ack-based frame
  /// retirement and client-side retry (src/exchange/http/).
  kHttp = 1,
};

/// Network characteristics of the shuffle fabric. latency/bytes_per_second
/// drive the simulated cost model of the in-process transport; the http_*
/// knobs tune the real socket transport.
struct NetworkConfig {
  int64_t latency_micros = 50;
  int64_t bytes_per_second = 4LL << 30;  // 4 GB/s
  TransportMode transport = TransportMode::kInProcess;
  /// Server-side long-poll wait when a buffer has no data yet. Kept shorter
  /// than the executor's max park backoff so blocked drivers stay lively.
  int64_t http_long_poll_micros = 10'000;
  /// Maximum frame bytes returned by one GET (at least one frame always).
  int64_t http_response_max_bytes = 1 << 20;
  /// Client retry policy: attempts beyond the first on timeout/5xx/transport
  /// errors, with exponential backoff starting at http_retry_backoff_micros.
  int http_max_retries = 5;
  int64_t http_retry_backoff_micros = 500;
  /// Client socket receive timeout (must exceed the long-poll wait).
  int64_t http_io_timeout_micros = 2'000'000;
};

/// A bounded single-producer buffer for one (producer task, consumer
/// partition) pair, holding pages in serialized form (§IV-E2 "pages
/// transferred in serialized form"): producers enqueue encoded frames, and
/// capacity, utilization, and backpressure are all charged in actual wire
/// bytes rather than in-memory size estimates. Producers block
/// (backpressure) when the buffer is full.
///
/// Consumption follows the paper's token protocol ("the server retains data
/// until the client requests the next segment using a token"): frames carry
/// monotonically increasing sequence tokens, GetBatch(token) retires —
/// frees — everything below `token` and returns the frames at and after it,
/// so a lost response is recovered by re-requesting the same un-acked token.
/// Poll() is the in-process shortcut: fetch + immediate ack of one frame.
class ExchangeBuffer {
 public:
  /// `wire_total`/`raw_total`, when set, receive every enqueued frame's
  /// wire/pre-compression bytes (the manager's cumulative serde counters,
  /// which must survive buffer teardown at query end). `generation` stamps
  /// the producer incarnation (ISSUE 7); with `retain_for_replay` set,
  /// acked frames are kept (capacity still freed) so a replacement consumer
  /// can re-fetch the stream from token 0 after a task retry.
  explicit ExchangeBuffer(int64_t capacity_bytes,
                          std::atomic<int64_t>* wire_total = nullptr,
                          std::atomic<int64_t>* raw_total = nullptr,
                          int generation = 0, bool retain_for_replay = false)
      : capacity_bytes_(capacity_bytes),
        generation_(generation),
        retain_(retain_for_replay),
        wire_total_(wire_total),
        raw_total_(raw_total) {}

  /// Producer side: returns false when the buffer is full (§IV-E2 "full
  /// output buffers cause split execution to stall"). Copies the frame only
  /// when it is admitted, so a rejected enqueue is cheap to retry. Unacked
  /// (in-flight) frames still occupy capacity until the consumer's next
  /// token retires them.
  bool TryEnqueue(const PageCodec::Frame& frame);
  void NoMorePages();

  /// Consumer side (in-process transport): nullopt when empty; *finished
  /// set when the stream ended and everything was consumed. Equivalent to
  /// GetBatch of one frame with an immediate ack.
  std::optional<PageCodec::Frame> Poll(bool* finished);

  /// One long-poll response worth of frames.
  struct FrameBatch {
    std::vector<PageCodec::Frame> frames;
    int64_t token = 0;       // sequence of frames.front() (== requested)
    int64_t next_token = 0;  // token the client must request (ack) next
    bool complete = false;   // stream ended and nothing remains after this
  };

  /// Consumer side (HTTP transport): acks — retires, freeing capacity —
  /// every frame below `token`, then returns frames starting at `token`
  /// up to `max_bytes` (always at least one when available), waiting up to
  /// `wait_micros` for data when none is queued. A repeated request for an
  /// un-acked token returns identical frames (idempotent re-fetch); an
  /// already-retired or not-yet-produced token is InvalidArgument.
  Result<FrameBatch> GetBatch(int64_t token, int64_t max_bytes,
                              int64_t wait_micros);

  /// Fraction of capacity in use (drives concurrency reduction, §IV-E2).
  double utilization() const;
  bool finished() const;
  int64_t buffered_bytes() const;
  /// Bytes handed to a consumer via GetBatch but not yet acked.
  int64_t inflight_bytes() const;
  /// Bytes of acked frames kept for replay (0 unless retain_for_replay).
  int64_t retained_bytes() const;
  int generation() const { return generation_; }
  int64_t total_bytes_sent() const { return total_bytes_.load(); }
  int64_t total_raw_bytes_sent() const { return total_raw_bytes_.load(); }
  int64_t total_rows_sent() const { return total_rows_.load(); }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;  // notified on enqueue / NoMorePages
  std::deque<PageCodec::Frame> frames_;
  int64_t base_token_ = 0;   // sequence token of frames_.front()
  int64_t acked_token_ = 0;  // lowest un-acked token (== base_ w/o retain)
  int64_t sent_token_ = 0;   // highest next_token ever returned by GetBatch
  int64_t buffered_bytes_ = 0;
  int64_t retained_bytes_ = 0;  // acked-but-kept bytes (retain mode)
  int64_t capacity_bytes_;
  int generation_ = 0;
  bool retain_ = false;
  bool no_more_ = false;
  std::atomic<int64_t> total_bytes_{0};
  std::atomic<int64_t> total_raw_bytes_{0};
  std::atomic<int64_t> total_rows_{0};
  std::atomic<int64_t>* wire_total_;
  std::atomic<int64_t>* raw_total_;
};

/// Identifies one directed stream: query/fragment/task on the producing
/// side, partition on the consuming side.
struct StreamId {
  std::string query_id;
  int fragment = 0;
  int task = 0;
  int partition = 0;

  bool operator<(const StreamId& other) const {
    return std::tie(query_id, fragment, task, partition) <
           std::tie(other.query_id, other.fragment, other.task,
                    other.partition);
  }
};

/// Process-wide shuffle registry: producers create their output buffers up
/// front; consumers look them up by stream id (in-process transport) or pull
/// them over HTTP from the owning worker's exchange server (kHttp), routed
/// via the task-endpoint registry. Owns the wire codec every stream shares;
/// sinks encode with it and sources decode with it.
class ExchangeManager {
 public:
  /// Default wire options: preserve encodings (§V-E), LZ4, checksummed.
  static PageCodecOptions DefaultCodecOptions() {
    return PageCodecOptions{PageCompression::kLz4,
                            /*preserve_encodings=*/true,
                            /*checksum=*/true};
  }

  explicit ExchangeManager(NetworkConfig network = {},
                           PageCodecOptions codec_options =
                               DefaultCodecOptions())
      : network_(network), codec_(codec_options) {}

  const NetworkConfig& network() const { return network_; }
  const PageCodec& codec() const { return codec_; }

  /// Creates buffers for all partitions of (query, fragment, task) stamped
  /// with `generation`. Existing buffers of the same-or-newer generation
  /// are left untouched (idempotent create); an older generation's buffers
  /// are replaced (a recovery re-creation on the same worker, ISSUE 7).
  void CreateOutputBuffers(const std::string& query_id, int fragment,
                           int task, int partitions, int64_t capacity_bytes,
                           int generation = 0);

  /// Drops every partition buffer of one task (recovery supersede).
  void RemoveTaskBuffers(const std::string& query_id, int fragment, int task);

  /// Buffer for a stream; nullptr if not (yet) created.
  std::shared_ptr<ExchangeBuffer> GetBuffer(const StreamId& id) const;

  /// Maximum output-buffer utilization across partitions of one task.
  double OutputUtilization(const std::string& query_id, int fragment,
                           int task) const;

  /// Drops all buffers (and task endpoints) of a query (cleanup / kill).
  void RemoveQuery(const std::string& query_id);

  /// Drops one stream's buffer (the client's DELETE teardown). Idempotent.
  void RemoveStream(const StreamId& id);

  /// kHttp routing: the coordinator records which worker's exchange server
  /// owns the output buffers of (query, fragment, task) and under which
  /// producer generation; consumers resolve both before opening a client.
  struct TaskEndpoint {
    int port = -1;      // -1 when unknown (not yet launched)
    int generation = 0;
  };
  void RegisterTaskEndpoint(const std::string& query_id, int fragment,
                            int task, int port, int generation = 0);
  int LookupTaskEndpoint(const std::string& query_id, int fragment,
                         int task) const;
  TaskEndpoint LookupTaskEndpointInfo(const std::string& query_id,
                                      int fragment, int task) const;

  /// Applies the simulated network cost for transferring `bytes` (actual
  /// wire bytes of a frame, not an in-memory estimate). Sleeps outside any
  /// lock — concurrent transfers must overlap, not serialize.
  void SimulateTransfer(int64_t bytes) const;

  /// Byte accounting only (the HTTP transport pays real socket costs).
  void RecordTransfer(int64_t bytes) const {
    transferred_bytes_.fetch_add(bytes);
  }

  /// Bytes currently buffered across every stream of every query.
  int64_t TotalBufferedBytes() const;

  /// Bytes handed to consumers but not yet acked, across every stream.
  int64_t TotalInflightBytes() const;

  /// Acked-but-retained replay bytes across every stream (retain mode).
  int64_t TotalRetainedBytes() const;

  /// When set, buffers created from now on retain acked frames for replay
  /// (task recovery, ISSUE 7). Sticky per manager; workers flip it on the
  /// first create request that asks for it, before any sink runs.
  void set_retain_for_replay(bool retain) { retain_for_replay_.store(retain); }
  bool retain_for_replay() const { return retain_for_replay_.load(); }

  /// Cumulative bytes moved through the transport since startup.
  int64_t transferred_bytes() const { return transferred_bytes_.load(); }

  /// Cumulative serialized (wire) bytes enqueued across all streams, and
  /// the pre-compression payload bytes behind them. raw/wire is the fleet
  /// compression ratio.
  int64_t serialized_wire_bytes() const { return serialized_wire_.load(); }
  int64_t serialized_raw_bytes() const { return serialized_raw_.load(); }

  /// HTTP transport counters (presto_exchange_http_* gauges).
  void RecordHttpRequest() { http_requests_.fetch_add(1); }
  void RecordHttpRetry() { http_retries_.fetch_add(1); }
  int64_t http_requests() const { return http_requests_.load(); }
  int64_t http_retries() const { return http_retries_.load(); }

  /// Trace-context resolution for `x-presto-trace` headers: the engine
  /// installs its registry so HTTP services/clients can attach spans to the
  /// right query recorder. May stay null (no tracing).
  void SetTraceRegistry(TraceRegistry* traces) { traces_.store(traces); }
  TraceRegistry* traces() const { return traces_.load(); }

  /// Latency histograms (seconds), installed by the engine: server-side
  /// long-poll wait and client-side HTTP request round trips. May be null.
  void set_poll_wait_histogram(Histogram* histogram) {
    poll_wait_histogram_.store(histogram);
  }
  Histogram* poll_wait_histogram() const {
    return poll_wait_histogram_.load();
  }
  void set_http_request_histogram(Histogram* histogram) {
    http_request_histogram_.store(histogram);
  }
  Histogram* http_request_histogram() const {
    return http_request_histogram_.load();
  }

 private:
  NetworkConfig network_;
  PageCodec codec_;
  mutable std::mutex mu_;
  std::map<StreamId, std::shared_ptr<ExchangeBuffer>> buffers_;
  /// (query, fragment, task) -> endpoint, keyed as StreamId partition 0.
  std::map<StreamId, TaskEndpoint> endpoints_;
  std::atomic<bool> retain_for_replay_{false};
  mutable std::atomic<int64_t> transferred_bytes_{0};
  std::atomic<int64_t> serialized_wire_{0};
  std::atomic<int64_t> serialized_raw_{0};
  std::atomic<int64_t> http_requests_{0};
  std::atomic<int64_t> http_retries_{0};
  std::atomic<TraceRegistry*> traces_{nullptr};
  std::atomic<Histogram*> poll_wait_histogram_{nullptr};
  std::atomic<Histogram*> http_request_histogram_{nullptr};
};

}  // namespace presto

#endif  // PRESTOCPP_EXCHANGE_EXCHANGE_H_
