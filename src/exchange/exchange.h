#ifndef PRESTOCPP_EXCHANGE_EXCHANGE_H_
#define PRESTOCPP_EXCHANGE_EXCHANGE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "vector/page_codec.h"

namespace presto {

/// Simulated network characteristics applied on the consumer side of every
/// remote page transfer. Stands in for the HTTP long-polling transport of
/// §IV-E2; latency/bandwidth let benchmarks model slow clients and
/// cross-rack links.
struct NetworkConfig {
  int64_t latency_micros = 50;
  int64_t bytes_per_second = 4LL << 30;  // 4 GB/s
};

/// A bounded single-producer buffer for one (producer task, consumer
/// partition) pair, holding pages in serialized form (§IV-E2 "pages
/// transferred in serialized form"): producers enqueue encoded frames, and
/// capacity, utilization, and backpressure are all charged in actual wire
/// bytes rather than in-memory size estimates. Producers block
/// (backpressure) when the buffer is full; consumers acknowledge implicitly
/// by dequeuing (the paper's token protocol: "the server retains data until
/// the client requests the next segment using a token").
class ExchangeBuffer {
 public:
  /// `wire_total`/`raw_total`, when set, receive every enqueued frame's
  /// wire/pre-compression bytes (the manager's cumulative serde counters,
  /// which must survive buffer teardown at query end).
  explicit ExchangeBuffer(int64_t capacity_bytes,
                          std::atomic<int64_t>* wire_total = nullptr,
                          std::atomic<int64_t>* raw_total = nullptr)
      : capacity_bytes_(capacity_bytes),
        wire_total_(wire_total),
        raw_total_(raw_total) {}

  /// Producer side: returns false when the buffer is full (§IV-E2 "full
  /// output buffers cause split execution to stall"). Copies the frame only
  /// when it is admitted, so a rejected enqueue is cheap to retry.
  bool TryEnqueue(const PageCodec::Frame& frame);
  void NoMorePages();

  /// Consumer side: nullopt when empty; *finished set when the stream ended
  /// and everything was consumed.
  std::optional<PageCodec::Frame> Poll(bool* finished);

  /// Fraction of capacity in use (drives concurrency reduction, §IV-E2).
  double utilization() const;
  bool finished() const;
  int64_t buffered_bytes() const;
  int64_t total_bytes_sent() const { return total_bytes_.load(); }
  int64_t total_raw_bytes_sent() const { return total_raw_bytes_.load(); }
  int64_t total_rows_sent() const { return total_rows_.load(); }

 private:
  mutable std::mutex mu_;
  std::deque<PageCodec::Frame> frames_;
  int64_t buffered_bytes_ = 0;
  int64_t capacity_bytes_;
  bool no_more_ = false;
  std::atomic<int64_t> total_bytes_{0};
  std::atomic<int64_t> total_raw_bytes_{0};
  std::atomic<int64_t> total_rows_{0};
  std::atomic<int64_t>* wire_total_;
  std::atomic<int64_t>* raw_total_;
};

/// Identifies one directed stream: query/fragment/task on the producing
/// side, partition on the consuming side.
struct StreamId {
  std::string query_id;
  int fragment = 0;
  int task = 0;
  int partition = 0;

  bool operator<(const StreamId& other) const {
    return std::tie(query_id, fragment, task, partition) <
           std::tie(other.query_id, other.fragment, other.task,
                    other.partition);
  }
};

/// Process-wide shuffle registry: producers create their output buffers up
/// front; consumers look them up by stream id. Replaces Presto's HTTP
/// exchange endpoints. Owns the wire codec every stream shares; sinks
/// encode with it and sources decode with it.
class ExchangeManager {
 public:
  /// Default wire options: preserve encodings (§V-E), LZ4, checksummed.
  static PageCodecOptions DefaultCodecOptions() {
    return PageCodecOptions{PageCompression::kLz4,
                            /*preserve_encodings=*/true,
                            /*checksum=*/true};
  }

  explicit ExchangeManager(NetworkConfig network = {},
                           PageCodecOptions codec_options =
                               DefaultCodecOptions())
      : network_(network), codec_(codec_options) {}

  const NetworkConfig& network() const { return network_; }
  const PageCodec& codec() const { return codec_; }

  /// Creates buffers for all partitions of (query, fragment, task).
  void CreateOutputBuffers(const std::string& query_id, int fragment,
                           int task, int partitions, int64_t capacity_bytes);

  /// Buffer for a stream; nullptr if not (yet) created.
  std::shared_ptr<ExchangeBuffer> GetBuffer(const StreamId& id) const;

  /// Maximum output-buffer utilization across partitions of one task.
  double OutputUtilization(const std::string& query_id, int fragment,
                           int task) const;

  /// Drops all buffers of a query (cleanup / kill).
  void RemoveQuery(const std::string& query_id);

  /// Applies the simulated network cost for transferring `bytes` (actual
  /// wire bytes of a frame, not an in-memory estimate).
  void SimulateTransfer(int64_t bytes) const;

  /// Bytes currently buffered across every stream of every query.
  int64_t TotalBufferedBytes() const;

  /// Cumulative bytes moved through SimulateTransfer since startup.
  int64_t transferred_bytes() const { return transferred_bytes_.load(); }

  /// Cumulative serialized (wire) bytes enqueued across all streams, and
  /// the pre-compression payload bytes behind them. raw/wire is the fleet
  /// compression ratio.
  int64_t serialized_wire_bytes() const { return serialized_wire_.load(); }
  int64_t serialized_raw_bytes() const { return serialized_raw_.load(); }

 private:
  NetworkConfig network_;
  PageCodec codec_;
  mutable std::mutex mu_;
  std::map<StreamId, std::shared_ptr<ExchangeBuffer>> buffers_;
  mutable std::atomic<int64_t> transferred_bytes_{0};
  std::atomic<int64_t> serialized_wire_{0};
  std::atomic<int64_t> serialized_raw_{0};
};

}  // namespace presto

#endif  // PRESTOCPP_EXCHANGE_EXCHANGE_H_
