#ifndef PRESTOCPP_EXCHANGE_EXCHANGE_H_
#define PRESTOCPP_EXCHANGE_EXCHANGE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "vector/page.h"

namespace presto {

/// Simulated network characteristics applied on the consumer side of every
/// remote page transfer. Stands in for the HTTP long-polling transport of
/// §IV-E2; latency/bandwidth let benchmarks model slow clients and
/// cross-rack links.
struct NetworkConfig {
  int64_t latency_micros = 50;
  int64_t bytes_per_second = 4LL << 30;  // 4 GB/s
};

/// A bounded single-producer buffer for one (producer task, consumer
/// partition) pair. Producers block (backpressure) when the buffer is full;
/// consumers acknowledge implicitly by dequeuing (the paper's token
/// protocol: "the server retains data until the client requests the next
/// segment using a token").
class ExchangeBuffer {
 public:
  explicit ExchangeBuffer(int64_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  /// Producer side: returns false when the buffer is full (§IV-E2 "full
  /// output buffers cause split execution to stall").
  bool TryEnqueue(Page page);
  void NoMorePages();

  /// Consumer side: nullopt when empty; *finished set when the stream ended
  /// and everything was consumed.
  std::optional<Page> Poll(bool* finished);

  /// Fraction of capacity in use (drives concurrency reduction, §IV-E2).
  double utilization() const;
  bool finished() const;
  int64_t buffered_bytes() const;
  int64_t total_bytes_sent() const { return total_bytes_.load(); }
  int64_t total_rows_sent() const { return total_rows_.load(); }

 private:
  mutable std::mutex mu_;
  std::deque<Page> pages_;
  int64_t buffered_bytes_ = 0;
  int64_t capacity_bytes_;
  bool no_more_ = false;
  std::atomic<int64_t> total_bytes_{0};
  std::atomic<int64_t> total_rows_{0};
};

/// Identifies one directed stream: query/fragment/task on the producing
/// side, partition on the consuming side.
struct StreamId {
  std::string query_id;
  int fragment = 0;
  int task = 0;
  int partition = 0;

  bool operator<(const StreamId& other) const {
    return std::tie(query_id, fragment, task, partition) <
           std::tie(other.query_id, other.fragment, other.task,
                    other.partition);
  }
};

/// Process-wide shuffle registry: producers create their output buffers up
/// front; consumers look them up by stream id. Replaces Presto's HTTP
/// exchange endpoints.
class ExchangeManager {
 public:
  explicit ExchangeManager(NetworkConfig network = {}) : network_(network) {}

  const NetworkConfig& network() const { return network_; }

  /// Creates buffers for all partitions of (query, fragment, task).
  void CreateOutputBuffers(const std::string& query_id, int fragment,
                           int task, int partitions, int64_t capacity_bytes);

  /// Buffer for a stream; nullptr if not (yet) created.
  std::shared_ptr<ExchangeBuffer> GetBuffer(const StreamId& id) const;

  /// Maximum output-buffer utilization across partitions of one task.
  double OutputUtilization(const std::string& query_id, int fragment,
                           int task) const;

  /// Drops all buffers of a query (cleanup / kill).
  void RemoveQuery(const std::string& query_id);

  /// Applies the simulated network cost for transferring `bytes`.
  void SimulateTransfer(int64_t bytes) const;

  /// Bytes currently buffered across every stream of every query.
  int64_t TotalBufferedBytes() const;

  /// Cumulative bytes moved through SimulateTransfer since startup.
  int64_t transferred_bytes() const { return transferred_bytes_.load(); }

 private:
  NetworkConfig network_;
  mutable std::mutex mu_;
  std::map<StreamId, std::shared_ptr<ExchangeBuffer>> buffers_;
  mutable std::atomic<int64_t> transferred_bytes_{0};
};

}  // namespace presto

#endif  // PRESTOCPP_EXCHANGE_EXCHANGE_H_
