#ifndef PRESTOCPP_EXCHANGE_HTTP_HTTP_IO_H_
#define PRESTOCPP_EXCHANGE_HTTP_HTTP_IO_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/status.h"

namespace presto {

/// Minimal HTTP/1.1 message types for the exchange transport. Header names
/// are stored lowercased; bodies are length-delimited via Content-Length
/// (no chunked encoding — both ends are ours). Inbound messages are
/// bounded: header lines are capped at 64 KiB, header count at 128, and
/// bodies at 256 MiB; violations parse as kResourceExhausted, which
/// HttpServer answers with 413 (body) or 431 (line/header count) before
/// dropping the connection.
struct HttpRequest {
  std::string method;  // GET / DELETE / ...
  std::string path;    // absolute path, e.g. /v1/task/q.1.0/results/2/5
  std::map<std::string, std::string> headers;
  std::string body;

  std::string header(const std::string& name) const {
    auto it = headers.find(name);
    return it == headers.end() ? "" : it->second;
  }
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::map<std::string, std::string> headers;
  std::string body;

  std::string header(const std::string& name) const {
    auto it = headers.find(name);
    return it == headers.end() ? "" : it->second;
  }
};

/// One TCP connection speaking HTTP/1.1 with keep-alive, wrapping a POSIX
/// socket fd with a read buffer. All reads honor the fd's SO_RCVTIMEO;
/// errors and timeouts surface as IOError, never exceptions or crashes.
class HttpConnection {
 public:
  /// Takes ownership of `fd` (closed on destruction).
  explicit HttpConnection(int fd) : fd_(fd) {}
  ~HttpConnection();

  HttpConnection(const HttpConnection&) = delete;
  HttpConnection& operator=(const HttpConnection&) = delete;

  /// Receive timeout for subsequent reads; 0 disables (block forever).
  Status SetRecvTimeout(int64_t micros);

  /// Server side: reads one request. nullopt means the socket timed out
  /// while idle (no request bytes arrived yet) — the caller may keep
  /// waiting. A timeout mid-request, EOF, or a malformed message is an
  /// IOError (the connection should be dropped).
  Result<std::optional<HttpRequest>> ReadRequest();

  /// Client side: reads one response (timeout/EOF/parse error -> IOError).
  Result<HttpResponse> ReadResponse();

  Status WriteRequest(const HttpRequest& request);
  Status WriteResponse(const HttpResponse& response);

  /// Unblocks any reader/writer on another thread (TCP half-close both
  /// directions); the fd stays open until destruction.
  void Shutdown();

  int fd() const { return fd_; }

 private:
  // Reads more bytes into buffer_. *timed_out distinguishes a recv timeout
  // from EOF/error (both of which return non-OK).
  Status FillMore(bool* timed_out);
  Result<std::string> ReadLine(bool* idle_timeout);
  Result<std::string> ReadExact(size_t n);
  // Parses "name: value" lines until the blank line; lowercases names and
  // extracts content-length.
  Status ReadHeaderBlock(std::map<std::string, std::string>* headers,
                         size_t* content_length);
  Status WriteAll(const std::string& data);

  int fd_;
  std::string buffer_;
  size_t pos_ = 0;
};

/// Creates a listening TCP socket on 127.0.0.1 with an ephemeral port.
/// Returns the fd; *port receives the bound port.
Result<int> ListenOnLoopback(int* port);

/// Connects to 127.0.0.1:`port` and applies `recv_timeout_micros`.
Result<std::unique_ptr<HttpConnection>> ConnectToLoopback(
    int port, int64_t recv_timeout_micros);

}  // namespace presto

#endif  // PRESTOCPP_EXCHANGE_HTTP_HTTP_IO_H_
