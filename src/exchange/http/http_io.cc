#include "exchange/http/http_io.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace presto {

namespace {

// Caps on a single message so a garbage or hostile peer cannot balloon the
// read buffer: request/status/header line length, header count, and body
// size. Violations surface as kResourceExhausted (vs kIOError for malformed
// framing) so the server can answer 431/413 instead of dropping silently.
constexpr size_t kMaxLineBytes = 64 << 10;
constexpr size_t kMaxHeaderCount = 128;
constexpr size_t kMaxBodyBytes = 256u << 20;

std::string ToLower(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return s;
}

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t");
  return s.substr(begin, end - begin + 1);
}

Status ErrnoError(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

HttpConnection::~HttpConnection() {
  if (fd_ >= 0) ::close(fd_);
}

Status HttpConnection::SetRecvTimeout(int64_t micros) {
  struct timeval tv;
  tv.tv_sec = micros / 1000000;
  tv.tv_usec = micros % 1000000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return ErrnoError("setsockopt(SO_RCVTIMEO)");
  }
  return Status::OK();
}

void HttpConnection::Shutdown() { ::shutdown(fd_, SHUT_RDWR); }

Status HttpConnection::FillMore(bool* timed_out) {
  *timed_out = false;
  // Compact consumed bytes so the buffer does not grow across keep-alive
  // requests.
  if (pos_ > 0) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  char chunk[8192];
  for (;;) {
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<size_t>(n));
      return Status::OK();
    }
    if (n == 0) return Status::IOError("connection closed by peer");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      *timed_out = true;
      return Status::IOError("recv timeout");
    }
    return ErrnoError("recv");
  }
}

Result<std::string> HttpConnection::ReadLine(bool* idle_timeout) {
  if (idle_timeout != nullptr) *idle_timeout = false;
  for (;;) {
    size_t eol = buffer_.find("\r\n", pos_);
    if (eol != std::string::npos) {
      std::string line = buffer_.substr(pos_, eol - pos_);
      pos_ = eol + 2;
      return line;
    }
    if (buffer_.size() - pos_ > kMaxLineBytes) {
      return Status::ResourceExhausted("http header line exceeds " +
                                       std::to_string(kMaxLineBytes) +
                                       " bytes");
    }
    bool idle = buffer_.size() == pos_;
    bool timed_out = false;
    Status status = FillMore(&timed_out);
    if (!status.ok()) {
      if (timed_out && idle && idle_timeout != nullptr) *idle_timeout = true;
      return status;
    }
  }
}

Result<std::string> HttpConnection::ReadExact(size_t n) {
  while (buffer_.size() - pos_ < n) {
    bool timed_out = false;
    PRESTO_RETURN_IF_ERROR(FillMore(&timed_out));
  }
  std::string data = buffer_.substr(pos_, n);
  pos_ += n;
  return data;
}

Status HttpConnection::ReadHeaderBlock(
    std::map<std::string, std::string>* headers, size_t* content_length) {
  *content_length = 0;
  for (;;) {
    auto line = ReadLine(nullptr);
    if (!line.ok()) return line.status();
    if (line->empty()) break;
    size_t colon = line->find(':');
    if (colon == std::string::npos) {
      return Status::IOError("malformed http header: " + *line);
    }
    std::string name = ToLower(Trim(line->substr(0, colon)));
    std::string value = Trim(line->substr(colon + 1));
    (*headers)[name] = value;
    if (headers->size() > kMaxHeaderCount) {
      return Status::ResourceExhausted("more than " +
                                       std::to_string(kMaxHeaderCount) +
                                       " http headers");
    }
  }
  auto it = headers->find("content-length");
  if (it != headers->end()) {
    errno = 0;
    char* end = nullptr;
    long long parsed = std::strtoll(it->second.c_str(), &end, 10);
    if (errno != 0 || end == it->second.c_str() || *end != '\0' ||
        parsed < 0) {
      return Status::IOError("bad content-length: " + it->second);
    }
    if (static_cast<size_t>(parsed) > kMaxBodyBytes) {
      return Status::ResourceExhausted("http body of " + it->second +
                                       " bytes exceeds " +
                                       std::to_string(kMaxBodyBytes));
    }
    *content_length = static_cast<size_t>(parsed);
  }
  return Status::OK();
}

Result<std::optional<HttpRequest>> HttpConnection::ReadRequest() {
  bool idle = false;
  auto line = ReadLine(&idle);
  if (!line.ok()) {
    if (idle) return std::optional<HttpRequest>();  // idle timeout: no data
    return line.status();
  }
  HttpRequest request;
  size_t sp1 = line->find(' ');
  size_t sp2 = line->rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1 ||
      line->compare(sp2 + 1, std::string::npos, "HTTP/1.1") != 0) {
    return Status::IOError("malformed request line: " + *line);
  }
  request.method = line->substr(0, sp1);
  request.path = line->substr(sp1 + 1, sp2 - sp1 - 1);
  size_t content_length = 0;
  PRESTO_RETURN_IF_ERROR(ReadHeaderBlock(&request.headers, &content_length));
  if (content_length > 0) {
    PRESTO_ASSIGN_OR_RETURN(request.body, ReadExact(content_length));
  }
  return std::optional<HttpRequest>(std::move(request));
}

Result<HttpResponse> HttpConnection::ReadResponse() {
  auto line = ReadLine(nullptr);
  if (!line.ok()) return line.status();
  HttpResponse response;
  // "HTTP/1.1 <code> <reason>"
  size_t sp1 = line->find(' ');
  if (line->compare(0, 8, "HTTP/1.1") != 0 || sp1 == std::string::npos) {
    return Status::IOError("malformed status line: " + *line);
  }
  size_t sp2 = line->find(' ', sp1 + 1);
  std::string code = line->substr(
      sp1 + 1, sp2 == std::string::npos ? std::string::npos : sp2 - sp1 - 1);
  errno = 0;
  char* end = nullptr;
  long parsed = std::strtol(code.c_str(), &end, 10);
  if (errno != 0 || end == code.c_str() || *end != '\0' || parsed < 100 ||
      parsed > 599) {
    return Status::IOError("malformed status code: " + *line);
  }
  response.status = static_cast<int>(parsed);
  if (sp2 != std::string::npos) response.reason = line->substr(sp2 + 1);
  size_t content_length = 0;
  PRESTO_RETURN_IF_ERROR(ReadHeaderBlock(&response.headers,
                                         &content_length));
  if (content_length > 0) {
    PRESTO_ASSIGN_OR_RETURN(response.body, ReadExact(content_length));
  }
  return response;
}

Status HttpConnection::WriteAll(const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status HttpConnection::WriteRequest(const HttpRequest& request) {
  std::string out = request.method + " " + request.path + " HTTP/1.1\r\n";
  out += "host: 127.0.0.1\r\nconnection: keep-alive\r\n";
  for (const auto& [name, value] : request.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "content-length: " + std::to_string(request.body.size()) + "\r\n\r\n";
  out += request.body;
  return WriteAll(out);
}

Status HttpConnection::WriteResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    response.reason + "\r\n";
  out += "connection: keep-alive\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "content-length: " + std::to_string(response.body.size()) +
         "\r\n\r\n";
  out += response.body;
  return WriteAll(out);
}

Result<int> ListenOnLoopback(int* port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoError("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status = ErrnoError("bind");
    ::close(fd);
    return status;
  }
  if (::listen(fd, 128) != 0) {
    Status status = ErrnoError("listen");
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    Status status = ErrnoError("getsockname");
    ::close(fd);
    return status;
  }
  *port = ntohs(addr.sin_port);
  return fd;
}

Result<std::unique_ptr<HttpConnection>> ConnectToLoopback(
    int port, int64_t recv_timeout_micros) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoError("socket");
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  for (;;) {
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      break;
    }
    if (errno == EINTR) continue;
    Status status = ErrnoError("connect to 127.0.0.1:" +
                               std::to_string(port));
    ::close(fd);
    return status;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  auto conn = std::make_unique<HttpConnection>(fd);
  if (recv_timeout_micros > 0) {
    PRESTO_RETURN_IF_ERROR(conn->SetRecvTimeout(recv_timeout_micros));
  }
  return conn;
}

}  // namespace presto
