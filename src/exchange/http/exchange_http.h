#ifndef PRESTOCPP_EXCHANGE_HTTP_EXCHANGE_HTTP_H_
#define PRESTOCPP_EXCHANGE_HTTP_EXCHANGE_HTTP_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "exchange/exchange.h"
#include "exchange/http/http_server.h"

namespace presto {

/// Production-Presto-shaped exchange endpoints served over a worker-local
/// HTTP server (§IV-E2). Task ids follow Presto's `query.stage.task` shape.
///
///   GET /v1/task/{query}.{fragment}.{task}/results/{partition}/{token}
///     Long-polls the stream's buffer: acks (retires) every frame below
///     `token`, then returns the next batch of PGF1 frames concatenated in
///     the body. Headers:
///       x-presto-page-token        token of the first returned frame
///       x-presto-page-next-token   token to request (and thereby ack) next
///       x-presto-frame-count       frames in the body (0 on poll timeout)
///       x-presto-buffer-complete   "true" when the stream has ended and
///                                  this response reaches its end
///     An empty body with next-token == token means the long-poll timed
///     out with no data; the client re-requests the same token. Request
///     header x-presto-max-wait-micros caps the server-side wait (bounded
///     by NetworkConfig.http_long_poll_micros).
///
///   DELETE /v1/task/{query}.{fragment}.{task}/results/{partition}
///     Tears the buffer down (204; idempotent).
///
/// 404 = unknown buffer, 400 = bad path/token, 500 = injected server fault
/// (exchange.http_server) — the client treats 5xx as retryable.
class ExchangeHttpService {
 public:
  explicit ExchangeHttpService(ExchangeManager* exchange)
      : exchange_(exchange),
        server_([this](const HttpRequest& request) {
          return Handle(request);
        }) {}

  Status Start() { return server_.Start(); }
  void Stop() { server_.Stop(); }
  int port() const { return server_.port(); }

  /// Exposed for protocol tests; normal traffic arrives via the server.
  HttpResponse Handle(const HttpRequest& request);

 private:
  ExchangeManager* exchange_;
  HttpServer server_;
};

/// Pulls one stream over HTTP with the token/ack protocol and bounded
/// exponential-backoff retry: timeouts, connection errors, and 5xx are
/// retried with the same token, which is idempotent because the server
/// retains every un-acked frame. Fault points exchange.http_send /
/// exchange.http_recv model a request lost before send and a response lost
/// in transit.
class ExchangeHttpClient {
 public:
  ExchangeHttpClient(ExchangeManager* exchange, int port, StreamId stream)
      : exchange_(exchange), port_(port), stream_(std::move(stream)) {}

  struct FetchResult {
    std::string body;        // concatenated PGF1 frames
    int64_t frame_count = 0;
    bool complete = false;   // stream fully consumed; DeleteBuffer() next
  };

  /// One long-poll GET with the current token. Advances the token past the
  /// returned frames, so the next Fetch acknowledges them. An empty body
  /// with complete=false is a long-poll timeout (caller retries later).
  Result<FetchResult> Fetch();

  /// Buffer teardown after a complete fetch (or query abort). Idempotent;
  /// 404 (already gone) counts as success.
  Status DeleteBuffer();

  int64_t next_token() const { return next_token_; }

 private:
  /// Sends the request, with retries; only <500 responses are returned.
  Result<HttpResponse> RoundTrip(const HttpRequest& request);

  std::string BasePath() const;

  ExchangeManager* exchange_;
  int port_;
  StreamId stream_;
  int64_t next_token_ = 0;
  std::unique_ptr<HttpConnection> conn_;
};

}  // namespace presto

#endif  // PRESTOCPP_EXCHANGE_HTTP_EXCHANGE_HTTP_H_
