#ifndef PRESTOCPP_EXCHANGE_HTTP_EXCHANGE_HTTP_H_
#define PRESTOCPP_EXCHANGE_HTTP_EXCHANGE_HTTP_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "exchange/exchange.h"
#include "exchange/http/http_server.h"

namespace presto {

class TraceRecorder;

/// Production-Presto-shaped exchange endpoints served over a worker-local
/// HTTP server (§IV-E2). Task ids follow Presto's `query.stage.task` shape.
///
///   GET /v1/task/{query}.{fragment}.{task}/results/{partition}/{token}
///     Long-polls the stream's buffer: acks (retires) every frame below
///     `token`, then returns the next batch of PGF1 frames concatenated in
///     the body. Headers:
///       x-presto-page-token        token of the first returned frame
///       x-presto-page-next-token   token to request (and thereby ack) next
///       x-presto-frame-count       frames in the body (0 on poll timeout)
///       x-presto-buffer-complete   "true" when the stream has ended and
///                                  this response reaches its end
///     An empty body with next-token == token means the long-poll timed
///     out with no data; the client re-requests the same token. Request
///     header x-presto-max-wait-micros caps the server-side wait (bounded
///     by NetworkConfig.http_long_poll_micros).
///
///   DELETE /v1/task/{query}.{fragment}.{task}/results/{partition}
///     Tears the buffer down (204; idempotent).
///
/// 404 = unknown buffer, 400 = bad path/token, 500 = injected server fault
/// (exchange.http_server) — the client treats 5xx as retryable.
///
/// When the manager carries a TraceRegistry, every GET records a
/// producer-side serve span (and token-ack instant) against the stream's
/// query recorder, and echoes `x-presto-trace: {query_id}` so the consumer
/// can correlate its fetch span with this serve span. `worker_id` is the
/// worker hosting the served buffers (trace pid = worker_id + 1).
class ExchangeHttpService {
 public:
  explicit ExchangeHttpService(ExchangeManager* exchange, int worker_id = 0)
      : exchange_(exchange),
        worker_id_(worker_id),
        server_([this](const HttpRequest& request) {
          return Handle(request);
        }) {}

  Status Start() { return server_.Start(); }
  void Stop() { server_.Stop(); }
  int port() const { return server_.port(); }

  /// Exposed for protocol tests; normal traffic arrives via the server.
  HttpResponse Handle(const HttpRequest& request);

 private:
  ExchangeManager* exchange_;
  int worker_id_;
  HttpServer server_;
};

/// Pulls one stream over HTTP with the token/ack protocol and bounded
/// exponential-backoff retry: timeouts, connection errors, and 5xx are
/// retried with the same token, which is idempotent because the server
/// retains every un-acked frame. Fault points exchange.http_send /
/// exchange.http_recv model a request lost before send and a response lost
/// in transit.
class ExchangeHttpClient {
 public:
  /// `generation` is the producer incarnation this consumer binds to
  /// (ISSUE 7): every fetch advertises it and the server refuses to serve
  /// a buffer of a different generation, so a replacement consumer can
  /// never read a stale pre-recovery stream.
  ExchangeHttpClient(ExchangeManager* exchange, int port, StreamId stream,
                     int generation = 0)
      : exchange_(exchange),
        port_(port),
        generation_(generation),
        stream_(std::move(stream)) {}

  /// Attaches the consumer-side trace context: fetches record
  /// "http_fetch"/"http_request" spans and "http_retry" instants against
  /// `trace` at (pid, tid), and every request advertises the query id in
  /// the `x-presto-trace` header. Optional; null disables tracing.
  void SetTraceContext(TraceRecorder* trace, int pid, int64_t tid) {
    trace_ = trace;
    trace_pid_ = pid;
    trace_tid_ = tid;
  }

  struct FetchResult {
    std::string body;        // concatenated PGF1 frames
    int64_t frame_count = 0;
    /// Leading frames of `body` the caller must decode-and-drop: they were
    /// already delivered before a ResetForReplacement re-fetched the stream
    /// from token 0 (duplicate suppression across producer generations).
    int64_t skip_frames = 0;
    bool complete = false;   // stream fully consumed; DeleteBuffer() next
  };

  /// One long-poll GET with the current token. Advances the token past the
  /// returned frames, so the next Fetch acknowledges them. An empty body
  /// with complete=false is a long-poll timeout (caller retries later).
  Result<FetchResult> Fetch();

  /// Buffer teardown after a complete fetch (or query abort). Idempotent;
  /// 404 (already gone) counts as success.
  Status DeleteBuffer();

  /// Re-targets the stream at a replacement producer (ISSUE 7): new port +
  /// generation, token back to 0. Frames already delivered before the
  /// reset are reported as skip_frames on subsequent fetches so the caller
  /// drops them instead of emitting duplicates. `delivered` overrides the
  /// internally tracked count: a caller that may drop a fetched batch
  /// without consuming it (the coordinator's result-fetch loop drops
  /// batches that lose the root-epoch race) must pass the number of frames
  /// it actually committed, or replay would skip frames nobody received.
  /// The default (-1) trusts the internal count, which is correct for
  /// callers that consume every frame Fetch() returns.
  void ResetForReplacement(int port, int generation, int64_t delivered = -1);

  int64_t next_token() const { return next_token_; }
  int port() const { return port_; }
  int generation() const { return generation_; }

 private:
  /// Sends the request, with retries; only <500 responses are returned.
  Result<HttpResponse> RoundTrip(const HttpRequest& request);

  std::string BasePath() const;

  ExchangeManager* exchange_;
  int port_;
  int generation_ = 0;
  StreamId stream_;
  int64_t next_token_ = 0;
  /// Frames actually handed to the caller (fetched minus skipped); the
  /// replay watermark a ResetForReplacement deduplicates against.
  int64_t delivered_frames_ = 0;
  /// Frames at the head of the replayed stream to drop (set by reset).
  int64_t resume_skip_ = 0;
  std::unique_ptr<HttpConnection> conn_;
  TraceRecorder* trace_ = nullptr;  // outlived by the query's lifecycle
  int trace_pid_ = 0;
  int64_t trace_tid_ = 0;
};

}  // namespace presto

#endif  // PRESTOCPP_EXCHANGE_HTTP_EXCHANGE_HTTP_H_
