#include "exchange/http/exchange_http.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "stats/metrics_registry.h"
#include "stats/trace.h"

namespace presto {

namespace {

constexpr char kPageToken[] = "x-presto-page-token";
constexpr char kPageNextToken[] = "x-presto-page-next-token";
constexpr char kFrameCount[] = "x-presto-frame-count";
constexpr char kBufferComplete[] = "x-presto-buffer-complete";
constexpr char kMaxWaitMicros[] = "x-presto-max-wait-micros";
// Producer-generation handshake (task recovery, ISSUE 7): the consumer
// advertises the generation it binds to; the server never serves a buffer
// of a different incarnation.
constexpr char kBufferGeneration[] = "x-presto-buffer-generation";
constexpr char kExpectedGeneration[] = "x-presto-expected-generation";

HttpResponse MakeError(int status, const std::string& reason,
                       const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.reason = reason;
  response.body = message;
  return response;
}

bool ParseInt(const std::string& text, int64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long parsed = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *out = parsed;
  return true;
}

std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> segments;
  size_t begin = 0;
  while (begin <= path.size()) {
    size_t end = path.find('/', begin);
    if (end == std::string::npos) end = path.size();
    if (end > begin) segments.push_back(path.substr(begin, end - begin));
    begin = end + 1;
  }
  return segments;
}

/// Presto task id `query.fragment.task` (query ids contain no '/'; the last
/// two dot-separated fields are numeric).
bool ParseTaskId(const std::string& task_id, std::string* query_id,
                 int64_t* fragment, int64_t* task) {
  size_t dot2 = task_id.rfind('.');
  if (dot2 == std::string::npos || dot2 == 0) return false;
  size_t dot1 = task_id.rfind('.', dot2 - 1);
  if (dot1 == std::string::npos || dot1 == 0) return false;
  if (!ParseInt(task_id.substr(dot1 + 1, dot2 - dot1 - 1), fragment) ||
      !ParseInt(task_id.substr(dot2 + 1), task)) {
    return false;
  }
  *query_id = task_id.substr(0, dot1);
  return true;
}

Status HitFaultPoint(const char* point) {
  if (!FaultInjection::Enabled()) return Status::OK();
  return FaultInjection::Instance().Hit(point);
}

}  // namespace

HttpResponse ExchangeHttpService::Handle(const HttpRequest& request) {
  {
    // Server-side chaos hook: an armed error becomes a 5xx, which clients
    // must absorb through their retry budget.
    Status fault = HitFaultPoint("exchange.http_server");
    if (!fault.ok()) {
      return MakeError(500, "Internal Server Error", fault.message());
    }
  }
  // Expected shape: v1 / task / {taskId} / results / {partition} [/ token]
  std::vector<std::string> segments = SplitPath(request.path);
  if (segments.size() < 5 || segments[0] != "v1" || segments[1] != "task" ||
      segments[3] != "results") {
    return MakeError(404, "Not Found", "unknown path: " + request.path);
  }
  std::string query_id;
  int64_t fragment = 0;
  int64_t task = 0;
  int64_t partition = 0;
  if (!ParseTaskId(segments[2], &query_id, &fragment, &task) ||
      !ParseInt(segments[4], &partition)) {
    return MakeError(400, "Bad Request",
                     "malformed task id or partition: " + request.path);
  }
  StreamId id{query_id, static_cast<int>(fragment), static_cast<int>(task),
              static_cast<int>(partition)};

  if (request.method == "DELETE" && segments.size() == 5) {
    exchange_->RemoveStream(id);
    HttpResponse response;
    response.status = 204;
    response.reason = "No Content";
    return response;
  }
  if (request.method != "GET" || segments.size() != 6) {
    return MakeError(400, "Bad Request",
                     "expected GET .../results/{partition}/{token} or "
                     "DELETE .../results/{partition}");
  }
  int64_t token = 0;
  if (!ParseInt(segments[5], &token) || token < 0) {
    return MakeError(400, "Bad Request", "malformed token: " + segments[5]);
  }
  auto buffer = exchange_->GetBuffer(id);
  int64_t expected_generation = -1;  // -1 = consumer doesn't care
  if (!ParseInt(request.header(kExpectedGeneration), &expected_generation)) {
    expected_generation = -1;
  }
  if (buffer != nullptr && expected_generation >= 0 &&
      buffer->generation() != expected_generation) {
    // Wrong incarnation: a replacement consumer must never read a stale
    // pre-recovery stream (or vice versa). Treat it exactly like an absent
    // buffer: a token-0 fetch polls until the right generation appears.
    buffer = nullptr;
  }
  if (buffer == nullptr) {
    if (token == 0) {
      // Out-of-process startup race: the producer task's create RPC may
      // still be in flight on another worker, so a first fetch (token 0)
      // for an unknown stream means "no data yet", not an error. A
      // non-zero token proves the buffer existed, so absence then is a
      // real buffer-gone.
      HttpResponse response;
      response.headers[kTraceHeader] = query_id;
      response.headers["content-type"] = "application/x-presto-pages";
      response.headers[kPageToken] = "0";
      response.headers[kPageNextToken] = "0";
      response.headers[kFrameCount] = "0";
      response.headers[kBufferComplete] = "false";
      if (expected_generation >= 0) {
        response.headers[kBufferGeneration] =
            std::to_string(expected_generation);
      }
      return response;
    }
    return MakeError(404, "Not Found", "no buffer for stream");
  }
  // Trace context: resolve the stream's recorder (preferring the consumer's
  // advertised id, which matches the buffer's query id in-engine) so this
  // serve span lands next to the producer's sink spans.
  std::shared_ptr<TraceRecorder> trace;
  if (TraceRegistry* traces = exchange_->traces()) {
    std::string trace_id = request.header(kTraceHeader);
    trace = traces->Lookup(trace_id.empty() ? query_id : trace_id);
    if (trace == nullptr && !trace_id.empty()) {
      trace = traces->Lookup(query_id);
    }
  }
  const NetworkConfig& network = exchange_->network();
  int64_t wait_micros = network.http_long_poll_micros;
  int64_t requested_wait = 0;
  if (ParseInt(request.header(kMaxWaitMicros), &requested_wait)) {
    wait_micros = std::clamp<int64_t>(requested_wait, 0, wait_micros);
  }
  int64_t serve_start = trace != nullptr ? trace->NowNanos() : 0;
  auto poll_start = std::chrono::steady_clock::now();
  auto batch =
      buffer->GetBatch(token, network.http_response_max_bytes, wait_micros);
  if (Histogram* poll_wait = exchange_->poll_wait_histogram()) {
    poll_wait->Observe(
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - poll_start)
            .count());
  }
  if (!batch.ok()) {
    return MakeError(400, "Bad Request", batch.status().message());
  }
  if (trace != nullptr) {
    int pid = worker_id_ + 1;
    if (token > 0) {
      trace->RecordInstant("exchange", "token_ack", pid, 0,
                           {{"stream", segments[2] + "/" + segments[4]},
                            {"token", std::to_string(token)}});
    }
    trace->RecordSpan(
        "exchange", "serve_batch", pid, 0, serve_start,
        trace->NowNanos() - serve_start,
        {{"stream", segments[2] + "/" + segments[4]},
         {"token", std::to_string(token)},
         {"frames", std::to_string(batch->frames.size())},
         {"complete", batch->complete ? "true" : "false"}});
  }
  HttpResponse response;
  response.headers[kTraceHeader] = query_id;
  response.headers["content-type"] = "application/x-presto-pages";
  response.headers[kPageToken] = std::to_string(batch->token);
  response.headers[kPageNextToken] = std::to_string(batch->next_token);
  response.headers[kFrameCount] =
      std::to_string(static_cast<int64_t>(batch->frames.size()));
  response.headers[kBufferComplete] = batch->complete ? "true" : "false";
  response.headers[kBufferGeneration] = std::to_string(buffer->generation());
  for (const auto& frame : batch->frames) {
    response.body += frame.bytes;
  }
  return response;
}

std::string ExchangeHttpClient::BasePath() const {
  return "/v1/task/" + stream_.query_id + "." +
         std::to_string(stream_.fragment) + "." +
         std::to_string(stream_.task) + "/results/" +
         std::to_string(stream_.partition);
}

Result<HttpResponse> ExchangeHttpClient::RoundTrip(
    const HttpRequest& request) {
  const NetworkConfig& network = exchange_->network();
  int64_t backoff = std::max<int64_t>(network.http_retry_backoff_micros, 1);
  Status last = Status::IOError("exchange http: no attempt made");
  Histogram* latency = exchange_->http_request_histogram();
  // Each wire attempt gets its own span (+ a retry instant carrying the
  // previous failure), so a retry storm is visible as a run of short failed
  // request spans, not one opaque long fetch.
  auto record_attempt = [&](int64_t start_nanos, auto start_clock,
                            int attempt, const std::string& outcome) {
    if (latency != nullptr) {
      latency->Observe(
          std::chrono::duration_cast<std::chrono::duration<double>>(
              std::chrono::steady_clock::now() - start_clock)
              .count());
    }
    if (trace_ != nullptr) {
      trace_->RecordSpan("exchange", "http_request", trace_pid_, trace_tid_,
                         start_nanos, trace_->NowNanos() - start_nanos,
                         {{"path", request.path},
                          {"attempt", std::to_string(attempt)},
                          {"outcome", outcome}});
    }
  };
  for (int attempt = 0; attempt <= network.http_max_retries; ++attempt) {
    if (attempt > 0) {
      exchange_->RecordHttpRetry();
      if (trace_ != nullptr) {
        trace_->RecordInstant("exchange", "http_retry", trace_pid_,
                              trace_tid_,
                              {{"path", request.path},
                               {"attempt", std::to_string(attempt)},
                               {"error", last.message()}});
      }
      std::this_thread::sleep_for(std::chrono::microseconds(backoff));
      backoff = std::min<int64_t>(backoff * 2, 100'000);
    }
    // Injected send failure: the request never reaches the wire. Drop the
    // connection so the next attempt reconnects, like a real broken socket.
    Status fault = HitFaultPoint("exchange.http_send");
    if (!fault.ok()) {
      conn_.reset();
      last = fault;
      continue;
    }
    if (conn_ == nullptr) {
      auto conn = ConnectToLoopback(port_, network.http_io_timeout_micros);
      if (!conn.ok()) {
        last = conn.status();
        continue;
      }
      conn_ = std::move(*conn);
    }
    exchange_->RecordHttpRequest();
    int64_t attempt_nanos = trace_ != nullptr ? trace_->NowNanos() : 0;
    auto attempt_clock = std::chrono::steady_clock::now();
    Status sent = conn_->WriteRequest(request);
    if (!sent.ok()) {
      record_attempt(attempt_nanos, attempt_clock, attempt, "send_error");
      conn_.reset();
      last = sent;
      continue;
    }
    auto response = conn_->ReadResponse();
    if (!response.ok()) {
      record_attempt(attempt_nanos, attempt_clock, attempt, "recv_error");
      conn_.reset();
      last = response.status();
      continue;
    }
    // Injected receive failure: the response was produced but lost in
    // transit. The token was not advanced, so the retry re-fetches the
    // identical un-acked frames.
    fault = HitFaultPoint("exchange.http_recv");
    if (!fault.ok()) {
      record_attempt(attempt_nanos, attempt_clock, attempt, "recv_lost");
      conn_.reset();
      last = fault;
      continue;
    }
    if (response->status >= 500) {
      record_attempt(attempt_nanos, attempt_clock, attempt,
                     "http_" + std::to_string(response->status));
      last = Status::IOError("exchange http: server error " +
                             std::to_string(response->status) + ": " +
                             response->body);
      continue;
    }
    record_attempt(attempt_nanos, attempt_clock, attempt,
                   "http_" + std::to_string(response->status));
    return std::move(*response);
  }
  return Status::IOError("exchange http: retries exhausted after " +
                         std::to_string(network.http_max_retries + 1) +
                         " attempts; last error: " + last.ToString());
}

Result<ExchangeHttpClient::FetchResult> ExchangeHttpClient::Fetch() {
  HttpRequest request;
  request.method = "GET";
  request.path = BasePath() + "/" + std::to_string(next_token_);
  request.headers[kExpectedGeneration] = std::to_string(generation_);
  if (trace_ != nullptr) request.headers[kTraceHeader] = stream_.query_id;
  int64_t fetch_start = trace_ != nullptr ? trace_->NowNanos() : 0;
  PRESTO_ASSIGN_OR_RETURN(HttpResponse response, RoundTrip(request));
  if (trace_ != nullptr) {
    // peer_trace is the producer's trace id echoed from the serve side —
    // the cross-process correlation the x-presto-trace header exists for.
    trace_->RecordSpan("exchange", "http_fetch", trace_pid_, trace_tid_,
                       fetch_start, trace_->NowNanos() - fetch_start,
                       {{"path", request.path},
                        {"peer_trace", response.header(kTraceHeader)},
                        {"frames", response.header(kFrameCount)},
                        {"status", std::to_string(response.status)}});
  }
  if (response.status == 404) {
    return Status::IOError("exchange http: buffer gone (HTTP 404): " +
                           response.body);
  }
  if (response.status != 200) {
    return Status::IOError("exchange http: unexpected status " +
                           std::to_string(response.status) + ": " +
                           response.body);
  }
  int64_t token = 0;
  int64_t next = 0;
  int64_t frames = 0;
  if (!ParseInt(response.header(kPageToken), &token) ||
      !ParseInt(response.header(kPageNextToken), &next) ||
      !ParseInt(response.header(kFrameCount), &frames) ||
      token != next_token_ || next < token) {
    return Status::IOError("exchange http: inconsistent token headers");
  }
  int64_t served_generation = 0;
  if (ParseInt(response.header(kBufferGeneration), &served_generation) &&
      served_generation != generation_) {
    return Status::IOError("exchange http: producer generation mismatch "
                           "(want " + std::to_string(generation_) + ", got " +
                           std::to_string(served_generation) + ")");
  }
  FetchResult result;
  result.body = std::move(response.body);
  result.frame_count = frames;
  // Replay dedup: frames [token, next) with index below the resume
  // watermark were delivered before a ResetForReplacement.
  result.skip_frames = std::clamp<int64_t>(resume_skip_ - token, 0, frames);
  result.complete = response.header(kBufferComplete) == "true";
  next_token_ = next;
  delivered_frames_ += frames - result.skip_frames;
  return result;
}

void ExchangeHttpClient::ResetForReplacement(int port, int generation,
                                             int64_t delivered) {
  port_ = port;
  generation_ = generation;
  if (delivered >= 0) delivered_frames_ = delivered;
  resume_skip_ = delivered_frames_;
  next_token_ = 0;
  conn_.reset();  // the replacement may live on a different worker
}

Status ExchangeHttpClient::DeleteBuffer() {
  HttpRequest request;
  request.method = "DELETE";
  request.path = BasePath();
  if (trace_ != nullptr) request.headers[kTraceHeader] = stream_.query_id;
  PRESTO_ASSIGN_OR_RETURN(HttpResponse response, RoundTrip(request));
  if (response.status == 204 || response.status == 404) return Status::OK();
  return Status::IOError("exchange http: DELETE failed with status " +
                         std::to_string(response.status));
}

}  // namespace presto
