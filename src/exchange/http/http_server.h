#ifndef PRESTOCPP_EXCHANGE_HTTP_HTTP_SERVER_H_
#define PRESTOCPP_EXCHANGE_HTTP_HTTP_SERVER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "exchange/http/http_io.h"

namespace presto {

/// A small threaded HTTP/1.1 server over POSIX sockets: one accept loop plus
/// one keep-alive thread per connection. Built for the exchange transport —
/// localhost only, ephemeral port, handler-per-request — not for the open
/// internet. Connection threads poll a stop flag between requests (100 ms
/// receive timeout) so Stop() converges quickly even with idle clients.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(Handler handler) : handler_(std::move(handler)) {}
  ~HttpServer() { Stop(); }

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:<ephemeral> and starts the accept loop.
  Status Start();

  /// Stops accepting, drops every connection, joins all threads. Idempotent.
  void Stop();

  int port() const { return port_; }

 private:
  void AcceptLoop();
  void ServeConnection(std::shared_ptr<HttpConnection> conn);

  Handler handler_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex mu_;
  std::vector<std::thread> connection_threads_;
  std::vector<std::shared_ptr<HttpConnection>> connections_;
};

}  // namespace presto

#endif  // PRESTOCPP_EXCHANGE_HTTP_HTTP_SERVER_H_
