#include "exchange/http/http_server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "common/fault_injection.h"

namespace presto {

namespace {
// Granularity at which idle connection threads and the accept loop observe
// the stop flag.
constexpr int64_t kPollMicros = 100'000;
}  // namespace

Status HttpServer::Start() {
  PRESTO_ASSIGN_OR_RETURN(listen_fd_, ListenOnLoopback(&port_));
  stopping_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true);
  {
    // Unblock connection threads parked in recv.
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& conn : connections_) conn->Shutdown();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(connection_threads_);
    connections_.clear();
  }
  for (auto& thread : threads) {
    if (thread.joinable()) thread.join();
  }
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load()) {
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int ready = ::poll(&pfd, 1, static_cast<int>(kPollMicros / 1000));
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;  // timeout: re-check stopping_
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    auto conn = std::make_shared<HttpConnection>(fd);
    (void)conn->SetRecvTimeout(kPollMicros);
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load()) {
      conn->Shutdown();
      return;
    }
    connections_.push_back(conn);
    connection_threads_.emplace_back(
        [this, conn] { ServeConnection(conn); });
  }
}

void HttpServer::ServeConnection(std::shared_ptr<HttpConnection> conn) {
  while (!stopping_.load()) {
    auto request = conn->ReadRequest();
    if (!request.ok()) {
      // A parse failure still gets a best-effort error response so a
      // confused client sees a protocol error, not a silent hangup; then
      // drop the connection (framing is lost). Size-cap violations get
      // their specific refusals: an oversized body is 413, an oversized
      // line or too many headers is 431. Closed/timed-out sockets just
      // drop.
      const std::string& message = request.status().message();
      if (message.find("closed") == std::string::npos &&
          message.find("timeout") == std::string::npos) {
        HttpResponse bad;
        if (request.status().code() == StatusCode::kResourceExhausted) {
          if (message.find("body") != std::string::npos) {
            bad.status = 413;
            bad.reason = "Payload Too Large";
          } else {
            bad.status = 431;
            bad.reason = "Request Header Fields Too Large";
          }
        } else {
          bad.status = 400;
          bad.reason = "Bad Request";
        }
        bad.body = message;
        (void)conn->WriteResponse(bad);
      }
      break;
    }
    if (!request->has_value()) continue;  // idle timeout: re-check stopping_
    HttpResponse response;
    Status fault = Status::OK();
    if (FaultInjection::Enabled()) {
      fault = FaultInjection::Instance().Hit("http.server_serve");
    }
    if (!fault.ok()) {
      response.status = 500;
      response.reason = "Internal Server Error";
      response.body = fault.message();
    } else if ((*request)->method.empty() || (*request)->path.empty() ||
               (*request)->path[0] != '/') {
      response.status = 400;
      response.reason = "Bad Request";
    } else {
      response = handler_(**request);
    }
    if (!conn->WriteResponse(response).ok()) break;
  }
  conn->Shutdown();
}

}  // namespace presto
