#ifndef PRESTOCPP_CONNECTORS_HIVE_HIVE_CONNECTOR_H_
#define PRESTOCPP_CONNECTORS_HIVE_HIVE_CONNECTOR_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "connector/connector.h"
#include "connectors/hive/minidfs.h"
#include "connectors/hive/storc.h"

namespace presto {

/// Hive connector configuration.
struct HiveConfig {
  DfsConfig dfs;
  /// Lazy column materialization (§V-D); disable for the eager baseline.
  bool lazy_reads = true;
  /// Artificial per-batch split-enumeration delay, modeling slow metastore
  /// partition listings (§IV-D3 "it can take minutes for the Hive connector
  /// to enumerate partitions and list files").
  int64_t split_enumeration_delay_micros = 0;
  /// Rows per storc stripe when writing.
  int64_t stripe_rows = 16384;
  /// Rows per file when loading tables.
  int64_t file_rows = 65536;
};

/// The Hive-style warehouse connector (§II-A): tables are directories of
/// storc files in a simulated remote DFS, with optional single-column
/// partitioning (directory per partition value), table/column statistics
/// available only after AnalyzeTable (the Fig. 6 stats toggle), inexact
/// predicate pushdown via stripe statistics, and exact pushdown (partition
/// pruning) on the partition column.
class HiveConnector final : public Connector {
 public:
  explicit HiveConnector(std::string name = "hive", HiveConfig config = {});
  ~HiveConnector() override;

  const std::string& name() const override { return name_; }
  ConnectorMetadata& metadata() override;

  MiniDfs& dfs() { return dfs_; }
  const HiveConfig& config() const { return config_; }

  /// Creates an empty table (optionally partitioned by one column).
  Status CreateTable(const std::string& table_name, RowSchema schema,
                     const std::string& partition_column = "");

  /// Appends pages to a table, writing storc files (and routing rows into
  /// partition directories when partitioned).
  Status LoadTable(const std::string& table_name,
                   const std::vector<Page>& pages);

  /// Computes and caches table/column statistics by scanning (the paper's
  /// ANALYZE; enables the cost-based optimizations of §IV-C).
  Status AnalyzeTable(const std::string& table_name);

  /// Aggregate lazy-materialization counters (§V-D experiment).
  LazyLoadStats& lazy_stats() { return lazy_stats_; }

  Result<std::unique_ptr<SplitSource>> GetSplits(
      const ScanSpec& spec) override;

  Result<std::unique_ptr<DataSource>> CreateDataSource(
      const Split& split, const ScanSpec& spec) override;

  Result<std::unique_ptr<DataSink>> CreateDataSink(const TableHandle& table,
                                                   int writer_id) override;

  Result<std::string> SerializeSplit(const Split& split) const override;
  Result<SplitPtr> DeserializeSplit(const std::string& data) const override;

 private:
  class Metadata;
  friend class Metadata;

  struct TableInfo {
    RowSchema schema;
    std::string partition_column;  // empty = unpartitioned
    // files per partition value ("" for unpartitioned).
    std::map<std::string, std::vector<std::string>> files;
    TableStats stats;  // valid() only after AnalyzeTable
    bool pending = false;
    int64_t next_file_id = 0;
  };

  std::string name_;
  HiveConfig config_;
  MiniDfs dfs_;
  std::unique_ptr<Metadata> metadata_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<TableInfo>> tables_;
  LazyLoadStats lazy_stats_;
};

}  // namespace presto

#endif  // PRESTOCPP_CONNECTORS_HIVE_HIVE_CONNECTOR_H_
