#ifndef PRESTOCPP_CONNECTORS_HIVE_STORC_H_
#define PRESTOCPP_CONNECTORS_HIVE_STORC_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "connector/connector.h"
#include "connectors/hive/minidfs.h"
#include "types/row_schema.h"
#include "vector/encoded_block.h"
#include "vector/page.h"

namespace presto {

/// storc ("simulated ORC") — the columnar file format used by the hive and
/// raptor connectors. Files are organized as stripes of column chunks with
/// per-stripe min/max statistics in the footer, mirroring the ORC features
/// the paper's custom readers exploit (§V-C): footer statistics allow whole
/// stripes to be skipped, and dictionary/RLE-encoded chunks decode directly
/// into engine blocks the page processor can operate on (§V-E). Reads are
/// lazy (§V-D): a column chunk is fetched and decoded only when a cell of
/// it is first accessed.
enum class StorcEncoding : uint8_t { kPlain = 0, kDict = 1, kRle = 2 };

struct StorcColumnChunkInfo {
  int64_t offset = 0;
  int64_t length = 0;
  bool has_stats = false;
  Value min;
  Value max;
  int64_t null_count = 0;
};

struct StorcStripeInfo {
  int64_t rows = 0;
  std::vector<StorcColumnChunkInfo> columns;
};

struct StorcFooter {
  RowSchema schema;
  std::vector<StorcStripeInfo> stripes;
  int64_t total_rows = 0;
};

/// Buffers pages and encodes them into the storc byte format.
class StorcWriter {
 public:
  explicit StorcWriter(RowSchema schema, int64_t stripe_rows = 16384);

  void Append(const Page& page);

  /// Flushes remaining rows and returns the complete file contents.
  std::string Finish();

  int64_t rows_written() const { return rows_written_; }

 private:
  void FlushStripe();

  RowSchema schema_;
  int64_t stripe_rows_;
  std::vector<Page> buffered_;
  int64_t buffered_rows_ = 0;
  int64_t rows_written_ = 0;
  std::string data_;
  std::vector<StorcStripeInfo> stripes_;
};

/// Parses the footer of a storc file (one metadata read).
Result<StorcFooter> ReadStorcFooter(const MiniDfs& dfs,
                                    const std::string& path);

/// Streams the stripes of one storc file as pages of lazy blocks, skipping
/// stripes whose statistics exclude the pushed-down predicates.
class StorcReader {
 public:
  StorcReader(const MiniDfs* dfs, std::string path, StorcFooter footer,
              std::vector<int> columns,
              std::vector<ColumnPredicate> predicates, bool lazy,
              LazyLoadStats* lazy_stats);

  /// One page per surviving stripe; nullopt at end.
  Result<std::optional<Page>> NextPage();

  int64_t stripes_read() const { return stripes_read_; }
  int64_t stripes_skipped() const { return stripes_skipped_; }

 private:
  bool StripePruned(const StorcStripeInfo& stripe) const;

  const MiniDfs* dfs_;
  std::string path_;
  StorcFooter footer_;
  std::vector<int> columns_;
  std::vector<ColumnPredicate> predicates_;
  bool lazy_;
  LazyLoadStats* lazy_stats_;
  size_t next_stripe_ = 0;
  int64_t stripes_read_ = 0;
  int64_t stripes_skipped_ = 0;
};

/// Decodes one column chunk payload (exposed for tests).
Result<BlockPtr> DecodeStorcChunk(const std::string& bytes, int64_t rows);

}  // namespace presto

#endif  // PRESTOCPP_CONNECTORS_HIVE_STORC_H_
