#include "connectors/hive/hive_connector.h"

#include <set>
#include <thread>

#include "common/check.h"
#include "common/json.h"
#include "vector/block_builder.h"
#include "vector/decoded_block.h"

namespace presto {

namespace {

class HiveTableHandle final : public TableHandle {
 public:
  HiveTableHandle(std::string name, RowSchema schema,
                  std::string partition_column)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        partition_column_(std::move(partition_column)) {}
  const std::string& name() const override { return name_; }
  const RowSchema& schema() const override { return schema_; }
  const std::string& partition_column() const { return partition_column_; }

 private:
  std::string name_;
  RowSchema schema_;
  std::string partition_column_;
};

class HiveSplit final : public Split {
 public:
  HiveSplit(std::string file, std::string partition_value)
      : file_(std::move(file)), partition_value_(std::move(partition_value)) {}
  const std::string& file() const { return file_; }
  const std::string& partition_value() const { return partition_value_; }
  std::string ToString() const override { return "hive:" + file_; }

 private:
  std::string file_;
  std::string partition_value_;
};

// Lazy split enumeration with optional per-batch delay.
class HiveSplitSource final : public SplitSource {
 public:
  HiveSplitSource(std::vector<SplitPtr> splits, int64_t delay_micros)
      : splits_(std::move(splits)), delay_micros_(delay_micros) {}
  Result<std::vector<SplitPtr>> NextBatch(int max_batch) override {
    std::vector<SplitPtr> out;
    while (pos_ < splits_.size() && static_cast<int>(out.size()) < max_batch) {
      out.push_back(splits_[pos_++]);
    }
    // The simulated metastore cost is per file listed, so eager enumeration
    // (one huge batch) pays for every file before returning.
    if (delay_micros_ > 0 && !out.empty()) {
      std::this_thread::sleep_for(std::chrono::microseconds(
          delay_micros_ * static_cast<int64_t>(out.size())));
    }
    return out;
  }

 private:
  std::vector<SplitPtr> splits_;
  size_t pos_ = 0;
  int64_t delay_micros_;
};

class HiveDataSource final : public DataSource {
 public:
  HiveDataSource(std::unique_ptr<StorcReader> reader, const MiniDfs* dfs,
                 int64_t dfs_bytes_before)
      : reader_(std::move(reader)),
        dfs_(dfs),
        bytes_before_(dfs_bytes_before) {}
  Result<std::optional<Page>> NextPage() override {
    return reader_->NextPage();
  }
  int64_t bytes_read() const override {
    return dfs_->total_bytes_read() - bytes_before_;
  }

 private:
  std::unique_ptr<StorcReader> reader_;
  const MiniDfs* dfs_;
  int64_t bytes_before_;
};

}  // namespace

class HiveConnector::Metadata final : public ConnectorMetadata {
 public:
  explicit Metadata(HiveConnector* parent) : parent_(parent) {}

  std::vector<std::string> ListTables() const override {
    std::lock_guard<std::mutex> lock(parent_->mu_);
    std::vector<std::string> names;
    for (const auto& [name, _] : parent_->tables_) names.push_back(name);
    return names;
  }

  Result<TableHandlePtr> GetTable(const std::string& name) const override {
    std::lock_guard<std::mutex> lock(parent_->mu_);
    auto it = parent_->tables_.find(name);
    if (it == parent_->tables_.end()) {
      return Status::NotFound("hive table not found: " + name);
    }
    return TableHandlePtr(std::make_shared<HiveTableHandle>(
        name, it->second->schema, it->second->partition_column));
  }

  Result<TableStats> GetStats(const TableHandle& table) const override {
    std::lock_guard<std::mutex> lock(parent_->mu_);
    auto it = parent_->tables_.find(table.name());
    if (it == parent_->tables_.end()) {
      return Status::NotFound("hive table not found: " + table.name());
    }
    return it->second->stats;  // invalid (unknown) unless analyzed
  }

  PushdownSupport GetPushdownSupport(
      const TableHandle& table, const ColumnPredicate& pred) const override {
    const auto& hive = static_cast<const HiveTableHandle&>(table);
    // Partition pruning is exact (only matching directories are listed);
    // anything else is stripe-statistics pruning: inexact.
    if (!hive.partition_column().empty() &&
        pred.column == hive.partition_column() &&
        (pred.op == ColumnPredicate::Op::kEq ||
         pred.op == ColumnPredicate::Op::kIn)) {
      return PushdownSupport::kExact;
    }
    return PushdownSupport::kInexact;
  }

  Result<TableHandlePtr> BeginCreateTable(const std::string& name,
                                          const RowSchema& schema) override {
    PRESTO_RETURN_IF_ERROR(parent_->CreateTable(name, schema, ""));
    std::lock_guard<std::mutex> lock(parent_->mu_);
    parent_->tables_[name]->pending = true;
    return TableHandlePtr(
        std::make_shared<HiveTableHandle>(name, schema, ""));
  }

  Status FinishWrite(const TableHandle& table) override {
    {
      std::lock_guard<std::mutex> lock(parent_->mu_);
      auto it = parent_->tables_.find(table.name());
      if (it == parent_->tables_.end()) {
        return Status::NotFound("hive table not found: " + table.name());
      }
      it->second->pending = false;
    }
    // Write commit: invalidate dependent planning-path caches.
    BumpTableVersion(table.name());
    return Status::OK();
  }

  /// Connector-level mutators (CreateTable/LoadTable/AnalyzeTable) funnel
  /// through this to reach the protected version bump.
  void Bump(const std::string& table) { BumpTableVersion(table); }

 private:
  HiveConnector* parent_;
};

namespace {

class HiveDataSink final : public DataSink {
 public:
  HiveDataSink(HiveConnector* connector, MiniDfs* dfs, std::string path,
               RowSchema schema, int64_t stripe_rows,
               std::function<void(const std::string&)> register_file)
      : connector_(connector),
        dfs_(dfs),
        path_(std::move(path)),
        writer_(std::move(schema), stripe_rows),
        register_file_(std::move(register_file)) {}

  Status Append(const Page& page) override {
    writer_.Append(page);
    return Status::OK();
  }

  Result<int64_t> Finish() override {
    int64_t rows = writer_.rows_written();
    if (rows > 0) {
      PRESTO_RETURN_IF_ERROR(dfs_->Write(path_, writer_.Finish()));
      register_file_(path_);
    }
    (void)connector_;
    return rows;
  }

 private:
  HiveConnector* connector_;
  MiniDfs* dfs_;
  std::string path_;
  StorcWriter writer_;
  std::function<void(const std::string&)> register_file_;
};

}  // namespace

HiveConnector::HiveConnector(std::string name, HiveConfig config)
    : name_(std::move(name)),
      config_(config),
      dfs_(config.dfs),
      metadata_(std::make_unique<Metadata>(this)) {}

HiveConnector::~HiveConnector() = default;

ConnectorMetadata& HiveConnector::metadata() { return *metadata_; }

Status HiveConnector::CreateTable(const std::string& table_name,
                                  RowSchema schema,
                                  const std::string& partition_column) {
  if (!partition_column.empty() &&
      !schema.IndexOf(partition_column).has_value()) {
    return Status::InvalidArgument("partition column not in schema: " +
                                   partition_column);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto info = std::make_shared<TableInfo>();
    info->schema = std::move(schema);
    info->partition_column = partition_column;
    tables_[table_name] = std::move(info);
  }
  metadata_->Bump(table_name);
  return Status::OK();
}

Status HiveConnector::LoadTable(const std::string& table_name,
                                const std::vector<Page>& pages) {
  std::shared_ptr<TableInfo> info;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tables_.find(table_name);
    if (it == tables_.end()) {
      return Status::NotFound("hive table not found: " + table_name);
    }
    info = it->second;
  }
  // Partitioned: route rows to one writer per partition value.
  std::map<std::string, std::unique_ptr<StorcWriter>> writers;
  auto writer_for = [&](const std::string& partition)
      -> StorcWriter* {
    auto it = writers.find(partition);
    if (it == writers.end()) {
      it = writers
               .emplace(partition, std::make_unique<StorcWriter>(
                                       info->schema, config_.stripe_rows))
               .first;
    }
    return it->second.get();
  };
  if (info->partition_column.empty()) {
    // Unpartitioned: chunk into files of ~file_rows rows.
    StorcWriter* writer = nullptr;
    int64_t rows_in_file = 0;
    auto flush = [&]() -> Status {
      if (writer == nullptr || writer->rows_written() == 0) return Status::OK();
      std::string path;
      {
        std::lock_guard<std::mutex> lock(mu_);
        path = "/warehouse/" + table_name + "/part-" +
               std::to_string(info->next_file_id++) + ".storc";
        info->files[""].push_back(path);
      }
      PRESTO_RETURN_IF_ERROR(dfs_.Write(path, writer->Finish()));
      writers.erase("");
      writer = nullptr;
      rows_in_file = 0;
      return Status::OK();
    };
    for (const auto& page : pages) {
      if (writer == nullptr) writer = writer_for("");
      writer->Append(page);
      rows_in_file += page.num_rows();
      if (rows_in_file >= config_.file_rows) PRESTO_RETURN_IF_ERROR(flush());
    }
    PRESTO_RETURN_IF_ERROR(flush());
    metadata_->Bump(table_name);
    return Status::OK();
  }
  size_t pcol = *info->schema.IndexOf(info->partition_column);
  for (const auto& page : pages) {
    // Split the page by partition value.
    std::map<std::string, std::vector<int32_t>> by_partition;
    const auto& pblock = *page.block(pcol);
    for (int64_t r = 0; r < page.num_rows(); ++r) {
      by_partition[pblock.GetValue(r).ToString()].push_back(
          static_cast<int32_t>(r));
    }
    for (const auto& [partition, positions] : by_partition) {
      Page part = page.CopyPositions(positions.data(),
                                     static_cast<int64_t>(positions.size()));
      writer_for(partition)->Append(part);
    }
  }
  for (auto& [partition, writer] : writers) {
    if (writer->rows_written() == 0) continue;
    std::string path;
    {
      std::lock_guard<std::mutex> lock(mu_);
      path = "/warehouse/" + table_name + "/" + info->partition_column +
             "=" + partition + "/part-" +
             std::to_string(info->next_file_id++) + ".storc";
      info->files[partition].push_back(path);
    }
    PRESTO_RETURN_IF_ERROR(dfs_.Write(path, writer->Finish()));
  }
  metadata_->Bump(table_name);
  return Status::OK();
}

Status HiveConnector::AnalyzeTable(const std::string& table_name) {
  std::shared_ptr<TableInfo> info;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tables_.find(table_name);
    if (it == tables_.end()) {
      return Status::NotFound("hive table not found: " + table_name);
    }
    info = it->second;
  }
  TableStats stats;
  stats.row_count = 0;
  size_t ncols = info->schema.size();
  std::vector<std::set<std::string>> distinct(ncols);
  std::vector<int64_t> nulls(ncols, 0);
  std::vector<Value> mins(ncols), maxs(ncols);
  std::vector<std::string> all_files;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [_, files] : info->files) {
      for (const auto& f : files) all_files.push_back(f);
    }
  }
  std::vector<int> all_columns;
  for (size_t c = 0; c < ncols; ++c) all_columns.push_back(static_cast<int>(c));
  for (const auto& file : all_files) {
    PRESTO_ASSIGN_OR_RETURN(StorcFooter footer, ReadStorcFooter(dfs_, file));
    StorcReader reader(&dfs_, file, footer, all_columns, {}, /*lazy=*/false,
                       nullptr);
    for (;;) {
      PRESTO_ASSIGN_OR_RETURN(auto page, reader.NextPage());
      if (!page.has_value()) break;
      stats.row_count += page->num_rows();
      for (size_t c = 0; c < ncols; ++c) {
        const auto& block = *page->block(c);
        for (int64_t r = 0; r < page->num_rows(); ++r) {
          Value v = block.GetValue(r);
          if (v.is_null()) {
            ++nulls[c];
            continue;
          }
          if (distinct[c].size() < 200000) distinct[c].insert(v.ToString());
          if (mins[c].is_null() || v.Compare(mins[c]) < 0) mins[c] = v;
          if (maxs[c].is_null() || v.Compare(maxs[c]) > 0) maxs[c] = v;
        }
      }
    }
  }
  for (size_t c = 0; c < ncols; ++c) {
    ColumnStats cs;
    cs.distinct_values = static_cast<int64_t>(distinct[c].size());
    cs.null_fraction = stats.row_count == 0
                           ? 0.0
                           : static_cast<double>(nulls[c]) /
                                 static_cast<double>(stats.row_count);
    cs.min = mins[c];
    cs.max = maxs[c];
    stats.columns[info->schema.at(c).name] = std::move(cs);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    info->stats = std::move(stats);
  }
  // Stats changed: cached TableStats for this table are now stale.
  metadata_->Bump(table_name);
  return Status::OK();
}

Result<std::unique_ptr<SplitSource>> HiveConnector::GetSplits(
    const ScanSpec& spec) {
  const TableHandle& table = *spec.table;
  std::shared_ptr<TableInfo> info;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tables_.find(table.name());
    if (it == tables_.end()) {
      return Status::NotFound("hive table not found: " + table.name());
    }
    info = it->second;
  }
  // Partition pruning: exact pushdown on the partition column.
  std::optional<std::set<std::string>> keep_partitions;
  if (!info->partition_column.empty()) {
    for (const auto& pred : spec.predicates) {
      if (pred.column != info->partition_column) continue;
      if (pred.op == ColumnPredicate::Op::kEq ||
          pred.op == ColumnPredicate::Op::kIn) {
        std::set<std::string> keep;
        for (const auto& v : pred.values) keep.insert(v.ToString());
        keep_partitions = std::move(keep);
      }
    }
  }
  std::vector<SplitPtr> splits;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [partition, files] : info->files) {
      if (keep_partitions.has_value() &&
          keep_partitions->count(partition) == 0) {
        continue;
      }
      for (const auto& file : files) {
        splits.push_back(std::make_shared<HiveSplit>(file, partition));
      }
    }
  }
  return std::unique_ptr<SplitSource>(new HiveSplitSource(
      std::move(splits), config_.split_enumeration_delay_micros));
}

Result<std::unique_ptr<DataSource>> HiveConnector::CreateDataSource(
    const Split& split, const ScanSpec& spec) {
  const auto* hive_split = dynamic_cast<const HiveSplit*>(&split);
  if (hive_split == nullptr) {
    return Status::InvalidArgument("not a hive split");
  }
  int64_t bytes_before = dfs_.total_bytes_read();
  PRESTO_ASSIGN_OR_RETURN(StorcFooter footer,
                          ReadStorcFooter(dfs_, hive_split->file()));
  auto reader = std::make_unique<StorcReader>(
      &dfs_, hive_split->file(), std::move(footer), spec.columns,
      spec.predicates, config_.lazy_reads, &lazy_stats_);
  return std::unique_ptr<DataSource>(
      new HiveDataSource(std::move(reader), &dfs_, bytes_before));
}

Result<std::unique_ptr<DataSink>> HiveConnector::CreateDataSink(
    const TableHandle& table, int writer_id) {
  std::shared_ptr<TableInfo> info;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tables_.find(table.name());
    if (it == tables_.end()) {
      return Status::NotFound("hive table not found: " + table.name());
    }
    info = it->second;
  }
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    path = "/warehouse/" + table.name() + "/writer-" +
           std::to_string(writer_id) + "-" +
           std::to_string(info->next_file_id++) + ".storc";
  }
  std::string table_name = table.name();
  auto register_file = [this, table_name](const std::string& file) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tables_.find(table_name);
    if (it != tables_.end()) it->second->files[""].push_back(file);
  };
  return std::unique_ptr<DataSink>(
      new HiveDataSink(this, &dfs_, path, info->schema, config_.stripe_rows,
                       register_file));
}

Result<std::string> HiveConnector::SerializeSplit(const Split& split) const {
  const auto* hive_split = dynamic_cast<const HiveSplit*>(&split);
  if (hive_split == nullptr) {
    return Status::InvalidArgument("not a hive split");
  }
  Json out = Json::Object();
  out.Set("file", Json::Str(hive_split->file()))
      .Set("partition", Json::Str(hive_split->partition_value()));
  return out.Serialize();
}

Result<SplitPtr> HiveConnector::DeserializeSplit(
    const std::string& data) const {
  PRESTO_ASSIGN_OR_RETURN(Json json, Json::Parse(data));
  PRESTO_ASSIGN_OR_RETURN(std::string file, json.GetString("file"));
  PRESTO_ASSIGN_OR_RETURN(std::string partition, json.GetString("partition"));
  return SplitPtr(
      std::make_shared<HiveSplit>(std::move(file), std::move(partition)));
}

}  // namespace presto
