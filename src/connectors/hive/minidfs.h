#ifndef PRESTOCPP_CONNECTORS_HIVE_MINIDFS_H_
#define PRESTOCPP_CONNECTORS_HIVE_MINIDFS_H_

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace presto {

/// Simulated shared-storage characteristics. The defaults model a remote
/// distributed filesystem (the paper's HDFS-like warehouse): every read
/// pays a network round trip plus bandwidth-limited transfer. Raptor-style
/// local flash uses near-zero latency instead — this asymmetry is exactly
/// what Fig. 6 measures.
struct DfsConfig {
  int64_t read_latency_micros = 300;
  int64_t bytes_per_second = 2LL << 30;  // 2 GB/s
  int64_t list_latency_micros = 1000;    // metastore-ish listing cost
};

/// An in-memory blob store standing in for HDFS (§II-A "data is stored in a
/// distributed filesystem"). Thread-safe; read calls sleep according to the
/// simulated latency/bandwidth and are counted for the lazy-loading
/// experiment (§V-D).
class MiniDfs {
 public:
  explicit MiniDfs(DfsConfig config = {}) : config_(config) {}

  const DfsConfig& config() const { return config_; }

  Status Write(const std::string& path, std::string data);
  Status Append(const std::string& path, const std::string& data);
  Result<int64_t> FileSize(const std::string& path) const;
  /// Reads [offset, offset+length); applies simulated latency + bandwidth.
  Result<std::string> ReadRange(const std::string& path, int64_t offset,
                                int64_t length) const;
  Result<std::string> ReadAll(const std::string& path) const;
  /// Paths with the given prefix (applies listing latency).
  std::vector<std::string> List(const std::string& prefix) const;
  bool Exists(const std::string& path) const;
  Status Delete(const std::string& path);

  int64_t total_reads() const { return reads_.load(); }
  int64_t total_bytes_read() const { return bytes_read_.load(); }
  void ResetStats() {
    reads_.store(0);
    bytes_read_.store(0);
  }

 private:
  void SimulateRead(int64_t bytes) const;

  DfsConfig config_;
  mutable std::mutex mu_;
  std::map<std::string, std::string> files_;
  mutable std::atomic<int64_t> reads_{0};
  mutable std::atomic<int64_t> bytes_read_{0};
};

}  // namespace presto

#endif  // PRESTOCPP_CONNECTORS_HIVE_MINIDFS_H_
