#include "connectors/hive/storc.h"

#include <cstring>
#include <map>

#include "common/check.h"
#include "vector/block_builder.h"
#include "vector/page_codec.h"

namespace presto {

namespace {

constexpr char kMagic[] = "STORC1";
constexpr size_t kMagicLen = 6;

template <typename T>
void WritePod(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(const std::string& in, size_t* off, T* v) {
  if (*off + sizeof(T) > in.size()) return false;
  std::memcpy(v, in.data() + *off, sizeof(T));
  *off += sizeof(T);
  return true;
}

void WriteValue(std::string* out, TypeKind type, const Value& v) {
  WritePod<uint8_t>(out, v.is_null() ? 1 : 0);
  if (v.is_null()) return;
  switch (type) {
    case TypeKind::kBoolean:
      WritePod<uint8_t>(out, v.AsBoolean() ? 1 : 0);
      break;
    case TypeKind::kBigint:
    case TypeKind::kDate:
      WritePod<int64_t>(out, v.AsBigint());
      break;
    case TypeKind::kDouble:
      WritePod<double>(out, v.AsDouble());
      break;
    case TypeKind::kVarchar: {
      const std::string& s = v.AsVarchar();
      WritePod<uint32_t>(out, static_cast<uint32_t>(s.size()));
      out->append(s);
      break;
    }
    default:
      PRESTO_UNREACHABLE();
  }
}

bool ReadValue(const std::string& in, size_t* off, TypeKind type, Value* v) {
  uint8_t null = 0;
  if (!ReadPod(in, off, &null)) return false;
  if (null) {
    *v = Value::Null(type);
    return true;
  }
  switch (type) {
    case TypeKind::kBoolean: {
      uint8_t b = 0;
      if (!ReadPod(in, off, &b)) return false;
      *v = Value::Boolean(b != 0);
      return true;
    }
    case TypeKind::kBigint: {
      int64_t i = 0;
      if (!ReadPod(in, off, &i)) return false;
      *v = Value::Bigint(i);
      return true;
    }
    case TypeKind::kDate: {
      int64_t i = 0;
      if (!ReadPod(in, off, &i)) return false;
      *v = Value::Date(i);
      return true;
    }
    case TypeKind::kDouble: {
      double d = 0;
      if (!ReadPod(in, off, &d)) return false;
      *v = Value::Double(d);
      return true;
    }
    case TypeKind::kVarchar: {
      uint32_t len = 0;
      if (!ReadPod(in, off, &len)) return false;
      if (*off + len > in.size()) return false;
      *v = Value::Varchar(in.substr(*off, len));
      *off += len;
      return true;
    }
    default:
      return false;
  }
}

// Column chunks ride in PageCodec frames (one single-column page each):
// storc files get the same compression and checksum protection as the
// shuffle and spill paths. Frames are self-delimiting, so chunk
// compositions (dictionary blocks, RLE runs) concatenate cleanly.
const PageCodec& ChunkCodec() {
  static const PageCodec codec(PageCodecOptions{
      PageCompression::kLz4, /*preserve_encodings=*/true, /*checksum=*/true});
  return codec;
}

std::string SerializeBlock(const BlockPtr& block) {
  return ChunkCodec().Encode(Page({block})).bytes;
}

Result<BlockPtr> DeserializeBlock(const std::string& bytes, size_t* off) {
  PRESTO_ASSIGN_OR_RETURN(Page page, ChunkCodec().Decode(bytes, off));
  if (page.num_columns() != 1) {
    return Status::IOError("bad storc chunk: expected one column");
  }
  return page.block(0);
}

// Encodes one column of a stripe, choosing RLE / dictionary / plain by the
// data's shape — the write side of §V-E's "convert certain forms of
// compressed data directly into blocks".
std::string EncodeChunk(const BlockPtr& flat, StorcColumnChunkInfo* info) {
  int64_t rows = flat->size();
  // Gather stats and distinct values (capped).
  std::map<std::string, int64_t> distinct;  // encoded -> first row
  bool all_same = true;
  info->null_count = 0;
  Value min_v, max_v;
  for (int64_t i = 0; i < rows; ++i) {
    if (flat->IsNull(i)) {
      ++info->null_count;
      continue;
    }
    Value v = flat->GetValue(i);
    if (min_v.is_null() || v.Compare(min_v) < 0) min_v = v;
    if (max_v.is_null() || v.Compare(max_v) > 0) max_v = v;
    if (distinct.size() <= 64) {
      distinct.emplace(v.ToString(), i);
    }
  }
  info->has_stats = true;
  info->min = min_v;
  info->max = max_v;
  if (rows > 0) {
    for (int64_t i = 1; i < rows; ++i) {
      if (!flat->EqualsAt(0, *flat, i) &&
          !(flat->IsNull(0) && flat->IsNull(i))) {
        all_same = false;
        break;
      }
    }
  }

  std::string out;
  if (rows > 0 && all_same) {
    WritePod<uint8_t>(&out, static_cast<uint8_t>(StorcEncoding::kRle));
    int32_t zero = 0;
    BlockPtr one = flat->CopyPositions(&zero, 1);
    out += SerializeBlock(one);
    WritePod<int64_t>(&out, rows);
    return out;
  }
  if (distinct.size() <= 64 && info->null_count == 0 &&
      rows >= static_cast<int64_t>(distinct.size()) * 4) {
    // Dictionary: positions of first occurrences form the dictionary.
    std::vector<int32_t> dict_positions;
    std::map<std::string, int32_t> codes;
    for (const auto& [key, first_row] : distinct) {
      codes[key] = static_cast<int32_t>(dict_positions.size());
      dict_positions.push_back(static_cast<int32_t>(first_row));
    }
    BlockPtr dictionary = flat->CopyPositions(
        dict_positions.data(), static_cast<int64_t>(dict_positions.size()));
    std::vector<int32_t> indices(static_cast<size_t>(rows));
    for (int64_t i = 0; i < rows; ++i) {
      indices[static_cast<size_t>(i)] = codes[flat->GetValue(i).ToString()];
    }
    WritePod<uint8_t>(&out, static_cast<uint8_t>(StorcEncoding::kDict));
    out += SerializeBlock(dictionary);
    WritePod<int64_t>(&out, rows);
    out.append(reinterpret_cast<const char*>(indices.data()),
               indices.size() * sizeof(int32_t));
    return out;
  }
  WritePod<uint8_t>(&out, static_cast<uint8_t>(StorcEncoding::kPlain));
  out += SerializeBlock(flat);
  return out;
}

}  // namespace

Result<BlockPtr> DecodeStorcChunk(const std::string& bytes, int64_t rows) {
  size_t off = 0;
  uint8_t encoding = 0;
  if (!ReadPod(bytes, &off, &encoding)) {
    return Status::IOError("truncated storc chunk");
  }
  switch (static_cast<StorcEncoding>(encoding)) {
    case StorcEncoding::kPlain:
      return DeserializeBlock(bytes, &off);
    case StorcEncoding::kDict: {
      PRESTO_ASSIGN_OR_RETURN(BlockPtr dictionary,
                              DeserializeBlock(bytes, &off));
      int64_t n = 0;
      if (!ReadPod(bytes, &off, &n) || n != rows) {
        return Status::IOError("bad storc dict chunk");
      }
      std::vector<int32_t> indices(static_cast<size_t>(n));
      if (off + indices.size() * sizeof(int32_t) > bytes.size()) {
        return Status::IOError("truncated storc dict indices");
      }
      std::memcpy(indices.data(), bytes.data() + off,
                  indices.size() * sizeof(int32_t));
      return BlockPtr(std::make_shared<DictionaryBlock>(std::move(dictionary),
                                                        std::move(indices)));
    }
    case StorcEncoding::kRle: {
      PRESTO_ASSIGN_OR_RETURN(BlockPtr one, DeserializeBlock(bytes, &off));
      int64_t n = 0;
      if (!ReadPod(bytes, &off, &n) || n != rows) {
        return Status::IOError("bad storc rle chunk");
      }
      return BlockPtr(std::make_shared<RleBlock>(std::move(one), n));
    }
  }
  return Status::IOError("unknown storc encoding");
}

StorcWriter::StorcWriter(RowSchema schema, int64_t stripe_rows)
    : schema_(std::move(schema)), stripe_rows_(stripe_rows) {}

void StorcWriter::Append(const Page& page) {
  PRESTO_CHECK(page.num_columns() == schema_.size());
  buffered_.push_back(page);
  buffered_rows_ += page.num_rows();
  rows_written_ += page.num_rows();
  while (buffered_rows_ >= stripe_rows_) FlushStripe();
}

void StorcWriter::FlushStripe() {
  if (buffered_rows_ == 0) return;
  int64_t take = std::min(buffered_rows_, stripe_rows_);
  // Concatenate `take` rows per column into flat blocks.
  std::vector<BlockBuilder> builders;
  for (const auto& col : schema_.columns()) builders.emplace_back(col.type);
  int64_t taken = 0;
  size_t consumed_pages = 0;
  int64_t consumed_rows_in_page = 0;
  for (const auto& page : buffered_) {
    if (taken >= take) break;
    int64_t start = 0;
    int64_t rows = std::min(page.num_rows(), take - taken);
    for (size_t c = 0; c < schema_.size(); ++c) {
      const auto& block = *page.block(c);
      for (int64_t r = start; r < rows; ++r) builders[c].AppendFrom(block, r);
    }
    taken += rows;
    if (rows == page.num_rows()) {
      ++consumed_pages;
    } else {
      consumed_rows_in_page = rows;
    }
  }
  // Remove consumed rows from the buffer.
  std::vector<Page> rest;
  if (consumed_rows_in_page > 0 && consumed_pages < buffered_.size()) {
    const Page& partial = buffered_[consumed_pages];
    std::vector<int32_t> positions;
    for (int64_t r = consumed_rows_in_page; r < partial.num_rows(); ++r) {
      positions.push_back(static_cast<int32_t>(r));
    }
    rest.push_back(partial.CopyPositions(
        positions.data(), static_cast<int64_t>(positions.size())));
  }
  for (size_t p = consumed_pages + (consumed_rows_in_page > 0 ? 1 : 0);
       p < buffered_.size(); ++p) {
    rest.push_back(buffered_[p]);
  }
  buffered_ = std::move(rest);
  buffered_rows_ -= taken;

  StorcStripeInfo stripe;
  stripe.rows = taken;
  for (size_t c = 0; c < schema_.size(); ++c) {
    StorcColumnChunkInfo info;
    BlockPtr flat = builders[c].Build();
    std::string chunk = EncodeChunk(flat, &info);
    info.offset = static_cast<int64_t>(data_.size());
    info.length = static_cast<int64_t>(chunk.size());
    data_ += chunk;
    stripe.columns.push_back(std::move(info));
  }
  stripes_.push_back(std::move(stripe));
}

std::string StorcWriter::Finish() {
  while (buffered_rows_ > 0) FlushStripe();
  // Footer.
  std::string footer;
  WritePod<uint32_t>(&footer, static_cast<uint32_t>(schema_.size()));
  for (const auto& col : schema_.columns()) {
    WritePod<uint16_t>(&footer, static_cast<uint16_t>(col.name.size()));
    footer += col.name;
    WritePod<uint8_t>(&footer, static_cast<uint8_t>(col.type));
  }
  WritePod<uint32_t>(&footer, static_cast<uint32_t>(stripes_.size()));
  int64_t total_rows = 0;
  for (const auto& stripe : stripes_) {
    total_rows += stripe.rows;
    WritePod<int64_t>(&footer, stripe.rows);
    for (size_t c = 0; c < stripe.columns.size(); ++c) {
      const auto& info = stripe.columns[c];
      WritePod<int64_t>(&footer, info.offset);
      WritePod<int64_t>(&footer, info.length);
      WritePod<uint8_t>(&footer, info.has_stats ? 1 : 0);
      if (info.has_stats) {
        TypeKind type = schema_.at(c).type;
        WriteValue(&footer, type, info.min);
        WriteValue(&footer, type, info.max);
        WritePod<int64_t>(&footer, info.null_count);
      }
    }
  }
  WritePod<int64_t>(&footer, total_rows);

  std::string out = std::move(data_);
  auto footer_offset = static_cast<int64_t>(out.size());
  out += footer;
  WritePod<int64_t>(&out, footer_offset);
  out.append(kMagic, kMagicLen);
  return out;
}

Result<StorcFooter> ReadStorcFooter(const MiniDfs& dfs,
                                    const std::string& path) {
  PRESTO_ASSIGN_OR_RETURN(int64_t size, dfs.FileSize(path));
  auto tail_len = static_cast<int64_t>(sizeof(int64_t) + kMagicLen);
  if (size < tail_len) return Status::IOError("not a storc file: " + path);
  PRESTO_ASSIGN_OR_RETURN(std::string tail,
                          dfs.ReadRange(path, size - tail_len, tail_len));
  if (tail.substr(sizeof(int64_t), kMagicLen) != kMagic) {
    return Status::IOError("bad storc magic in " + path);
  }
  int64_t footer_offset = 0;
  std::memcpy(&footer_offset, tail.data(), sizeof(int64_t));
  if (footer_offset < 0 || footer_offset > size - tail_len) {
    return Status::IOError("bad storc footer offset in " + path);
  }
  PRESTO_ASSIGN_OR_RETURN(
      std::string raw,
      dfs.ReadRange(path, footer_offset, size - tail_len - footer_offset));

  StorcFooter footer;
  size_t off = 0;
  uint32_t ncols = 0;
  if (!ReadPod(raw, &off, &ncols)) return Status::IOError("bad storc footer");
  for (uint32_t c = 0; c < ncols; ++c) {
    uint16_t name_len = 0;
    if (!ReadPod(raw, &off, &name_len) || off + name_len > raw.size()) {
      return Status::IOError("bad storc footer (column name)");
    }
    std::string name = raw.substr(off, name_len);
    off += name_len;
    uint8_t type = 0;
    if (!ReadPod(raw, &off, &type)) {
      return Status::IOError("bad storc footer (column type)");
    }
    footer.schema.Add(std::move(name), static_cast<TypeKind>(type));
  }
  uint32_t nstripes = 0;
  if (!ReadPod(raw, &off, &nstripes)) {
    return Status::IOError("bad storc footer (stripes)");
  }
  for (uint32_t s = 0; s < nstripes; ++s) {
    StorcStripeInfo stripe;
    if (!ReadPod(raw, &off, &stripe.rows)) {
      return Status::IOError("bad storc footer (stripe rows)");
    }
    for (uint32_t c = 0; c < ncols; ++c) {
      StorcColumnChunkInfo info;
      uint8_t has_stats = 0;
      if (!ReadPod(raw, &off, &info.offset) ||
          !ReadPod(raw, &off, &info.length) ||
          !ReadPod(raw, &off, &has_stats)) {
        return Status::IOError("bad storc footer (chunk)");
      }
      info.has_stats = has_stats != 0;
      if (info.has_stats) {
        TypeKind type = footer.schema.at(c).type;
        if (!ReadValue(raw, &off, type, &info.min) ||
            !ReadValue(raw, &off, type, &info.max) ||
            !ReadPod(raw, &off, &info.null_count)) {
          return Status::IOError("bad storc footer (stats)");
        }
      }
      stripe.columns.push_back(std::move(info));
    }
    footer.stripes.push_back(std::move(stripe));
  }
  if (!ReadPod(raw, &off, &footer.total_rows)) {
    return Status::IOError("bad storc footer (total rows)");
  }
  return footer;
}

StorcReader::StorcReader(const MiniDfs* dfs, std::string path,
                         StorcFooter footer, std::vector<int> columns,
                         std::vector<ColumnPredicate> predicates, bool lazy,
                         LazyLoadStats* lazy_stats)
    : dfs_(dfs),
      path_(std::move(path)),
      footer_(std::move(footer)),
      columns_(std::move(columns)),
      predicates_(std::move(predicates)),
      lazy_(lazy),
      lazy_stats_(lazy_stats) {}

bool StorcReader::StripePruned(const StorcStripeInfo& stripe) const {
  for (const auto& pred : predicates_) {
    auto idx = footer_.schema.IndexOf(pred.column);
    if (!idx.has_value()) continue;
    const auto& info = stripe.columns[*idx];
    if (!info.has_stats || info.min.is_null() || info.max.is_null()) continue;
    switch (pred.op) {
      case ColumnPredicate::Op::kEq:
        if (pred.values[0].Compare(info.min) < 0 ||
            pred.values[0].Compare(info.max) > 0) {
          return true;
        }
        break;
      case ColumnPredicate::Op::kIn: {
        bool any_inside = false;
        for (const auto& v : pred.values) {
          if (v.Compare(info.min) >= 0 && v.Compare(info.max) <= 0) {
            any_inside = true;
            break;
          }
        }
        if (!any_inside) return true;
        break;
      }
      case ColumnPredicate::Op::kLt:
        if (info.min.Compare(pred.values[0]) >= 0) return true;
        break;
      case ColumnPredicate::Op::kLte:
        if (info.min.Compare(pred.values[0]) > 0) return true;
        break;
      case ColumnPredicate::Op::kGt:
        if (info.max.Compare(pred.values[0]) <= 0) return true;
        break;
      case ColumnPredicate::Op::kGte:
        if (info.max.Compare(pred.values[0]) < 0) return true;
        break;
      case ColumnPredicate::Op::kNeq:
        break;
    }
  }
  return false;
}

Result<std::optional<Page>> StorcReader::NextPage() {
  while (next_stripe_ < footer_.stripes.size()) {
    const StorcStripeInfo& stripe = footer_.stripes[next_stripe_++];
    if (StripePruned(stripe)) {
      ++stripes_skipped_;
      if (lazy_stats_ != nullptr) {
        lazy_stats_->blocks_skipped.fetch_add(
            static_cast<int64_t>(columns_.size()));
      }
      continue;
    }
    ++stripes_read_;
    std::vector<BlockPtr> blocks;
    blocks.reserve(columns_.size());
    for (int c : columns_) {
      const auto& info = stripe.columns[static_cast<size_t>(c)];
      const MiniDfs* dfs = dfs_;
      std::string path = path_;
      int64_t offset = info.offset;
      int64_t length = info.length;
      int64_t rows = stripe.rows;
      auto loader = [dfs, path, offset, length, rows]() -> BlockPtr {
        auto bytes = dfs->ReadRange(path, offset, length);
        PRESTO_CHECK(bytes.ok());
        auto block = DecodeStorcChunk(*bytes, rows);
        PRESTO_CHECK(block.ok());
        return *block;
      };
      if (lazy_) {
        blocks.push_back(std::make_shared<LazyBlock>(
            footer_.schema.at(static_cast<size_t>(c)).type, stripe.rows,
            loader, lazy_stats_));
      } else {
        // Eager baseline for the §V-D experiment.
        BlockPtr block = loader();
        if (lazy_stats_ != nullptr) {
          lazy_stats_->blocks_loaded.fetch_add(1);
          lazy_stats_->cells_loaded.fetch_add(stripe.rows);
          lazy_stats_->bytes_loaded.fetch_add(block->SizeInBytes());
        }
        blocks.push_back(std::move(block));
      }
    }
    return std::optional<Page>(Page(std::move(blocks), stripe.rows));
  }
  return std::optional<Page>();
}

}  // namespace presto
