#include "connectors/hive/minidfs.h"

#include <thread>

namespace presto {

void MiniDfs::SimulateRead(int64_t bytes) const {
  reads_.fetch_add(1);
  bytes_read_.fetch_add(bytes);
  int64_t micros = config_.read_latency_micros;
  if (config_.bytes_per_second > 0) {
    micros += bytes * 1000000 / config_.bytes_per_second;
  }
  if (micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

Status MiniDfs::Write(const std::string& path, std::string data) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[path] = std::move(data);
  return Status::OK();
}

Status MiniDfs::Append(const std::string& path, const std::string& data) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[path] += data;
  return Status::OK();
}

Result<int64_t> MiniDfs::FileSize(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return static_cast<int64_t>(it->second.size());
}

Result<std::string> MiniDfs::ReadRange(const std::string& path,
                                       int64_t offset, int64_t length) const {
  std::string data;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(path);
    if (it == files_.end()) return Status::NotFound("no such file: " + path);
    if (offset < 0 || offset + length > static_cast<int64_t>(it->second.size())) {
      return Status::IOError("read past end of " + path);
    }
    data = it->second.substr(static_cast<size_t>(offset),
                             static_cast<size_t>(length));
  }
  SimulateRead(length);
  return data;
}

Result<std::string> MiniDfs::ReadAll(const std::string& path) const {
  PRESTO_ASSIGN_OR_RETURN(int64_t size, FileSize(path));
  return ReadRange(path, 0, size);
}

std::vector<std::string> MiniDfs::List(const std::string& prefix) const {
  if (config_.list_latency_micros > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(config_.list_latency_micros));
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

bool MiniDfs::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

Status MiniDfs::Delete(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  files_.erase(path);
  return Status::OK();
}

}  // namespace presto
