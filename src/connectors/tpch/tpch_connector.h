#ifndef PRESTOCPP_CONNECTORS_TPCH_TPCH_CONNECTOR_H_
#define PRESTOCPP_CONNECTORS_TPCH_TPCH_CONNECTOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "connector/connector.h"

namespace presto {

/// Deterministic TPC-H-style data generator connector (the dbgen
/// substitute). All eight tables are synthesized on the fly from the row
/// index — no storage — so the same scale factor always produces identical
/// data. Used to populate the hive/raptor substrates for the Fig. 6
/// experiment and as a workload source in examples and benchmarks.
///
/// Scale factor 1.0 corresponds to 1/100 of official TPC-H sizes (orders =
/// 15,000 rows) so laptop-scale runs stay fast; distributions (key
/// relationships, skew, value ranges) follow the TPC-H shapes.
class TpchConnector final : public Connector {
 public:
  explicit TpchConnector(std::string name = "tpch", double scale = 1.0);
  ~TpchConnector() override;

  const std::string& name() const override { return name_; }
  ConnectorMetadata& metadata() override;
  double scale() const { return scale_; }

  /// Rows in a table at this scale.
  Result<int64_t> RowCount(const std::string& table) const;

  Result<std::unique_ptr<SplitSource>> GetSplits(
      const ScanSpec& spec) override;

  Result<std::unique_ptr<DataSource>> CreateDataSource(
      const Split& split, const ScanSpec& spec) override;

  Result<std::string> SerializeSplit(const Split& split) const override;
  Result<SplitPtr> DeserializeSplit(const std::string& data) const override;

 private:
  class Metadata;
  friend class Metadata;

  std::string name_;
  double scale_;
  std::unique_ptr<Metadata> metadata_;
};

}  // namespace presto

#endif  // PRESTOCPP_CONNECTORS_TPCH_TPCH_CONNECTOR_H_
