#include "connectors/tpch/tpch_connector.h"

#include <cmath>

#include "common/check.h"
#include "common/hash.h"
#include "common/json.h"
#include "vector/block_builder.h"

namespace presto {

namespace {

// Base row counts at scale 1.0 (1/100 of official TPC-H).
constexpr int64_t kCustomers = 1500;
constexpr int64_t kOrdersPerCustomer = 10;
constexpr int64_t kLinesPerOrder = 4;
constexpr int64_t kParts = 2000;
constexpr int64_t kSuppliers = 100;
constexpr int64_t kNations = 25;
constexpr int64_t kRegions = 5;

// Deterministic per-row randomness.
uint64_t Mix(uint64_t table_seed, int64_t row, uint64_t salt) {
  return HashInt64(table_seed * 0x9E3779B97F4A7C15ULL +
                   static_cast<uint64_t>(row) + salt * 0xC2B2AE3D27D4EB4FULL);
}

int64_t EpochDay(int year, int month, int day) {
  int64_t out = 0;
  PRESTO_CHECK(ParseDate(
      std::to_string(year) + "-" + (month < 10 ? "0" : "") +
          std::to_string(month) + "-" + (day < 10 ? "0" : "") +
          std::to_string(day),
      &out));
  return out;
}

const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                           "HOUSEHOLD", "MACHINERY"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kShipModes[] = {"AIR", "FOB", "MAIL", "RAIL",
                            "REG AIR", "SHIP", "TRUCK"};
const char* kShipInstructs[] = {"COLLECT COD", "DELIVER IN PERSON",
                                "NONE", "TAKE BACK RETURN"};
const char* kNationNames[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};
const char* kRegionNames[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                              "MIDDLE EAST"};
const char* kBrands[] = {"Brand#11", "Brand#12", "Brand#13", "Brand#21",
                         "Brand#22", "Brand#23", "Brand#31", "Brand#32",
                         "Brand#33", "Brand#41"};
const char* kTypes[] = {"ECONOMY ANODIZED", "ECONOMY BRUSHED",
                        "LARGE BURNISHED", "LARGE PLATED",
                        "MEDIUM POLISHED",  "PROMO ANODIZED",
                        "SMALL BRUSHED",    "STANDARD PLATED"};

struct TableDef {
  std::string table;
  RowSchema schema;
  int64_t rows;  // at the connector's scale
};

class TpchTableHandle final : public TableHandle {
 public:
  TpchTableHandle(TableDef def) : def_(std::move(def)) {}
  const std::string& name() const override { return def_.table; }
  const RowSchema& schema() const override { return def_.schema; }
  const TableDef& def() const { return def_; }

 private:
  TableDef def_;
};

class TpchSplit final : public Split {
 public:
  TpchSplit(std::string table, int64_t begin, int64_t end)
      : table_(std::move(table)), begin_(begin), end_(end) {}
  const std::string& table() const { return table_; }
  int64_t begin() const { return begin_; }
  int64_t end() const { return end_; }
  std::string ToString() const override {
    return "tpch:" + table_ + "[" + std::to_string(begin_) + "," +
           std::to_string(end_) + ")";
  }

 private:
  std::string table_;
  int64_t begin_;
  int64_t end_;
};

class VectorSplitSource final : public SplitSource {
 public:
  explicit VectorSplitSource(std::vector<SplitPtr> splits)
      : splits_(std::move(splits)) {}
  Result<std::vector<SplitPtr>> NextBatch(int max_batch) override {
    std::vector<SplitPtr> out;
    while (pos_ < splits_.size() && static_cast<int>(out.size()) < max_batch) {
      out.push_back(splits_[pos_++]);
    }
    return out;
  }

 private:
  std::vector<SplitPtr> splits_;
  size_t pos_ = 0;
};

// Generates one cell. The generator lives here so the data source only
// produces the requested columns — column pruning skips work end to end.
Value GenerateCell(const std::string& table, const std::string& column,
                   int64_t row, int64_t total_customers, int64_t total_parts,
                   int64_t total_suppliers) {
  uint64_t table_seed = HashString(table);
  auto pick = [&](uint64_t salt, int64_t n) {
    return static_cast<int64_t>(Mix(table_seed, row, salt) %
                                static_cast<uint64_t>(n));
  };
  int64_t start_1992 = EpochDay(1992, 1, 1);
  if (table == "orders") {
    if (column == "orderkey") return Value::Bigint(row);
    if (column == "custkey") {
      return Value::Bigint(pick(1, total_customers));
    }
    if (column == "orderstatus") {
      const char* status[] = {"F", "O", "P"};
      int64_t r = pick(2, 10);
      return Value::Varchar(status[r < 5 ? 1 : (r < 9 ? 0 : 2)]);
    }
    if (column == "totalprice") {
      return Value::Double(1000.0 +
                           static_cast<double>(pick(3, 450000)) / 1.7);
    }
    if (column == "orderdate") {
      return Value::Date(start_1992 + pick(4, 2400));
    }
    if (column == "orderpriority") return Value::Varchar(kPriorities[pick(5, 5)]);
    if (column == "shippriority") return Value::Bigint(0);
  } else if (table == "lineitem") {
    int64_t orderkey = row / kLinesPerOrder;
    if (column == "orderkey") return Value::Bigint(orderkey);
    if (column == "linenumber") return Value::Bigint(row % kLinesPerOrder + 1);
    if (column == "partkey") return Value::Bigint(pick(1, total_parts));
    if (column == "suppkey") return Value::Bigint(pick(2, total_suppliers));
    if (column == "quantity") return Value::Bigint(1 + pick(3, 50));
    if (column == "extendedprice") {
      return Value::Double(900.0 + static_cast<double>(pick(4, 95000)) / 1.1);
    }
    if (column == "discount") {
      return Value::Double(static_cast<double>(pick(5, 11)) / 100.0);
    }
    if (column == "tax") {
      return Value::Double(static_cast<double>(pick(6, 9)) / 100.0);
    }
    if (column == "returnflag") {
      const char* flags[] = {"A", "N", "R"};
      return Value::Varchar(flags[pick(7, 3)]);
    }
    if (column == "linestatus") {
      return Value::Varchar(pick(8, 2) == 0 ? "F" : "O");
    }
    if (column == "shipdate") return Value::Date(start_1992 + pick(9, 2500));
    if (column == "commitdate") return Value::Date(start_1992 + pick(10, 2500));
    if (column == "receiptdate") {
      return Value::Date(start_1992 + pick(9, 2500) + 1 + pick(11, 30));
    }
    if (column == "shipinstruct") {
      return Value::Varchar(kShipInstructs[pick(12, 4)]);
    }
    if (column == "shipmode") return Value::Varchar(kShipModes[pick(13, 7)]);
  } else if (table == "customer") {
    if (column == "custkey") return Value::Bigint(row);
    if (column == "name") {
      return Value::Varchar("Customer#" + std::to_string(row));
    }
    if (column == "nationkey") return Value::Bigint(pick(1, kNations));
    if (column == "mktsegment") return Value::Varchar(kSegments[pick(2, 5)]);
    if (column == "acctbal") {
      return Value::Double(-999.0 + static_cast<double>(pick(3, 10999)));
    }
  } else if (table == "part") {
    if (column == "partkey") return Value::Bigint(row);
    if (column == "name") return Value::Varchar("part " + std::to_string(row));
    if (column == "brand") return Value::Varchar(kBrands[pick(1, 10)]);
    if (column == "type") return Value::Varchar(kTypes[pick(2, 8)]);
    if (column == "size") return Value::Bigint(1 + pick(3, 50));
    if (column == "retailprice") {
      return Value::Double(900.0 + static_cast<double>(row % 1000));
    }
  } else if (table == "supplier") {
    if (column == "suppkey") return Value::Bigint(row);
    if (column == "name") {
      return Value::Varchar("Supplier#" + std::to_string(row));
    }
    if (column == "nationkey") return Value::Bigint(pick(1, kNations));
    if (column == "acctbal") {
      return Value::Double(-999.0 + static_cast<double>(pick(2, 10999)));
    }
  } else if (table == "partsupp") {
    if (column == "partkey") return Value::Bigint(row / 4);
    if (column == "suppkey") {
      return Value::Bigint((row / 4 + (row % 4) * (total_suppliers / 4 + 1)) %
                           total_suppliers);
    }
    if (column == "availqty") return Value::Bigint(1 + pick(1, 9999));
    if (column == "supplycost") {
      return Value::Double(1.0 + static_cast<double>(pick(2, 99900)) / 100.0);
    }
  } else if (table == "nation") {
    if (column == "nationkey") return Value::Bigint(row);
    if (column == "name") {
      return Value::Varchar(kNationNames[row % kNations]);
    }
    if (column == "regionkey") return Value::Bigint(row % kRegions);
  } else if (table == "region") {
    if (column == "regionkey") return Value::Bigint(row);
    if (column == "name") return Value::Varchar(kRegionNames[row % kRegions]);
  }
  PRESTO_UNREACHABLE();
}

class TpchDataSource final : public DataSource {
 public:
  TpchDataSource(TableDef def, int64_t begin, int64_t end,
                 std::vector<int> columns, int64_t total_customers,
                 int64_t total_parts, int64_t total_suppliers)
      : def_(std::move(def)),
        pos_(begin),
        end_(end),
        columns_(std::move(columns)),
        total_customers_(total_customers),
        total_parts_(total_parts),
        total_suppliers_(total_suppliers) {}

  Result<std::optional<Page>> NextPage() override {
    if (pos_ >= end_) return std::optional<Page>();
    int64_t batch = std::min<int64_t>(4096, end_ - pos_);
    std::vector<TypeKind> types;
    for (int c : columns_) {
      types.push_back(def_.schema.at(static_cast<size_t>(c)).type);
    }
    PageBuilder builder(types);
    for (int64_t r = pos_; r < pos_ + batch; ++r) {
      for (size_t i = 0; i < columns_.size(); ++i) {
        const std::string& column =
            def_.schema.at(static_cast<size_t>(columns_[i])).name;
        builder.column(i).AppendValue(
            GenerateCell(def_.table, column, r, total_customers_,
                         total_parts_, total_suppliers_));
      }
      builder.CommitRow();
    }
    pos_ += batch;
    bytes_ += batch * 32;
    return std::optional<Page>(builder.Build());
  }

  int64_t bytes_read() const override { return bytes_; }

 private:
  TableDef def_;
  int64_t pos_;
  int64_t end_;
  std::vector<int> columns_;
  int64_t total_customers_;
  int64_t total_parts_;
  int64_t total_suppliers_;
  int64_t bytes_ = 0;
};

}  // namespace

class TpchConnector::Metadata final : public ConnectorMetadata {
 public:
  explicit Metadata(TpchConnector* parent) : parent_(parent) {
    double sf = parent_->scale_;
    auto scaled = [sf](int64_t base) {
      return std::max<int64_t>(1, static_cast<int64_t>(
                                      static_cast<double>(base) * sf));
    };
    int64_t customers = scaled(kCustomers);
    int64_t orders = customers * kOrdersPerCustomer;
    int64_t parts = scaled(kParts);
    int64_t suppliers = scaled(kSuppliers);
    auto add = [this](const std::string& table,
                      std::vector<std::pair<std::string, TypeKind>> cols,
                      int64_t rows) {
      TableDef def;
      def.table = table;
      for (auto& [n, t] : cols) def.schema.Add(n, t);
      def.rows = rows;
      tables_[table] = std::move(def);
    };
    using TK = TypeKind;
    add("orders",
        {{"orderkey", TK::kBigint},
         {"custkey", TK::kBigint},
         {"orderstatus", TK::kVarchar},
         {"totalprice", TK::kDouble},
         {"orderdate", TK::kDate},
         {"orderpriority", TK::kVarchar},
         {"shippriority", TK::kBigint}},
        orders);
    add("lineitem",
        {{"orderkey", TK::kBigint},
         {"partkey", TK::kBigint},
         {"suppkey", TK::kBigint},
         {"linenumber", TK::kBigint},
         {"quantity", TK::kBigint},
         {"extendedprice", TK::kDouble},
         {"discount", TK::kDouble},
         {"tax", TK::kDouble},
         {"returnflag", TK::kVarchar},
         {"linestatus", TK::kVarchar},
         {"shipdate", TK::kDate},
         {"commitdate", TK::kDate},
         {"receiptdate", TK::kDate},
         {"shipinstruct", TK::kVarchar},
         {"shipmode", TK::kVarchar}},
        orders * kLinesPerOrder);
    add("customer",
        {{"custkey", TK::kBigint},
         {"name", TK::kVarchar},
         {"nationkey", TK::kBigint},
         {"mktsegment", TK::kVarchar},
         {"acctbal", TK::kDouble}},
        customers);
    add("part",
        {{"partkey", TK::kBigint},
         {"name", TK::kVarchar},
         {"brand", TK::kVarchar},
         {"type", TK::kVarchar},
         {"size", TK::kBigint},
         {"retailprice", TK::kDouble}},
        parts);
    add("supplier",
        {{"suppkey", TK::kBigint},
         {"name", TK::kVarchar},
         {"nationkey", TK::kBigint},
         {"acctbal", TK::kDouble}},
        suppliers);
    add("partsupp",
        {{"partkey", TK::kBigint},
         {"suppkey", TK::kBigint},
         {"availqty", TK::kBigint},
         {"supplycost", TK::kDouble}},
        parts * 4);
    add("nation",
        {{"nationkey", TK::kBigint},
         {"name", TK::kVarchar},
         {"regionkey", TK::kBigint}},
        kNations);
    add("region", {{"regionkey", TK::kBigint}, {"name", TK::kVarchar}},
        kRegions);
  }

  std::vector<std::string> ListTables() const override {
    std::vector<std::string> names;
    for (const auto& [name, _] : tables_) names.push_back(name);
    return names;
  }

  Result<TableHandlePtr> GetTable(const std::string& name) const override {
    auto it = tables_.find(name);
    if (it == tables_.end()) {
      return Status::NotFound("tpch table not found: " + name);
    }
    return TableHandlePtr(std::make_shared<TpchTableHandle>(it->second));
  }

  Result<TableStats> GetStats(const TableHandle& table) const override {
    auto it = tables_.find(table.name());
    if (it == tables_.end()) {
      return Status::NotFound("tpch table not found: " + table.name());
    }
    const TableDef& def = it->second;
    TableStats stats;
    stats.row_count = def.rows;
    // Analytic NDV estimates.
    for (const auto& col : def.schema.columns()) {
      ColumnStats cs;
      if (col.name == "orderkey" && def.table == "orders") {
        cs.distinct_values = def.rows;
      } else if (col.name == "orderkey") {
        cs.distinct_values = def.rows / kLinesPerOrder;
      } else if (col.name == "custkey" || col.name == "partkey" ||
                 col.name == "suppkey" || col.name == "nationkey" ||
                 col.name == "regionkey") {
        auto parent = tables_.find(
            col.name == "custkey"
                ? "customer"
                : col.name == "partkey"
                      ? "part"
                      : col.name == "suppkey"
                            ? "supplier"
                            : col.name == "nationkey" ? "nation" : "region");
        cs.distinct_values =
            std::min(def.rows, parent != tables_.end() ? parent->second.rows
                                                       : def.rows);
      } else if (col.type == TypeKind::kVarchar) {
        cs.distinct_values = 8;
      } else if (col.type == TypeKind::kDate) {
        cs.distinct_values = 2500;
      } else {
        cs.distinct_values = std::min<int64_t>(def.rows, 100000);
      }
      stats.columns[col.name] = std::move(cs);
    }
    return stats;
  }

  const std::map<std::string, TableDef>& tables() const { return tables_; }

 private:
  TpchConnector* parent_;
  std::map<std::string, TableDef> tables_;
};

TpchConnector::TpchConnector(std::string name, double scale)
    : name_(std::move(name)),
      scale_(scale),
      metadata_(std::make_unique<Metadata>(this)) {}

TpchConnector::~TpchConnector() = default;

ConnectorMetadata& TpchConnector::metadata() { return *metadata_; }

Result<int64_t> TpchConnector::RowCount(const std::string& table) const {
  auto it = metadata_->tables().find(table);
  if (it == metadata_->tables().end()) {
    return Status::NotFound("tpch table not found: " + table);
  }
  return it->second.rows;
}

Result<std::unique_ptr<SplitSource>> TpchConnector::GetSplits(
    const ScanSpec& spec) {
  const auto* handle = dynamic_cast<const TpchTableHandle*>(spec.table.get());
  if (handle == nullptr) return Status::InvalidArgument("not a tpch table");
  int64_t rows = handle->def().rows;
  int64_t per_split =
      std::max<int64_t>(4096, rows / std::max(1, spec.num_workers * 4));
  std::vector<SplitPtr> splits;
  for (int64_t begin = 0; begin < rows; begin += per_split) {
    splits.push_back(std::make_shared<TpchSplit>(
        handle->name(), begin, std::min(rows, begin + per_split)));
  }
  return std::unique_ptr<SplitSource>(
      new VectorSplitSource(std::move(splits)));
}

Result<std::unique_ptr<DataSource>> TpchConnector::CreateDataSource(
    const Split& split, const ScanSpec& spec) {
  const auto* tpch_split = dynamic_cast<const TpchSplit*>(&split);
  const auto* handle = dynamic_cast<const TpchTableHandle*>(spec.table.get());
  if (tpch_split == nullptr || handle == nullptr) {
    return Status::InvalidArgument("not a tpch split/table");
  }
  const auto& tables = metadata_->tables();
  return std::unique_ptr<DataSource>(new TpchDataSource(
      handle->def(), tpch_split->begin(), tpch_split->end(), spec.columns,
      tables.at("customer").rows, tables.at("part").rows,
      tables.at("supplier").rows));
}

Result<std::string> TpchConnector::SerializeSplit(const Split& split) const {
  const auto* tpch_split = dynamic_cast<const TpchSplit*>(&split);
  if (tpch_split == nullptr) {
    return Status::InvalidArgument("not a tpch split");
  }
  Json out = Json::Object();
  out.Set("table", Json::Str(tpch_split->table()))
      .Set("begin", Json::Int(tpch_split->begin()))
      .Set("end", Json::Int(tpch_split->end()));
  return out.Serialize();
}

Result<SplitPtr> TpchConnector::DeserializeSplit(
    const std::string& data) const {
  PRESTO_ASSIGN_OR_RETURN(Json json, Json::Parse(data));
  PRESTO_ASSIGN_OR_RETURN(std::string table, json.GetString("table"));
  PRESTO_ASSIGN_OR_RETURN(int64_t begin, json.GetInt("begin"));
  PRESTO_ASSIGN_OR_RETURN(int64_t end, json.GetInt("end"));
  return SplitPtr(std::make_shared<TpchSplit>(std::move(table), begin, end));
}

}  // namespace presto
