#ifndef PRESTOCPP_CONNECTORS_SHARDEDSTORE_SHARDED_STORE_H_
#define PRESTOCPP_CONNECTORS_SHARDEDSTORE_SHARDED_STORE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "connector/connector.h"

namespace presto {

struct ShardedStoreConfig {
  int num_shards = 8;
  /// Per-split latency modeling one MySQL round trip.
  int64_t query_latency_micros = 200;
};

/// The sharded-MySQL-style connector behind the Developer/Advertiser
/// Analytics tools (§IV-C2): "the connector divides data into shards that
/// are stored in individual MySQL instances, and can push range or point
/// predicates all the way down to individual shards, ensuring that only
/// matching data is ever read". Tables are sharded on one column; indexed
/// columns support exact pushdown of point/range/IN predicates via ordered
/// per-shard indexes; a point predicate on the shard column routes the
/// query to a single shard.
class ShardedStoreConnector final : public Connector {
 public:
  explicit ShardedStoreConnector(std::string name = "mysql",
                                 ShardedStoreConfig config = {});
  ~ShardedStoreConnector() override;

  const std::string& name() const override { return name_; }
  ConnectorMetadata& metadata() override;

  /// Creates a table sharded on `shard_column` with ordered indexes on
  /// `index_columns` (the shard column is always indexed).
  Status CreateTable(const std::string& table_name, RowSchema schema,
                     const std::string& shard_column,
                     std::vector<std::string> index_columns);

  Status LoadTable(const std::string& table_name,
                   const std::vector<Page>& pages);

  /// Rows actually read from shards (to verify pushdown selectivity).
  int64_t rows_read() const { return rows_read_.load(); }

  Result<std::unique_ptr<SplitSource>> GetSplits(
      const ScanSpec& spec) override;

  Result<std::unique_ptr<DataSource>> CreateDataSource(
      const Split& split, const ScanSpec& spec) override;

  Result<std::string> SerializeSplit(const Split& split) const override;
  Result<SplitPtr> DeserializeSplit(const std::string& data) const override;

 private:
  class Metadata;
  friend class Metadata;

  struct Shard {
    std::vector<std::vector<Value>> rows;
    // Ordered index per indexed column: (value, row id) sorted by value.
    std::map<std::string, std::vector<std::pair<Value, int64_t>>> indexes;
  };

  struct TableInfo {
    RowSchema schema;
    std::string shard_column;
    std::vector<std::string> index_columns;
    std::vector<std::shared_ptr<Shard>> shards;
    TableStats stats;
  };

  std::string name_;
  ShardedStoreConfig config_;
  std::unique_ptr<Metadata> metadata_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<TableInfo>> tables_;
  mutable std::atomic<int64_t> rows_read_{0};
};

}  // namespace presto

#endif  // PRESTOCPP_CONNECTORS_SHARDEDSTORE_SHARDED_STORE_H_
