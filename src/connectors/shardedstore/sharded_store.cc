#include "connectors/shardedstore/sharded_store.h"

#include <algorithm>
#include <set>
#include <thread>

#include "common/check.h"
#include "common/json.h"
#include "vector/block_builder.h"

namespace presto {

namespace {

class ShardedTableHandle final : public TableHandle {
 public:
  ShardedTableHandle(std::string name, RowSchema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}
  const std::string& name() const override { return name_; }
  const RowSchema& schema() const override { return schema_; }

 private:
  std::string name_;
  RowSchema schema_;
};

class ShardSplit final : public Split {
 public:
  ShardSplit(std::string table, int shard)
      : table_(std::move(table)), shard_(shard) {}
  const std::string& table() const { return table_; }
  int shard() const { return shard_; }
  std::string ToString() const override {
    return "shard:" + table_ + "/" + std::to_string(shard_);
  }

 private:
  std::string table_;
  int shard_;
};

class VectorSplitSource final : public SplitSource {
 public:
  explicit VectorSplitSource(std::vector<SplitPtr> splits)
      : splits_(std::move(splits)) {}
  Result<std::vector<SplitPtr>> NextBatch(int max_batch) override {
    std::vector<SplitPtr> out;
    while (pos_ < splits_.size() && static_cast<int>(out.size()) < max_batch) {
      out.push_back(splits_[pos_++]);
    }
    return out;
  }

 private:
  std::vector<SplitPtr> splits_;
  size_t pos_ = 0;
};

// True if `v` satisfies `pred`.
bool Matches(const Value& v, const ColumnPredicate& pred) {
  if (v.is_null()) return false;
  switch (pred.op) {
    case ColumnPredicate::Op::kEq:
      return v.SqlEquals(pred.values[0]);
    case ColumnPredicate::Op::kNeq:
      return !v.SqlEquals(pred.values[0]);
    case ColumnPredicate::Op::kLt:
      return v.Compare(pred.values[0]) < 0;
    case ColumnPredicate::Op::kLte:
      return v.Compare(pred.values[0]) <= 0;
    case ColumnPredicate::Op::kGt:
      return v.Compare(pred.values[0]) > 0;
    case ColumnPredicate::Op::kGte:
      return v.Compare(pred.values[0]) >= 0;
    case ColumnPredicate::Op::kIn:
      for (const auto& item : pred.values) {
        if (v.SqlEquals(item)) return true;
      }
      return false;
  }
  return false;
}

// One page of selected columns from boxed rows.
class RowsDataSource final : public DataSource {
 public:
  RowsDataSource(std::vector<std::vector<Value>> rows,
                 std::vector<TypeKind> types, std::vector<int> columns,
                 int64_t latency_micros)
      : rows_(std::move(rows)),
        types_(std::move(types)),
        columns_(std::move(columns)),
        latency_micros_(latency_micros) {}

  Result<std::optional<Page>> NextPage() override {
    if (done_) return std::optional<Page>();
    done_ = true;
    if (latency_micros_ > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(latency_micros_));
    }
    if (rows_.empty()) return std::optional<Page>();
    std::vector<TypeKind> out_types;
    for (int c : columns_) out_types.push_back(types_[static_cast<size_t>(c)]);
    PageBuilder builder(out_types);
    for (const auto& row : rows_) {
      std::vector<Value> projected;
      projected.reserve(columns_.size());
      for (int c : columns_) projected.push_back(row[static_cast<size_t>(c)]);
      builder.AppendRow(projected);
    }
    return std::optional<Page>(builder.Build());
  }

 private:
  std::vector<std::vector<Value>> rows_;
  std::vector<TypeKind> types_;
  std::vector<int> columns_;
  int64_t latency_micros_;
  bool done_ = false;
};

}  // namespace

class ShardedStoreConnector::Metadata final : public ConnectorMetadata {
 public:
  explicit Metadata(ShardedStoreConnector* parent) : parent_(parent) {}

  std::vector<std::string> ListTables() const override {
    std::lock_guard<std::mutex> lock(parent_->mu_);
    std::vector<std::string> names;
    for (const auto& [name, _] : parent_->tables_) names.push_back(name);
    return names;
  }

  Result<TableHandlePtr> GetTable(const std::string& name) const override {
    std::lock_guard<std::mutex> lock(parent_->mu_);
    auto it = parent_->tables_.find(name);
    if (it == parent_->tables_.end()) {
      return Status::NotFound("sharded table not found: " + name);
    }
    return TableHandlePtr(
        std::make_shared<ShardedTableHandle>(name, it->second->schema));
  }

  Result<TableStats> GetStats(const TableHandle& table) const override {
    std::lock_guard<std::mutex> lock(parent_->mu_);
    auto it = parent_->tables_.find(table.name());
    if (it == parent_->tables_.end()) {
      return Status::NotFound("sharded table not found: " + table.name());
    }
    return it->second->stats;
  }

  std::vector<DataLayout> GetLayouts(const TableHandle& table) const override {
    std::lock_guard<std::mutex> lock(parent_->mu_);
    auto it = parent_->tables_.find(table.name());
    if (it == parent_->tables_.end()) return {};
    DataLayout layout;
    layout.id = "indexed";
    layout.index_columns = it->second->index_columns;
    return {layout};
  }

  PushdownSupport GetPushdownSupport(
      const TableHandle& table, const ColumnPredicate& pred) const override {
    std::lock_guard<std::mutex> lock(parent_->mu_);
    auto it = parent_->tables_.find(table.name());
    if (it == parent_->tables_.end()) return PushdownSupport::kUnsupported;
    const auto& indexed = it->second->index_columns;
    // Predicates on indexed columns are enforced exactly inside the shards
    // (§IV-C2: "only matching data is ever read").
    if (std::find(indexed.begin(), indexed.end(), pred.column) !=
        indexed.end()) {
      return PushdownSupport::kExact;
    }
    return PushdownSupport::kUnsupported;
  }

  /// Connector-level mutators (CreateTable/LoadTable) funnel through this
  /// to reach the protected version bump.
  void Bump(const std::string& table) { BumpTableVersion(table); }

 private:
  ShardedStoreConnector* parent_;
};

ShardedStoreConnector::ShardedStoreConnector(std::string name,
                                             ShardedStoreConfig config)
    : name_(std::move(name)),
      config_(config),
      metadata_(std::make_unique<Metadata>(this)) {}

ShardedStoreConnector::~ShardedStoreConnector() = default;

ConnectorMetadata& ShardedStoreConnector::metadata() { return *metadata_; }

Status ShardedStoreConnector::CreateTable(
    const std::string& table_name, RowSchema schema,
    const std::string& shard_column,
    std::vector<std::string> index_columns) {
  if (!schema.IndexOf(shard_column).has_value()) {
    return Status::InvalidArgument("shard column not in schema: " +
                                   shard_column);
  }
  for (const auto& col : index_columns) {
    if (!schema.IndexOf(col).has_value()) {
      return Status::InvalidArgument("index column not in schema: " + col);
    }
  }
  if (std::find(index_columns.begin(), index_columns.end(), shard_column) ==
      index_columns.end()) {
    index_columns.push_back(shard_column);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto info = std::make_shared<TableInfo>();
    info->schema = std::move(schema);
    info->shard_column = shard_column;
    info->index_columns = std::move(index_columns);
    for (int s = 0; s < config_.num_shards; ++s) {
      info->shards.push_back(std::make_shared<Shard>());
    }
    tables_[table_name] = std::move(info);
  }
  metadata_->Bump(table_name);
  return Status::OK();
}

Status ShardedStoreConnector::LoadTable(const std::string& table_name,
                                        const std::vector<Page>& pages) {
  std::shared_ptr<TableInfo> info;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tables_.find(table_name);
    if (it == tables_.end()) {
      return Status::NotFound("sharded table not found: " + table_name);
    }
    info = it->second;
  }
  size_t shard_col = *info->schema.IndexOf(info->shard_column);
  size_t ncols = info->schema.size();
  TableStats stats;
  stats.row_count = 0;
  std::vector<std::set<std::string>> distinct(ncols);
  std::vector<Value> mins(ncols), maxs(ncols);
  for (const auto& page : pages) {
    for (int64_t r = 0; r < page.num_rows(); ++r) {
      std::vector<Value> row = page.GetRow(r);
      ++stats.row_count;
      for (size_t c = 0; c < ncols; ++c) {
        if (row[c].is_null()) continue;
        if (distinct[c].size() < 200000) distinct[c].insert(row[c].ToString());
        if (mins[c].is_null() || row[c].Compare(mins[c]) < 0) mins[c] = row[c];
        if (maxs[c].is_null() || row[c].Compare(maxs[c]) > 0) maxs[c] = row[c];
      }
      auto shard = static_cast<size_t>(
          row[shard_col].Hash() %
          static_cast<uint64_t>(config_.num_shards));
      info->shards[shard]->rows.push_back(std::move(row));
    }
  }
  // (Re)build ordered indexes.
  for (auto& shard : info->shards) {
    shard->indexes.clear();
    for (const auto& col : info->index_columns) {
      size_t idx = *info->schema.IndexOf(col);
      auto& index = shard->indexes[col];
      index.clear();
      for (size_t r = 0; r < shard->rows.size(); ++r) {
        index.emplace_back(shard->rows[r][idx], static_cast<int64_t>(r));
      }
      std::stable_sort(index.begin(), index.end(),
                       [](const auto& a, const auto& b) {
                         return a.first.Compare(b.first) < 0;
                       });
    }
  }
  for (size_t c = 0; c < ncols; ++c) {
    ColumnStats cs;
    cs.distinct_values = static_cast<int64_t>(distinct[c].size());
    cs.min = mins[c];
    cs.max = maxs[c];
    stats.columns[info->schema.at(c).name] = std::move(cs);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    info->stats = std::move(stats);
  }
  metadata_->Bump(table_name);
  return Status::OK();
}

Result<std::unique_ptr<SplitSource>> ShardedStoreConnector::GetSplits(
    const ScanSpec& spec) {
  const TableHandle& table = *spec.table;
  std::shared_ptr<TableInfo> info;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tables_.find(table.name());
    if (it == tables_.end()) {
      return Status::NotFound("sharded table not found: " + table.name());
    }
    info = it->second;
  }
  // Shard routing: a point/IN predicate on the shard column limits the
  // splits to the owning shards.
  std::optional<std::set<int>> keep;
  for (const auto& pred : spec.predicates) {
    if (pred.column != info->shard_column) continue;
    if (pred.op == ColumnPredicate::Op::kEq ||
        pred.op == ColumnPredicate::Op::kIn) {
      std::set<int> shards;
      for (const auto& v : pred.values) {
        shards.insert(static_cast<int>(
            v.Hash() % static_cast<uint64_t>(config_.num_shards)));
      }
      keep = std::move(shards);
    }
  }
  std::vector<SplitPtr> splits;
  for (int s = 0; s < config_.num_shards; ++s) {
    if (keep.has_value() && keep->count(s) == 0) continue;
    splits.push_back(std::make_shared<ShardSplit>(table.name(), s));
  }
  return std::unique_ptr<SplitSource>(
      new VectorSplitSource(std::move(splits)));
}

Result<std::unique_ptr<DataSource>> ShardedStoreConnector::CreateDataSource(
    const Split& split, const ScanSpec& spec) {
  const TableHandle& table = *spec.table;
  const std::vector<int>& columns = spec.columns;
  const std::vector<ColumnPredicate>& predicates = spec.predicates;
  const auto* shard_split = dynamic_cast<const ShardSplit*>(&split);
  if (shard_split == nullptr) {
    return Status::InvalidArgument("not a shard split");
  }
  std::shared_ptr<TableInfo> info;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tables_.find(table.name());
    if (it == tables_.end()) {
      return Status::NotFound("sharded table not found: " + table.name());
    }
    info = it->second;
  }
  const Shard& shard =
      *info->shards[static_cast<size_t>(shard_split->shard())];

  // Pick an indexed equality/range predicate to drive candidate lookup.
  std::vector<int64_t> candidates;
  bool used_index = false;
  for (const auto& pred : predicates) {
    auto idx_it = shard.indexes.find(pred.column);
    if (idx_it == shard.indexes.end()) continue;
    const auto& index = idx_it->second;
    auto lower = [&](const Value& v) {
      return std::lower_bound(index.begin(), index.end(), v,
                              [](const auto& entry, const Value& key) {
                                return entry.first.Compare(key) < 0;
                              });
    };
    auto upper = [&](const Value& v) {
      return std::upper_bound(index.begin(), index.end(), v,
                              [](const Value& key, const auto& entry) {
                                return key.Compare(entry.first) < 0;
                              });
    };
    std::vector<int64_t> hits;
    switch (pred.op) {
      case ColumnPredicate::Op::kEq:
        for (auto it = lower(pred.values[0]); it != upper(pred.values[0]);
             ++it) {
          hits.push_back(it->second);
        }
        break;
      case ColumnPredicate::Op::kIn:
        for (const auto& v : pred.values) {
          for (auto it = lower(v); it != upper(v); ++it) {
            hits.push_back(it->second);
          }
        }
        break;
      case ColumnPredicate::Op::kLt:
      case ColumnPredicate::Op::kLte: {
        auto end = pred.op == ColumnPredicate::Op::kLt
                       ? lower(pred.values[0])
                       : upper(pred.values[0]);
        for (auto it = index.begin(); it != end; ++it) {
          hits.push_back(it->second);
        }
        break;
      }
      case ColumnPredicate::Op::kGt:
      case ColumnPredicate::Op::kGte: {
        auto begin = pred.op == ColumnPredicate::Op::kGt
                         ? upper(pred.values[0])
                         : lower(pred.values[0]);
        for (auto it = begin; it != index.end(); ++it) {
          hits.push_back(it->second);
        }
        break;
      }
      default:
        continue;
    }
    candidates = std::move(hits);
    used_index = true;
    break;
  }
  if (!used_index) {
    candidates.resize(shard.rows.size());
    for (size_t r = 0; r < shard.rows.size(); ++r) {
      candidates[r] = static_cast<int64_t>(r);
    }
  }
  // Verify every pushed predicate exactly (the connector promised kExact).
  std::vector<std::vector<Value>> rows;
  for (int64_t r : candidates) {
    const auto& row = shard.rows[static_cast<size_t>(r)];
    bool ok = true;
    for (const auto& pred : predicates) {
      auto col = info->schema.IndexOf(pred.column);
      if (!col.has_value()) continue;
      if (!Matches(row[*col], pred)) {
        ok = false;
        break;
      }
    }
    if (ok) rows.push_back(row);
  }
  rows_read_.fetch_add(static_cast<int64_t>(rows.size()));
  std::vector<TypeKind> types;
  for (const auto& col : info->schema.columns()) types.push_back(col.type);
  return std::unique_ptr<DataSource>(
      new RowsDataSource(std::move(rows), std::move(types), columns,
                         config_.query_latency_micros));
}

Result<std::string> ShardedStoreConnector::SerializeSplit(
    const Split& split) const {
  const auto* shard_split = dynamic_cast<const ShardSplit*>(&split);
  if (shard_split == nullptr) {
    return Status::InvalidArgument("not a shardedstore split");
  }
  Json out = Json::Object();
  out.Set("table", Json::Str(shard_split->table()))
      .Set("shard", Json::Int(shard_split->shard()));
  return out.Serialize();
}

Result<SplitPtr> ShardedStoreConnector::DeserializeSplit(
    const std::string& data) const {
  PRESTO_ASSIGN_OR_RETURN(Json json, Json::Parse(data));
  PRESTO_ASSIGN_OR_RETURN(std::string table, json.GetString("table"));
  PRESTO_ASSIGN_OR_RETURN(int64_t shard, json.GetInt("shard"));
  return SplitPtr(std::make_shared<ShardSplit>(std::move(table),
                                               static_cast<int>(shard)));
}

}  // namespace presto
