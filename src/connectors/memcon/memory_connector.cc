#include "connectors/memcon/memory_connector.h"

#include <set>

#include "common/check.h"
#include "common/json.h"
#include "vector/block_builder.h"

namespace presto {

namespace {

class MemoryTableHandle final : public TableHandle {
 public:
  MemoryTableHandle(std::string name, RowSchema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}
  const std::string& name() const override { return name_; }
  const RowSchema& schema() const override { return schema_; }

 private:
  std::string name_;
  RowSchema schema_;
};

class MemorySplit final : public Split {
 public:
  MemorySplit(std::string table, size_t begin, size_t end)
      : table_(std::move(table)), begin_(begin), end_(end) {}
  const std::string& table() const { return table_; }
  size_t begin() const { return begin_; }
  size_t end() const { return end_; }
  std::string ToString() const override {
    return "memory:" + table_ + "[" + std::to_string(begin_) + "," +
           std::to_string(end_) + ")";
  }

 private:
  std::string table_;
  size_t begin_;
  size_t end_;
};

class VectorSplitSource final : public SplitSource {
 public:
  explicit VectorSplitSource(std::vector<SplitPtr> splits)
      : splits_(std::move(splits)) {}
  Result<std::vector<SplitPtr>> NextBatch(int max_batch) override {
    std::vector<SplitPtr> out;
    while (pos_ < splits_.size() && static_cast<int>(out.size()) < max_batch) {
      out.push_back(splits_[pos_++]);
    }
    return out;
  }

 private:
  std::vector<SplitPtr> splits_;
  size_t pos_ = 0;
};

class MemoryDataSource final : public DataSource {
 public:
  MemoryDataSource(std::shared_ptr<const std::vector<Page>> pages,
                   size_t begin, size_t end, std::vector<int> columns)
      : pages_(std::move(pages)),
        pos_(begin),
        end_(end),
        columns_(std::move(columns)) {}

  Result<std::optional<Page>> NextPage() override {
    if (pos_ >= end_) return std::optional<Page>{};
    const Page& page = (*pages_)[pos_++];
    std::vector<BlockPtr> blocks;
    blocks.reserve(columns_.size());
    for (int c : columns_) {
      blocks.push_back(page.block(static_cast<size_t>(c)));
    }
    bytes_ += page.SizeInBytes();
    return std::optional<Page>(Page(std::move(blocks), page.num_rows()));
  }

  int64_t bytes_read() const override { return bytes_; }

 private:
  std::shared_ptr<const std::vector<Page>> pages_;
  size_t pos_;
  size_t end_;
  std::vector<int> columns_;
  int64_t bytes_ = 0;
};

}  // namespace

class MemoryConnector::Metadata final : public ConnectorMetadata {
 public:
  explicit Metadata(MemoryConnector* parent) : parent_(parent) {}

  std::vector<std::string> ListTables() const override {
    std::lock_guard<std::mutex> lock(parent_->mu_);
    std::vector<std::string> names;
    for (const auto& [name, _] : parent_->tables_) names.push_back(name);
    return names;
  }

  Result<TableHandlePtr> GetTable(const std::string& name) const override {
    std::lock_guard<std::mutex> lock(parent_->mu_);
    auto it = parent_->tables_.find(name);
    if (it == parent_->tables_.end()) {
      return Status::NotFound("memory table not found: " + name);
    }
    return TableHandlePtr(
        std::make_shared<MemoryTableHandle>(name, it->second->schema));
  }

  Result<TableStats> GetStats(const TableHandle& table) const override {
    std::shared_ptr<TableData> data;
    {
      std::lock_guard<std::mutex> lock(parent_->mu_);
      auto it = parent_->tables_.find(table.name());
      if (it == parent_->tables_.end()) {
        return Status::NotFound("memory table not found: " + table.name());
      }
      data = it->second;
    }
    TableStats stats;
    stats.row_count = 0;
    const RowSchema& schema = data->schema;
    std::vector<std::set<std::string>> distinct(schema.size());
    std::vector<int64_t> nulls(schema.size(), 0);
    std::vector<Value> mins(schema.size());
    std::vector<Value> maxs(schema.size());
    for (const auto& page : data->pages) {
      stats.row_count += page.num_rows();
      for (size_t c = 0; c < schema.size(); ++c) {
        const auto& block = page.block(c);
        for (int64_t r = 0; r < page.num_rows(); ++r) {
          Value v = block->GetValue(r);
          if (v.is_null()) {
            ++nulls[c];
            continue;
          }
          if (distinct[c].size() < 100000) distinct[c].insert(v.ToString());
          if (mins[c].is_null() || v.Compare(mins[c]) < 0) mins[c] = v;
          if (maxs[c].is_null() || v.Compare(maxs[c]) > 0) maxs[c] = v;
        }
      }
    }
    for (size_t c = 0; c < schema.size(); ++c) {
      ColumnStats cs;
      cs.distinct_values = static_cast<int64_t>(distinct[c].size());
      cs.null_fraction =
          stats.row_count == 0
              ? 0.0
              : static_cast<double>(nulls[c]) /
                    static_cast<double>(stats.row_count);
      cs.min = mins[c];
      cs.max = maxs[c];
      stats.columns[schema.at(c).name] = std::move(cs);
    }
    return stats;
  }

  Result<TableHandlePtr> BeginCreateTable(const std::string& name,
                                          const RowSchema& schema) override {
    {
      std::lock_guard<std::mutex> lock(parent_->mu_);
      auto data = std::make_shared<TableData>();
      data->schema = schema;
      data->pending = true;
      parent_->tables_[name] = data;
    }
    BumpTableVersion(name);
    return TableHandlePtr(std::make_shared<MemoryTableHandle>(name, schema));
  }

  Status FinishWrite(const TableHandle& table) override {
    {
      std::lock_guard<std::mutex> lock(parent_->mu_);
      auto it = parent_->tables_.find(table.name());
      if (it == parent_->tables_.end()) {
        return Status::NotFound("memory table not found: " + table.name());
      }
      it->second->pending = false;
    }
    // The write commit: cached plans/splits/stats for this table are stale
    // the moment this returns.
    BumpTableVersion(table.name());
    return Status::OK();
  }

  /// Connector-level mutators (fixture CreateTable) funnel through this to
  /// reach the protected version bump.
  void Bump(const std::string& table) { BumpTableVersion(table); }

 private:
  MemoryConnector* parent_;
};

namespace {

class MemoryDataSink final : public DataSink {
 public:
  MemoryDataSink(std::mutex* mu, std::vector<Page>* pages)
      : mu_(mu), pages_(pages) {}

  Status Append(const Page& page) override {
    rows_ += page.num_rows();
    std::lock_guard<std::mutex> lock(*mu_);
    pages_->push_back(page.Flatten());
    return Status::OK();
  }

  Result<int64_t> Finish() override { return rows_; }

 private:
  std::mutex* mu_;
  std::vector<Page>* pages_;
  int64_t rows_ = 0;
};

}  // namespace

MemoryConnector::MemoryConnector(std::string name)
    : name_(std::move(name)),
      metadata_(std::make_unique<Metadata>(this)) {}

MemoryConnector::~MemoryConnector() = default;

ConnectorMetadata& MemoryConnector::metadata() { return *metadata_; }

Status MemoryConnector::CreateTable(const std::string& table_name,
                                    RowSchema schema,
                                    std::vector<Page> pages) {
  for (const auto& page : pages) {
    if (page.num_columns() != schema.size()) {
      return Status::InvalidArgument("page width does not match schema");
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto data = std::make_shared<TableData>();
    data->schema = std::move(schema);
    data->pages = std::move(pages);
    tables_[table_name] = std::move(data);
  }
  metadata_->Bump(table_name);
  return Status::OK();
}

Result<int64_t> MemoryConnector::RowCount(const std::string& table_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(table_name);
  if (it == tables_.end()) {
    return Status::NotFound("memory table not found: " + table_name);
  }
  int64_t rows = 0;
  for (const auto& page : it->second->pages) rows += page.num_rows();
  return rows;
}

Result<std::vector<Page>> MemoryConnector::GetPages(
    const std::string& table_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(table_name);
  if (it == tables_.end()) {
    return Status::NotFound("memory table not found: " + table_name);
  }
  return it->second->pages;
}

Result<std::unique_ptr<SplitSource>> MemoryConnector::GetSplits(
    const ScanSpec& spec) {
  const TableHandle& table = *spec.table;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(table.name());
  if (it == tables_.end()) {
    return Status::NotFound("memory table not found: " + table.name());
  }
  // One split per page keeps scheduling exercised even for small tables.
  std::vector<SplitPtr> splits;
  size_t count = it->second->pages.size();
  for (size_t i = 0; i < count; ++i) {
    splits.push_back(std::make_shared<MemorySplit>(table.name(), i, i + 1));
  }
  return std::unique_ptr<SplitSource>(
      new VectorSplitSource(std::move(splits)));
}

Result<std::unique_ptr<DataSource>> MemoryConnector::CreateDataSource(
    const Split& split, const ScanSpec& spec) {
  const TableHandle& table = *spec.table;
  const std::vector<int>& columns = spec.columns;
  const auto* mem_split = dynamic_cast<const MemorySplit*>(&split);
  if (mem_split == nullptr) {
    return Status::InvalidArgument("not a memory split");
  }
  std::shared_ptr<TableData> data;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tables_.find(table.name());
    if (it == tables_.end()) {
      return Status::NotFound("memory table not found: " + table.name());
    }
    data = it->second;
  }
  // Snapshot the pages pointer: TableData::pages is stable while reads run
  // (writers only create new tables).
  auto pages = std::shared_ptr<const std::vector<Page>>(data, &data->pages);
  return std::unique_ptr<DataSource>(new MemoryDataSource(
      std::move(pages), mem_split->begin(), mem_split->end(), columns));
}

Result<std::unique_ptr<DataSink>> MemoryConnector::CreateDataSink(
    const TableHandle& table, int writer_id) {
  (void)writer_id;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(table.name());
  if (it == tables_.end()) {
    return Status::NotFound("memory table not found: " + table.name());
  }
  return std::unique_ptr<DataSink>(
      new MemoryDataSink(&mu_, &it->second->pages));
}

Result<std::string> MemoryConnector::SerializeSplit(const Split& split) const {
  const auto* mem_split = dynamic_cast<const MemorySplit*>(&split);
  if (mem_split == nullptr) {
    return Status::InvalidArgument("not a memory split");
  }
  Json out = Json::Object();
  out.Set("table", Json::Str(mem_split->table()))
      .Set("begin", Json::Int(static_cast<int64_t>(mem_split->begin())))
      .Set("end", Json::Int(static_cast<int64_t>(mem_split->end())));
  return out.Serialize();
}

Result<SplitPtr> MemoryConnector::DeserializeSplit(
    const std::string& data) const {
  PRESTO_ASSIGN_OR_RETURN(Json json, Json::Parse(data));
  PRESTO_ASSIGN_OR_RETURN(std::string table, json.GetString("table"));
  PRESTO_ASSIGN_OR_RETURN(int64_t begin, json.GetInt("begin"));
  PRESTO_ASSIGN_OR_RETURN(int64_t end, json.GetInt("end"));
  return SplitPtr(std::make_shared<MemorySplit>(std::move(table),
                                                static_cast<size_t>(begin),
                                                static_cast<size_t>(end)));
}

}  // namespace presto
