#ifndef PRESTOCPP_CONNECTORS_MEMCON_MEMORY_CONNECTOR_H_
#define PRESTOCPP_CONNECTORS_MEMCON_MEMORY_CONNECTOR_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "connector/connector.h"

namespace presto {

/// A minimal in-memory connector: tables are vectors of pages. Used by the
/// quickstart example and as the fixture connector in unit tests. Computes
/// exact table/column statistics on demand so the cost-based optimizer can
/// be exercised without the hive substrate.
class MemoryConnector final : public Connector {
 public:
  explicit MemoryConnector(std::string name = "memory");
  ~MemoryConnector() override;

  const std::string& name() const override { return name_; }
  ConnectorMetadata& metadata() override;

  /// Registers (or replaces) a table with the given data.
  Status CreateTable(const std::string& table_name, RowSchema schema,
                     std::vector<Page> pages);

  /// Total rows in a table (testing convenience).
  Result<int64_t> RowCount(const std::string& table_name) const;

  /// All pages of a table (testing convenience).
  Result<std::vector<Page>> GetPages(const std::string& table_name) const;

  Result<std::unique_ptr<SplitSource>> GetSplits(
      const ScanSpec& spec) override;

  Result<std::unique_ptr<DataSource>> CreateDataSource(
      const Split& split, const ScanSpec& spec) override;

  Result<std::unique_ptr<DataSink>> CreateDataSink(const TableHandle& table,
                                                   int writer_id) override;

  Result<std::string> SerializeSplit(const Split& split) const override;
  Result<SplitPtr> DeserializeSplit(const std::string& data) const override;

 private:
  class Metadata;
  friend class Metadata;

  struct TableData {
    RowSchema schema;
    std::vector<Page> pages;
    bool pending = false;  // CTAS target not yet committed
  };

  std::string name_;
  std::unique_ptr<Metadata> metadata_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<TableData>> tables_;
};

}  // namespace presto

#endif  // PRESTOCPP_CONNECTORS_MEMCON_MEMORY_CONNECTOR_H_
