#include "connectors/raptor/raptor_connector.h"

#include <algorithm>
#include <numeric>
#include <set>

#include "common/check.h"
#include "common/json.h"
#include "vector/block_builder.h"

namespace presto {

namespace {

class RaptorTableHandle final : public TableHandle {
 public:
  RaptorTableHandle(std::string name, RowSchema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}
  const std::string& name() const override { return name_; }
  const RowSchema& schema() const override { return schema_; }

 private:
  std::string name_;
  RowSchema schema_;
};

class RaptorSplit final : public Split {
 public:
  RaptorSplit(std::string file, int bucket, int worker)
      : file_(std::move(file)), bucket_(bucket), worker_(worker) {}
  const std::string& file() const { return file_; }
  int bucket() const { return bucket_; }
  int preferred_worker() const override { return worker_; }
  bool hard_affinity() const override { return true; }
  std::string ToString() const override {
    return "raptor:" + file_ + " bucket=" + std::to_string(bucket_);
  }

 private:
  std::string file_;
  int bucket_;
  int worker_;
};

class VectorSplitSource final : public SplitSource {
 public:
  explicit VectorSplitSource(std::vector<SplitPtr> splits)
      : splits_(std::move(splits)) {}
  Result<std::vector<SplitPtr>> NextBatch(int max_batch) override {
    std::vector<SplitPtr> out;
    while (pos_ < splits_.size() && static_cast<int>(out.size()) < max_batch) {
      out.push_back(splits_[pos_++]);
    }
    return out;
  }

 private:
  std::vector<SplitPtr> splits_;
  size_t pos_ = 0;
};

class RaptorDataSource final : public DataSource {
 public:
  RaptorDataSource(std::unique_ptr<StorcReader> reader, const MiniDfs* dfs,
                   int64_t bytes_before)
      : reader_(std::move(reader)), dfs_(dfs), bytes_before_(bytes_before) {}
  Result<std::optional<Page>> NextPage() override {
    return reader_->NextPage();
  }
  int64_t bytes_read() const override {
    return dfs_->total_bytes_read() - bytes_before_;
  }

 private:
  std::unique_ptr<StorcReader> reader_;
  const MiniDfs* dfs_;
  int64_t bytes_before_;
};

std::string LayoutId(const std::string& column, int buckets) {
  return "bucketed:" + column + ":" + std::to_string(buckets);
}

}  // namespace

class RaptorConnector::Metadata final : public ConnectorMetadata {
 public:
  explicit Metadata(RaptorConnector* parent) : parent_(parent) {}

  std::vector<std::string> ListTables() const override {
    std::lock_guard<std::mutex> lock(parent_->mu_);
    std::vector<std::string> names;
    for (const auto& [name, _] : parent_->tables_) names.push_back(name);
    return names;
  }

  Result<TableHandlePtr> GetTable(const std::string& name) const override {
    std::lock_guard<std::mutex> lock(parent_->mu_);
    auto it = parent_->tables_.find(name);
    if (it == parent_->tables_.end()) {
      return Status::NotFound("raptor table not found: " + name);
    }
    return TableHandlePtr(
        std::make_shared<RaptorTableHandle>(name, it->second->schema));
  }

  Result<TableStats> GetStats(const TableHandle& table) const override {
    std::lock_guard<std::mutex> lock(parent_->mu_);
    auto it = parent_->tables_.find(table.name());
    if (it == parent_->tables_.end()) {
      return Status::NotFound("raptor table not found: " + table.name());
    }
    return it->second->stats;
  }

  std::vector<DataLayout> GetLayouts(const TableHandle& table) const override {
    std::lock_guard<std::mutex> lock(parent_->mu_);
    auto it = parent_->tables_.find(table.name());
    if (it == parent_->tables_.end()) return {};
    const TableInfo& info = *it->second;
    DataLayout layout;
    layout.id = LayoutId(info.bucket_column, info.bucket_count);
    layout.partition_columns = {info.bucket_column};
    layout.bucket_count = info.bucket_count;
    if (!info.sort_column.empty()) {
      layout.sort_columns = {info.sort_column};
    }
    return {layout};
  }

  PushdownSupport GetPushdownSupport(
      const TableHandle&, const ColumnPredicate&) const override {
    return PushdownSupport::kInexact;  // stripe statistics pruning
  }

  /// Connector-level mutators (CreateTable/LoadTable) funnel through this
  /// to reach the protected version bump.
  void Bump(const std::string& table) { BumpTableVersion(table); }

 private:
  RaptorConnector* parent_;
};

RaptorConnector::RaptorConnector(std::string name, RaptorConfig config)
    : name_(std::move(name)),
      config_(config),
      storage_(config.storage),
      metadata_(std::make_unique<Metadata>(this)) {}

RaptorConnector::~RaptorConnector() = default;

ConnectorMetadata& RaptorConnector::metadata() { return *metadata_; }

Status RaptorConnector::CreateTable(const std::string& table_name,
                                    RowSchema schema,
                                    const std::string& bucket_column,
                                    int bucket_count,
                                    const std::string& sort_column) {
  if (!schema.IndexOf(bucket_column).has_value()) {
    return Status::InvalidArgument("bucket column not in schema: " +
                                   bucket_column);
  }
  if (!sort_column.empty() && !schema.IndexOf(sort_column).has_value()) {
    return Status::InvalidArgument("sort column not in schema: " +
                                   sort_column);
  }
  if (bucket_count <= 0) {
    return Status::InvalidArgument("bucket count must be positive");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto info = std::make_shared<TableInfo>();
    info->schema = std::move(schema);
    info->bucket_column = bucket_column;
    info->bucket_count = bucket_count;
    info->sort_column = sort_column;
    info->bucket_files.assign(static_cast<size_t>(bucket_count), "");
    tables_[table_name] = std::move(info);
  }
  metadata_->Bump(table_name);
  return Status::OK();
}

Status RaptorConnector::LoadTable(const std::string& table_name,
                                  const std::vector<Page>& pages) {
  std::shared_ptr<TableInfo> info;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tables_.find(table_name);
    if (it == tables_.end()) {
      return Status::NotFound("raptor table not found: " + table_name);
    }
    info = it->second;
  }
  size_t ncols = info->schema.size();
  size_t bcol = *info->schema.IndexOf(info->bucket_column);
  // Route rows into buckets by the hash of the bucket column (the same hash
  // both tables of a co-located join use).
  std::vector<std::vector<std::vector<Value>>> buckets(
      static_cast<size_t>(info->bucket_count));
  for (const auto& page : pages) {
    for (int64_t r = 0; r < page.num_rows(); ++r) {
      Value key = page.block(bcol)->GetValue(r);
      auto bucket = static_cast<size_t>(
          key.Hash() % static_cast<uint64_t>(info->bucket_count));
      buckets[bucket].push_back(page.GetRow(r));
    }
  }
  // Stats over everything loaded.
  TableStats stats;
  stats.row_count = 0;
  std::vector<std::set<std::string>> distinct(ncols);
  std::vector<int64_t> nulls(ncols, 0);
  std::vector<Value> mins(ncols), maxs(ncols);

  std::vector<TypeKind> types;
  for (const auto& col : info->schema.columns()) types.push_back(col.type);
  auto sort_col = info->sort_column.empty()
                      ? std::optional<size_t>()
                      : info->schema.IndexOf(info->sort_column);
  for (int b = 0; b < info->bucket_count; ++b) {
    auto& rows = buckets[static_cast<size_t>(b)];
    if (sort_col.has_value()) {
      std::stable_sort(rows.begin(), rows.end(),
                       [&](const auto& x, const auto& y) {
                         return x[*sort_col].Compare(y[*sort_col]) < 0;
                       });
    }
    StorcWriter writer(info->schema, config_.stripe_rows);
    PageBuilder builder(types);
    for (const auto& row : rows) {
      builder.AppendRow(row);
      ++stats.row_count;
      for (size_t c = 0; c < ncols; ++c) {
        const Value& v = row[c];
        if (v.is_null()) {
          ++nulls[c];
          continue;
        }
        if (distinct[c].size() < 200000) distinct[c].insert(v.ToString());
        if (mins[c].is_null() || v.Compare(mins[c]) < 0) mins[c] = v;
        if (maxs[c].is_null() || v.Compare(maxs[c]) > 0) maxs[c] = v;
      }
      if (builder.num_rows() >= 4096) writer.Append(builder.Build());
    }
    if (builder.num_rows() > 0) writer.Append(builder.Build());
    std::string path = "/raptor/" + table_name + "/bucket-" +
                       std::to_string(b) + ".storc";
    PRESTO_RETURN_IF_ERROR(storage_.Write(path, writer.Finish()));
    std::lock_guard<std::mutex> lock(mu_);
    info->bucket_files[static_cast<size_t>(b)] = path;
  }
  for (size_t c = 0; c < ncols; ++c) {
    ColumnStats cs;
    cs.distinct_values = static_cast<int64_t>(distinct[c].size());
    cs.null_fraction = stats.row_count == 0
                           ? 0.0
                           : static_cast<double>(nulls[c]) /
                                 static_cast<double>(stats.row_count);
    cs.min = mins[c];
    cs.max = maxs[c];
    stats.columns[info->schema.at(c).name] = std::move(cs);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    info->stats = std::move(stats);
  }
  metadata_->Bump(table_name);
  return Status::OK();
}

Result<std::unique_ptr<SplitSource>> RaptorConnector::GetSplits(
    const ScanSpec& spec) {
  const TableHandle& table = *spec.table;
  std::shared_ptr<TableInfo> info;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tables_.find(table.name());
    if (it == tables_.end()) {
      return Status::NotFound("raptor table not found: " + table.name());
    }
    info = it->second;
  }
  std::vector<SplitPtr> splits;
  for (int b = 0; b < info->bucket_count; ++b) {
    const std::string& file = info->bucket_files[static_cast<size_t>(b)];
    if (file.empty()) continue;
    int worker = spec.num_workers > 0 ? b % spec.num_workers : 0;
    splits.push_back(std::make_shared<RaptorSplit>(file, b, worker));
  }
  return std::unique_ptr<SplitSource>(
      new VectorSplitSource(std::move(splits)));
}

Result<std::unique_ptr<DataSource>> RaptorConnector::CreateDataSource(
    const Split& split, const ScanSpec& spec) {
  const auto* raptor_split = dynamic_cast<const RaptorSplit*>(&split);
  if (raptor_split == nullptr) {
    return Status::InvalidArgument("not a raptor split");
  }
  int64_t bytes_before = storage_.total_bytes_read();
  PRESTO_ASSIGN_OR_RETURN(StorcFooter footer,
                          ReadStorcFooter(storage_, raptor_split->file()));
  auto reader = std::make_unique<StorcReader>(
      &storage_, raptor_split->file(), std::move(footer), spec.columns,
      spec.predicates,
      /*lazy=*/true, nullptr);
  return std::unique_ptr<DataSource>(
      new RaptorDataSource(std::move(reader), &storage_, bytes_before));
}

Result<std::string> RaptorConnector::SerializeSplit(const Split& split) const {
  const auto* raptor_split = dynamic_cast<const RaptorSplit*>(&split);
  if (raptor_split == nullptr) {
    return Status::InvalidArgument("not a raptor split");
  }
  Json out = Json::Object();
  out.Set("file", Json::Str(raptor_split->file()))
      .Set("bucket", Json::Int(raptor_split->bucket()))
      .Set("worker", Json::Int(raptor_split->preferred_worker()));
  return out.Serialize();
}

Result<SplitPtr> RaptorConnector::DeserializeSplit(
    const std::string& data) const {
  PRESTO_ASSIGN_OR_RETURN(Json json, Json::Parse(data));
  PRESTO_ASSIGN_OR_RETURN(std::string file, json.GetString("file"));
  PRESTO_ASSIGN_OR_RETURN(int64_t bucket, json.GetInt("bucket"));
  PRESTO_ASSIGN_OR_RETURN(int64_t worker, json.GetInt("worker"));
  return SplitPtr(std::make_shared<RaptorSplit>(
      std::move(file), static_cast<int>(bucket), static_cast<int>(worker)));
}

}  // namespace presto
