#ifndef PRESTOCPP_CONNECTORS_RAPTOR_RAPTOR_CONNECTOR_H_
#define PRESTOCPP_CONNECTORS_RAPTOR_RAPTOR_CONNECTOR_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "connector/connector.h"
#include "connectors/hive/minidfs.h"
#include "connectors/hive/storc.h"

namespace presto {

/// Raptor configuration: local flash — near-zero latency, high bandwidth.
struct RaptorConfig {
  DfsConfig storage{/*read_latency_micros=*/5,
                    /*bytes_per_second=*/8LL << 30,
                    /*list_latency_micros=*/0};
  int64_t stripe_rows = 16384;
};

/// The Raptor-style storage engine (§IV-D2): "a storage engine optimized
/// for Presto with a shared-nothing architecture that stores ORC files on
/// flash disks and metadata in MySQL". Tables are bucketed by one column;
/// each bucket is a storc file pinned to a specific worker (hard split
/// affinity), optionally sorted within buckets. Bucketed layouts are
/// exposed through the Data Layout API, enabling co-located joins (§IV-C3)
/// for the A/B-testing workload. Statistics are maintained at load time.
class RaptorConnector final : public Connector {
 public:
  explicit RaptorConnector(std::string name = "raptor",
                           RaptorConfig config = {});
  ~RaptorConnector() override;

  const std::string& name() const override { return name_; }
  ConnectorMetadata& metadata() override;
  MiniDfs& storage() { return storage_; }

  /// Creates a bucketed (and optionally sorted) table.
  Status CreateTable(const std::string& table_name, RowSchema schema,
                     const std::string& bucket_column, int bucket_count,
                     const std::string& sort_column = "");

  /// Loads pages: rows are hashed into buckets; buckets are (re)written as
  /// storc files with fresh statistics.
  Status LoadTable(const std::string& table_name,
                   const std::vector<Page>& pages);

  Result<std::unique_ptr<SplitSource>> GetSplits(
      const ScanSpec& spec) override;

  Result<std::unique_ptr<DataSource>> CreateDataSource(
      const Split& split, const ScanSpec& spec) override;

  Result<std::string> SerializeSplit(const Split& split) const override;
  Result<SplitPtr> DeserializeSplit(const std::string& data) const override;

 private:
  class Metadata;
  friend class Metadata;

  struct TableInfo {
    RowSchema schema;
    std::string bucket_column;
    int bucket_count = 0;
    std::string sort_column;
    std::vector<std::string> bucket_files;  // file per bucket ("" = empty)
    TableStats stats;
  };

  std::string name_;
  RaptorConfig config_;
  MiniDfs storage_;
  std::unique_ptr<Metadata> metadata_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<TableInfo>> tables_;
};

}  // namespace presto

#endif  // PRESTOCPP_CONNECTORS_RAPTOR_RAPTOR_CONNECTOR_H_
