#ifndef PRESTOCPP_EXPR_EXPRESSION_H_
#define PRESTOCPP_EXPR_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "types/type.h"
#include "types/value.h"

namespace presto {

struct ScalarFunction;

/// Node kinds in the typed (post-analysis) expression IR. Most operations
/// are kCall nodes resolved against the function registry; kinds exist only
/// for forms with special evaluation semantics (short-circuit three-valued
/// AND/OR, CASE branch laziness, IN null handling, null-tolerant
/// IS NULL / COALESCE).
enum class ExprKind : uint8_t {
  kColumnRef,  // input column by index
  kLiteral,    // constant Value
  kCall,       // scalar function from the registry
  kCast,       // type conversion; target is type()
  kAnd,        // n-ary three-valued AND
  kOr,         // n-ary three-valued OR
  kCase,       // searched CASE: [c1,v1,c2,v2,...][,else]
  kIn,         // children[0] IN children[1..]
  kIsNull,     // children[0] IS NULL (never returns NULL itself)
  kCoalesce,   // first non-null child
};

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// An immutable, typed expression tree node. Produced by the analyzer;
/// consumed by the interpreter (row-at-a-time), the compiled vectorized
/// evaluator, and the optimizer (constant folding, pushdown analysis).
class Expr {
 public:
  Expr(ExprKind kind, TypeKind type) : kind_(kind), type_(type) {}

  ExprKind kind() const { return kind_; }
  TypeKind type() const { return type_; }

  /// kColumnRef: index into the input schema.
  int column() const { return column_; }
  /// kLiteral: the constant value.
  const Value& literal() const { return literal_; }
  /// kCall: the resolved function.
  const ScalarFunction* function() const { return function_; }
  const std::vector<ExprPtr>& children() const { return children_; }
  /// kCase: whether an ELSE branch is present (last child).
  bool has_else() const { return has_else_; }

  /// Display form used by EXPLAIN and tests, e.g. "(#0 + 3)".
  std::string ToString() const;

  // ---- Factories ----
  static ExprPtr MakeColumn(int index, TypeKind type);
  static ExprPtr MakeLiteral(Value value);
  static ExprPtr MakeCall(const ScalarFunction* fn,
                          std::vector<ExprPtr> children);
  static ExprPtr MakeCast(TypeKind target, ExprPtr input);
  static ExprPtr MakeAnd(std::vector<ExprPtr> children);
  static ExprPtr MakeOr(std::vector<ExprPtr> children);
  static ExprPtr MakeCase(std::vector<ExprPtr> children, bool has_else,
                          TypeKind type);
  static ExprPtr MakeIn(std::vector<ExprPtr> children);
  static ExprPtr MakeIsNull(ExprPtr input);
  static ExprPtr MakeCoalesce(std::vector<ExprPtr> children, TypeKind type);

 private:
  ExprKind kind_;
  TypeKind type_;
  int column_ = -1;
  Value literal_;
  const ScalarFunction* function_ = nullptr;
  std::vector<ExprPtr> children_;
  bool has_else_ = false;
};

/// True if the tree contains no kColumnRef (foldable to a constant).
bool IsConstantExpr(const Expr& expr);

/// Collects the set of referenced input columns into `columns` (dedup'd,
/// ascending).
void CollectReferencedColumns(const Expr& expr, std::vector<int>* columns);

/// Rewrites column references through `mapping` (old index -> new index);
/// mapping[i] == -1 is a programming error for referenced columns.
ExprPtr RemapColumns(const ExprPtr& expr, const std::vector<int>& mapping);

/// Replaces each column reference #i with `replacements[i]` (used to push
/// predicates through projections by inlining the projected expressions).
ExprPtr ReplaceColumnsWithExprs(const ExprPtr& expr,
                                const std::vector<ExprPtr>& replacements);

/// Rebuilds `expr` with new children (same kind/metadata).
ExprPtr ExprWithChildren(const Expr& expr, std::vector<ExprPtr> children);

}  // namespace presto

#endif  // PRESTOCPP_EXPR_EXPRESSION_H_
