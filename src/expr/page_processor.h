#ifndef PRESTOCPP_EXPR_PAGE_PROCESSOR_H_
#define PRESTOCPP_EXPR_PAGE_PROCESSOR_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "expr/evaluator.h"
#include "expr/expression.h"
#include "vector/page.h"

namespace presto {

/// Applies a filter and a list of projections to pages, operating directly
/// on compressed (dictionary/RLE) data where possible (§V-E):
///  - a projection or filter over a dictionary-encoded column is evaluated
///    once per dictionary entry, then rewrapped with the original indices;
///  - when successive blocks share a dictionary, the evaluated dictionary
///    results are reused without recomputation;
///  - the speculation heuristic tracks rows produced vs. dictionary entries
///    processed and stops taking the dictionary path when dictionaries stop
///    paying for themselves (more entries than rows).
class PageProcessor {
 public:
  /// Counters for the §V-E compressed-execution experiment.
  struct Stats {
    int64_t pages_in = 0;
    int64_t rows_in = 0;
    int64_t rows_out = 0;
    int64_t dict_path_hits = 0;     // expressions evaluated via dictionary
    int64_t dict_path_reuses = 0;   // shared-dictionary result reuse
    int64_t rle_path_hits = 0;      // expressions evaluated once for a run
    int64_t flat_evals = 0;         // full-width evaluations
  };

  /// `filter` may be null (no filtering). Projections define output columns.
  PageProcessor(ExprPtr filter, std::vector<ExprPtr> projections,
                EvalMode mode);

  /// Transforms one input page into one output page (possibly empty).
  Result<Page> Process(const Page& input);

  const Stats& stats() const { return stats_; }

 private:
  // Evaluates `expr` over `page`, taking dictionary/RLE fast paths when the
  // expression depends on a single encoded column. `slot` identifies the
  // projection for shared-dictionary reuse (-1 for the filter).
  Result<BlockPtr> EvalWithFastPaths(const ExprPtr& expr, const Page& page,
                                     int slot);

  bool ShouldProcessDictionary(int64_t dict_size, int64_t rows) const;

  ExprPtr filter_;
  std::vector<ExprPtr> projections_;
  EvalMode mode_;
  Stats stats_;

  // Speculation heuristic counters (§V-E).
  int64_t dict_entries_processed_ = 0;
  int64_t dict_rows_produced_ = 0;

  // Shared-dictionary memoization: last dictionary seen per slot and the
  // evaluated result over it.
  struct DictCacheEntry {
    const Block* dictionary = nullptr;
    BlockPtr result;
  };
  std::vector<DictCacheEntry> dict_cache_;
};

}  // namespace presto

#endif  // PRESTOCPP_EXPR_PAGE_PROCESSOR_H_
