#include "expr/page_processor.h"

#include "vector/decoded_block.h"
#include "vector/encoded_block.h"

namespace presto {

namespace {

// If `expr` references exactly one column, returns it; otherwise nullopt.
std::optional<int> SingleReferencedColumn(const Expr& expr) {
  std::vector<int> cols;
  CollectReferencedColumns(expr, &cols);
  if (cols.size() == 1) return cols[0];
  return std::nullopt;
}

// Resolves lazy wrappers without materializing (only the wrapper chain).
const Block* PeekEncoding(const BlockPtr& block) { return block.get(); }

}  // namespace

PageProcessor::PageProcessor(ExprPtr filter, std::vector<ExprPtr> projections,
                             EvalMode mode)
    : filter_(std::move(filter)),
      projections_(std::move(projections)),
      mode_(mode) {
  dict_cache_.resize(projections_.size() + 1);
}

bool PageProcessor::ShouldProcessDictionary(int64_t dict_size,
                                            int64_t rows) const {
  if (dict_size <= rows) return true;
  // Speculate that unreferenced dictionary entries will be used by later
  // blocks sharing the dictionary, as long as history supports it: the
  // cumulative rows produced per dictionary entry processed stays >= 1.
  return dict_rows_produced_ >= dict_entries_processed_;
}

Result<BlockPtr> PageProcessor::EvalWithFastPaths(const ExprPtr& expr,
                                                  const Page& page,
                                                  int slot) {
  int64_t rows = page.num_rows();
  if (mode_ == EvalMode::kCompiled) {
    if (auto col = SingleReferencedColumn(*expr)) {
      const BlockPtr& block = page.block(static_cast<size_t>(*col));
      const Block* enc = PeekEncoding(block);
      if (enc->encoding() == BlockEncoding::kDictionary) {
        const auto* dict_block = static_cast<const DictionaryBlock*>(enc);
        const BlockPtr& dictionary = dict_block->dictionary();
        int64_t dict_size = dictionary->size();
        if (ShouldProcessDictionary(dict_size, rows)) {
          DictCacheEntry& cache = dict_cache_[static_cast<size_t>(slot + 1)];
          BlockPtr evaluated;
          if (cache.dictionary == dictionary.get() && cache.result) {
            evaluated = cache.result;
            ++stats_.dict_path_reuses;
          } else {
            // Evaluate the expression once per dictionary entry: remap the
            // referenced column to index 0 of a single-column page holding
            // the dictionary.
            std::vector<int> mapping(static_cast<size_t>(*col) + 1, -1);
            mapping[static_cast<size_t>(*col)] = 0;
            ExprPtr remapped = RemapColumns(expr, mapping);
            Page dict_page({dictionary});
            ExprEvaluator eval(remapped, mode_);
            PRESTO_ASSIGN_OR_RETURN(evaluated, eval.Eval(dict_page));
            cache.dictionary = dictionary.get();
            cache.result = evaluated;
            dict_entries_processed_ += dict_size;
            ++stats_.dict_path_hits;
          }
          dict_rows_produced_ += rows;
          if (evaluated->encoding() == BlockEncoding::kFlat ||
              evaluated->encoding() == BlockEncoding::kVarchar) {
            return BlockPtr(std::make_shared<DictionaryBlock>(
                evaluated, dict_block->indices()));
          }
          // The kernel returned an encoded block (e.g. RLE); flatten so the
          // dictionary wrap stays canonical.
          return BlockPtr(std::make_shared<DictionaryBlock>(
              evaluated->Flatten(), dict_block->indices()));
        }
      } else if (enc->encoding() == BlockEncoding::kRle) {
        // Evaluate once over the run value and rewrap.
        const auto* rle = static_cast<const RleBlock*>(enc);
        std::vector<int> mapping(static_cast<size_t>(*col) + 1, -1);
        mapping[static_cast<size_t>(*col)] = 0;
        ExprPtr remapped = RemapColumns(expr, mapping);
        Page one_page({rle->value_block()});
        ExprEvaluator eval(remapped, mode_);
        PRESTO_ASSIGN_OR_RETURN(BlockPtr evaluated, eval.Eval(one_page));
        ++stats_.rle_path_hits;
        return BlockPtr(
            std::make_shared<RleBlock>(evaluated->Flatten(), rows));
      }
    }
  }
  ++stats_.flat_evals;
  ExprEvaluator eval(expr, mode_);
  return eval.Eval(page);
}

Result<Page> PageProcessor::Process(const Page& input) {
  ++stats_.pages_in;
  stats_.rows_in += input.num_rows();
  Page filtered = input;
  if (filter_ != nullptr) {
    PRESTO_ASSIGN_OR_RETURN(BlockPtr mask,
                            EvalWithFastPaths(filter_, input, -1));
    DecodedBlock d;
    d.Decode(mask);
    std::vector<int32_t> positions;
    positions.reserve(static_cast<size_t>(input.num_rows()));
    for (int64_t i = 0; i < input.num_rows(); ++i) {
      if (!d.IsNull(i) && d.ValueAt<uint8_t>(i) != 0) {
        positions.push_back(static_cast<int32_t>(i));
      }
    }
    if (static_cast<int64_t>(positions.size()) != input.num_rows()) {
      // Preserve laziness (§V-D): columns not yet materialized stay lazy —
      // the positions are applied only if the column is ever touched.
      auto shared_positions =
          std::make_shared<std::vector<int32_t>>(std::move(positions));
      auto n = static_cast<int64_t>(shared_positions->size());
      std::vector<BlockPtr> blocks;
      blocks.reserve(input.num_columns());
      for (size_t c = 0; c < input.num_columns(); ++c) {
        const BlockPtr& block = input.block(c);
        if (block->encoding() == BlockEncoding::kLazy &&
            !static_cast<const LazyBlock&>(*block).loaded()) {
          blocks.push_back(std::make_shared<LazyBlock>(
              block->type(), n, [block, shared_positions, n]() {
                return block->CopyPositions(shared_positions->data(), n);
              }));
        } else {
          blocks.push_back(block->CopyPositions(shared_positions->data(), n));
        }
      }
      filtered = Page(std::move(blocks), n);
    }
  }
  std::vector<BlockPtr> out;
  out.reserve(projections_.size());
  for (size_t p = 0; p < projections_.size(); ++p) {
    PRESTO_ASSIGN_OR_RETURN(
        BlockPtr b,
        EvalWithFastPaths(projections_[p], filtered, static_cast<int>(p)));
    out.push_back(std::move(b));
  }
  stats_.rows_out += filtered.num_rows();
  return Page(std::move(out), filtered.num_rows());
}

}  // namespace presto
