#include "expr/evaluator.h"

#include <cstdlib>

#include "expr/function_registry.h"
#include "vector/block_builder.h"
#include "vector/decoded_block.h"
#include "vector/encoded_block.h"

namespace presto {

Value CastValue(TypeKind target, const Value& in) {
  if (in.is_null()) return Value::Null(target);
  if (in.type() == target) return in;
  switch (target) {
    case TypeKind::kBigint:
      switch (in.type()) {
        case TypeKind::kDouble:
          return Value::Bigint(static_cast<int64_t>(in.AsDouble()));
        case TypeKind::kBoolean:
          return Value::Bigint(in.AsBoolean() ? 1 : 0);
        case TypeKind::kDate:
          return Value::Bigint(in.AsDate());
        case TypeKind::kVarchar: {
          char* end = nullptr;
          const std::string& s = in.AsVarchar();
          long long v = std::strtoll(s.c_str(), &end, 10);
          if (end == s.c_str() || *end != '\0') {
            return Value::Null(TypeKind::kBigint);
          }
          return Value::Bigint(v);
        }
        default:
          return Value::Null(target);
      }
    case TypeKind::kDouble:
      switch (in.type()) {
        case TypeKind::kBigint:
          return Value::Double(static_cast<double>(in.AsBigint()));
        case TypeKind::kBoolean:
          return Value::Double(in.AsBoolean() ? 1.0 : 0.0);
        case TypeKind::kVarchar: {
          char* end = nullptr;
          const std::string& s = in.AsVarchar();
          double v = std::strtod(s.c_str(), &end);
          if (end == s.c_str() || *end != '\0') {
            return Value::Null(TypeKind::kDouble);
          }
          return Value::Double(v);
        }
        default:
          return Value::Null(target);
      }
    case TypeKind::kVarchar:
      switch (in.type()) {
        case TypeKind::kBigint:
          return Value::Varchar(std::to_string(in.AsBigint()));
        case TypeKind::kDouble:
          return Value::Varchar(Value::Double(in.AsDouble()).ToString());
        case TypeKind::kBoolean:
          return Value::Varchar(in.AsBoolean() ? "true" : "false");
        case TypeKind::kDate:
          return Value::Varchar(FormatDate(in.AsDate()));
        default:
          return Value::Null(target);
      }
    case TypeKind::kBoolean:
      switch (in.type()) {
        case TypeKind::kBigint:
          return Value::Boolean(in.AsBigint() != 0);
        case TypeKind::kVarchar: {
          const std::string& s = in.AsVarchar();
          if (s == "true" || s == "TRUE" || s == "t" || s == "1") {
            return Value::Boolean(true);
          }
          if (s == "false" || s == "FALSE" || s == "f" || s == "0") {
            return Value::Boolean(false);
          }
          return Value::Null(TypeKind::kBoolean);
        }
        default:
          return Value::Null(target);
      }
    case TypeKind::kDate:
      switch (in.type()) {
        case TypeKind::kBigint:
          return Value::Date(in.AsBigint());
        case TypeKind::kVarchar: {
          int64_t days = 0;
          if (!ParseDate(in.AsVarchar(), &days)) {
            return Value::Null(TypeKind::kDate);
          }
          return Value::Date(days);
        }
        default:
          return Value::Null(target);
      }
    default:
      return Value::Null(target);
  }
}

Result<Value> EvalExprRow(const Expr& expr, const Page& page, int64_t row) {
  switch (expr.kind()) {
    case ExprKind::kColumnRef:
      return page.block(static_cast<size_t>(expr.column()))->GetValue(row);
    case ExprKind::kLiteral:
      return expr.literal();
    case ExprKind::kCall: {
      const ScalarFunction* fn = expr.function();
      std::vector<Value> args;
      args.reserve(expr.children().size());
      for (const auto& c : expr.children()) {
        PRESTO_ASSIGN_OR_RETURN(Value v, EvalExprRow(*c, page, row));
        if (fn->null_propagating && v.is_null()) {
          return Value::Null(fn->return_type);
        }
        args.push_back(std::move(v));
      }
      return fn->eval_row(args);
    }
    case ExprKind::kCast: {
      PRESTO_ASSIGN_OR_RETURN(Value v,
                              EvalExprRow(*expr.children()[0], page, row));
      return CastValue(expr.type(), v);
    }
    case ExprKind::kAnd: {
      bool any_null = false;
      for (const auto& c : expr.children()) {
        PRESTO_ASSIGN_OR_RETURN(Value v, EvalExprRow(*c, page, row));
        if (v.is_null()) {
          any_null = true;
        } else if (!v.AsBoolean()) {
          return Value::Boolean(false);
        }
      }
      if (any_null) return Value::Null(TypeKind::kBoolean);
      return Value::Boolean(true);
    }
    case ExprKind::kOr: {
      bool any_null = false;
      for (const auto& c : expr.children()) {
        PRESTO_ASSIGN_OR_RETURN(Value v, EvalExprRow(*c, page, row));
        if (v.is_null()) {
          any_null = true;
        } else if (v.AsBoolean()) {
          return Value::Boolean(true);
        }
      }
      if (any_null) return Value::Null(TypeKind::kBoolean);
      return Value::Boolean(false);
    }
    case ExprKind::kCase: {
      size_t pair_count =
          (expr.children().size() - (expr.has_else() ? 1 : 0)) / 2;
      for (size_t p = 0; p < pair_count; ++p) {
        PRESTO_ASSIGN_OR_RETURN(
            Value cond, EvalExprRow(*expr.children()[2 * p], page, row));
        if (!cond.is_null() && cond.AsBoolean()) {
          PRESTO_ASSIGN_OR_RETURN(
              Value v, EvalExprRow(*expr.children()[2 * p + 1], page, row));
          return CastValue(expr.type(), v);
        }
      }
      if (expr.has_else()) {
        PRESTO_ASSIGN_OR_RETURN(
            Value v, EvalExprRow(*expr.children().back(), page, row));
        return CastValue(expr.type(), v);
      }
      return Value::Null(expr.type());
    }
    case ExprKind::kIn: {
      PRESTO_ASSIGN_OR_RETURN(Value needle,
                              EvalExprRow(*expr.children()[0], page, row));
      if (needle.is_null()) return Value::Null(TypeKind::kBoolean);
      bool any_null = false;
      for (size_t i = 1; i < expr.children().size(); ++i) {
        PRESTO_ASSIGN_OR_RETURN(Value v,
                                EvalExprRow(*expr.children()[i], page, row));
        if (v.is_null()) {
          any_null = true;
        } else if (needle.SqlEquals(v)) {
          return Value::Boolean(true);
        }
      }
      if (any_null) return Value::Null(TypeKind::kBoolean);
      return Value::Boolean(false);
    }
    case ExprKind::kIsNull: {
      PRESTO_ASSIGN_OR_RETURN(Value v,
                              EvalExprRow(*expr.children()[0], page, row));
      return Value::Boolean(v.is_null());
    }
    case ExprKind::kCoalesce: {
      for (const auto& c : expr.children()) {
        PRESTO_ASSIGN_OR_RETURN(Value v, EvalExprRow(*c, page, row));
        if (!v.is_null()) return CastValue(expr.type(), v);
      }
      return Value::Null(expr.type());
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<Value> EvalConstantExpr(const Expr& expr) {
  PRESTO_CHECK(IsConstantExpr(expr));
  Page empty({}, 1);
  return EvalExprRow(expr, empty, 0);
}

namespace {

// Vectorized CAST with fast paths for numeric conversions.
Result<BlockPtr> CastVector(TypeKind target, const BlockPtr& input,
                            int64_t rows) {
  if (input->type() == target) return input;
  DecodedBlock d;
  d.Decode(input);
  // Fast numeric paths.
  if (target == TypeKind::kDouble && (input->type() == TypeKind::kBigint ||
                                      input->type() == TypeKind::kDate)) {
    std::vector<double> values(static_cast<size_t>(rows));
    std::vector<uint8_t> nulls;
    bool any = d.MayHaveNulls();
    if (any) nulls.resize(static_cast<size_t>(rows), 0);
    for (int64_t i = 0; i < rows; ++i) {
      if (any && d.IsNull(i)) {
        nulls[static_cast<size_t>(i)] = 1;
      } else {
        values[static_cast<size_t>(i)] =
            static_cast<double>(d.ValueAt<int64_t>(i));
      }
    }
    return BlockPtr(std::make_shared<DoubleBlock>(
        TypeKind::kDouble, std::move(values), std::move(nulls)));
  }
  if (target == TypeKind::kBigint && input->type() == TypeKind::kDouble) {
    std::vector<int64_t> values(static_cast<size_t>(rows));
    std::vector<uint8_t> nulls;
    bool any = d.MayHaveNulls();
    if (any) nulls.resize(static_cast<size_t>(rows), 0);
    for (int64_t i = 0; i < rows; ++i) {
      if (any && d.IsNull(i)) {
        nulls[static_cast<size_t>(i)] = 1;
      } else {
        values[static_cast<size_t>(i)] =
            static_cast<int64_t>(d.ValueAt<double>(i));
      }
    }
    return BlockPtr(std::make_shared<LongBlock>(
        TypeKind::kBigint, std::move(values), std::move(nulls)));
  }
  // Generic boxed fallback.
  BlockBuilder builder(target);
  for (int64_t i = 0; i < rows; ++i) {
    builder.AppendValue(CastValue(target, d.GetValue(i)));
  }
  return builder.Build();
}

// Merges boolean child blocks under three-valued AND/OR.
BlockPtr MergeBoolean(bool is_and, const std::vector<BlockPtr>& children,
                      int64_t rows) {
  // result: 1 = true, 0 = false, 2 = null
  std::vector<uint8_t> state(static_cast<size_t>(rows), is_and ? 1 : 0);
  for (const auto& child : children) {
    DecodedBlock d;
    d.Decode(child);
    for (int64_t i = 0; i < rows; ++i) {
      uint8_t& s = state[static_cast<size_t>(i)];
      if (is_and) {
        if (s == 0) continue;  // already false
        if (d.IsNull(i)) {
          s = 2;
        } else if (d.ValueAt<uint8_t>(i) == 0) {
          s = 0;
        }
      } else {
        if (s == 1) continue;  // already true
        if (d.IsNull(i)) {
          s = 2;
        } else if (d.ValueAt<uint8_t>(i) != 0) {
          s = 1;
        }
      }
    }
  }
  std::vector<uint8_t> values(static_cast<size_t>(rows));
  std::vector<uint8_t> nulls(static_cast<size_t>(rows), 0);
  bool any_null = false;
  for (int64_t i = 0; i < rows; ++i) {
    uint8_t s = state[static_cast<size_t>(i)];
    if (s == 2) {
      nulls[static_cast<size_t>(i)] = 1;
      any_null = true;
    } else {
      values[static_cast<size_t>(i)] = s;
    }
  }
  if (!any_null) nulls.clear();
  return std::make_shared<ByteBlock>(TypeKind::kBoolean, std::move(values),
                                     std::move(nulls));
}

}  // namespace

Result<BlockPtr> ExprEvaluator::Eval(const Page& input) const {
  if (mode_ == EvalMode::kCompiled) return EvalVector(*expr_, input);
  // Interpreted: boxed row loop.
  BlockBuilder builder(expr_->type() == TypeKind::kUnknown
                           ? TypeKind::kBigint
                           : expr_->type());
  for (int64_t i = 0; i < input.num_rows(); ++i) {
    PRESTO_ASSIGN_OR_RETURN(Value v, EvalExprRow(*expr_, input, i));
    builder.AppendValue(v);
  }
  return builder.Build();
}

Result<BlockPtr> ExprEvaluator::EvalVector(const Expr& expr,
                                           const Page& input) const {
  int64_t rows = input.num_rows();
  switch (expr.kind()) {
    case ExprKind::kColumnRef:
      return input.block(static_cast<size_t>(expr.column()));
    case ExprKind::kLiteral:
      return MakeConstantBlock(expr.literal(), rows);
    case ExprKind::kCall: {
      std::vector<BlockPtr> args;
      args.reserve(expr.children().size());
      for (const auto& c : expr.children()) {
        PRESTO_ASSIGN_OR_RETURN(BlockPtr b, EvalVector(*c, input));
        args.push_back(std::move(b));
      }
      const ScalarFunction* fn = expr.function();
      if (fn->eval_vector) return fn->eval_vector(args, rows);
      // Fallback: boxed loop with null propagation.
      std::vector<DecodedBlock> decoded(args.size());
      for (size_t i = 0; i < args.size(); ++i) decoded[i].Decode(args[i]);
      BlockBuilder builder(fn->return_type);
      std::vector<Value> row_args(args.size());
      for (int64_t i = 0; i < rows; ++i) {
        bool null = false;
        if (fn->null_propagating) {
          for (const auto& d : decoded) {
            if (d.IsNull(i)) {
              null = true;
              break;
            }
          }
        }
        if (null) {
          builder.AppendNull();
          continue;
        }
        for (size_t a = 0; a < decoded.size(); ++a) {
          row_args[a] = decoded[a].GetValue(i);
        }
        builder.AppendValue(fn->eval_row(row_args));
      }
      return builder.Build();
    }
    case ExprKind::kCast: {
      PRESTO_ASSIGN_OR_RETURN(BlockPtr in,
                              EvalVector(*expr.children()[0], input));
      return CastVector(expr.type(), in, rows);
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      std::vector<BlockPtr> children;
      children.reserve(expr.children().size());
      for (const auto& c : expr.children()) {
        PRESTO_ASSIGN_OR_RETURN(BlockPtr b, EvalVector(*c, input));
        children.push_back(std::move(b));
      }
      return MergeBoolean(expr.kind() == ExprKind::kAnd, children, rows);
    }
    case ExprKind::kIsNull: {
      PRESTO_ASSIGN_OR_RETURN(BlockPtr in,
                              EvalVector(*expr.children()[0], input));
      DecodedBlock d;
      d.Decode(in);
      std::vector<uint8_t> values(static_cast<size_t>(rows));
      for (int64_t i = 0; i < rows; ++i) {
        values[static_cast<size_t>(i)] = d.IsNull(i) ? 1 : 0;
      }
      return BlockPtr(std::make_shared<ByteBlock>(
          TypeKind::kBoolean, std::move(values), std::vector<uint8_t>{}));
    }
    case ExprKind::kCoalesce: {
      std::vector<BlockPtr> children;
      std::vector<DecodedBlock> decoded(expr.children().size());
      for (size_t i = 0; i < expr.children().size(); ++i) {
        PRESTO_ASSIGN_OR_RETURN(BlockPtr b,
                                EvalVector(*expr.children()[i], input));
        children.push_back(b);
        decoded[i].Decode(children[i]);
      }
      BlockBuilder builder(expr.type());
      for (int64_t i = 0; i < rows; ++i) {
        bool appended = false;
        for (size_t c = 0; c < decoded.size(); ++c) {
          if (!decoded[c].IsNull(i)) {
            builder.AppendValue(
                CastValue(expr.type(), decoded[c].GetValue(i)));
            appended = true;
            break;
          }
        }
        if (!appended) builder.AppendNull();
      }
      return builder.Build();
    }
    case ExprKind::kCase: {
      size_t pair_count =
          (expr.children().size() - (expr.has_else() ? 1 : 0)) / 2;
      std::vector<DecodedBlock> conds(pair_count);
      std::vector<DecodedBlock> vals(pair_count);
      std::vector<BlockPtr> holders;
      for (size_t p = 0; p < pair_count; ++p) {
        PRESTO_ASSIGN_OR_RETURN(BlockPtr c,
                                EvalVector(*expr.children()[2 * p], input));
        PRESTO_ASSIGN_OR_RETURN(
            BlockPtr v, EvalVector(*expr.children()[2 * p + 1], input));
        holders.push_back(c);
        holders.push_back(v);
        conds[p].Decode(holders[holders.size() - 2]);
        vals[p].Decode(holders[holders.size() - 1]);
      }
      DecodedBlock else_block;
      bool has_else = expr.has_else();
      BlockPtr else_holder;
      if (has_else) {
        PRESTO_ASSIGN_OR_RETURN(else_holder,
                                EvalVector(*expr.children().back(), input));
        else_block.Decode(else_holder);
      }
      BlockBuilder builder(expr.type());
      for (int64_t i = 0; i < rows; ++i) {
        bool done = false;
        for (size_t p = 0; p < pair_count; ++p) {
          if (!conds[p].IsNull(i) && conds[p].ValueAt<uint8_t>(i) != 0) {
            if (vals[p].IsNull(i)) {
              builder.AppendNull();
            } else {
              builder.AppendValue(
                  CastValue(expr.type(), vals[p].GetValue(i)));
            }
            done = true;
            break;
          }
        }
        if (!done) {
          if (has_else && !else_block.IsNull(i)) {
            builder.AppendValue(
                CastValue(expr.type(), else_block.GetValue(i)));
          } else {
            builder.AppendNull();
          }
        }
      }
      return builder.Build();
    }
    case ExprKind::kIn: {
      PRESTO_ASSIGN_OR_RETURN(BlockPtr needle,
                              EvalVector(*expr.children()[0], input));
      DecodedBlock nd;
      nd.Decode(needle);
      std::vector<DecodedBlock> list(expr.children().size() - 1);
      std::vector<BlockPtr> holders;
      for (size_t i = 1; i < expr.children().size(); ++i) {
        PRESTO_ASSIGN_OR_RETURN(BlockPtr b,
                                EvalVector(*expr.children()[i], input));
        holders.push_back(b);
        list[i - 1].Decode(holders.back());
      }
      std::vector<uint8_t> values(static_cast<size_t>(rows), 0);
      std::vector<uint8_t> nulls(static_cast<size_t>(rows), 0);
      bool any_null = false;
      for (int64_t i = 0; i < rows; ++i) {
        if (nd.IsNull(i)) {
          nulls[static_cast<size_t>(i)] = 1;
          any_null = true;
          continue;
        }
        Value v = nd.GetValue(i);
        bool matched = false;
        bool saw_null = false;
        for (auto& item : list) {
          if (item.IsNull(i)) {
            saw_null = true;
            continue;
          }
          if (v.SqlEquals(item.GetValue(i))) {
            matched = true;
            break;
          }
        }
        if (matched) {
          values[static_cast<size_t>(i)] = 1;
        } else if (saw_null) {
          nulls[static_cast<size_t>(i)] = 1;
          any_null = true;
        }
      }
      if (!any_null) nulls.clear();
      return BlockPtr(std::make_shared<ByteBlock>(
          TypeKind::kBoolean, std::move(values), std::move(nulls)));
    }
  }
  return Status::Internal("unhandled expression kind in vector eval");
}

}  // namespace presto
