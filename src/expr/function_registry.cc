#include "expr/function_registry.h"

#include <cmath>
#include <cstdlib>

#include "common/check.h"
#include "common/string_utils.h"
#include "vector/decoded_block.h"
#include "vector/encoded_block.h"

namespace presto {

namespace {

// ---------------------------------------------------------------------------
// Vectorized kernel helpers. Each helper decodes its argument blocks once,
// then runs a tight, type-specialized loop — the C++ analogue of the unrolled
// monomorphic loops Presto's bytecode generator targets (§V-B2).
// ---------------------------------------------------------------------------

// Builds the output block for fixed-width results.
template <typename Out>
BlockPtr MakeFlatResult(TypeKind type, std::vector<Out> values,
                        std::vector<uint8_t> nulls, bool any_null) {
  if (!any_null) nulls.clear();
  return std::make_shared<FlatBlock<Out>>(type, std::move(values),
                                          std::move(nulls));
}

// Binary kernel over fixed-width inputs In -> fixed-width Out.
// F: void(In, In, Out*, bool* null).
template <typename In, typename Out, typename F>
BlockPtr BinaryKernel(const std::vector<BlockPtr>& args, int64_t rows,
                      TypeKind out_type, F f) {
  DecodedBlock a, b;
  a.Decode(args[0]);
  b.Decode(args[1]);
  if (a.is_constant() && b.is_constant()) {
    Out out{};
    bool null = a.IsNull(0) || b.IsNull(0);
    if (!null) f(a.ValueAt<In>(0), b.ValueAt<In>(0), &out, &null);
    BlockPtr one = MakeFlatResult<Out>(out_type, {out},
                                       {static_cast<uint8_t>(null ? 1 : 0)},
                                       null);
    return std::make_shared<RleBlock>(std::move(one), rows);
  }
  std::vector<Out> values(static_cast<size_t>(rows));
  std::vector<uint8_t> nulls(static_cast<size_t>(rows), 0);
  bool any_null = false;
  const bool no_nulls = !a.MayHaveNulls() && !b.MayHaveNulls();
  if (no_nulls) {
    for (int64_t i = 0; i < rows; ++i) {
      bool null = false;
      f(a.ValueAt<In>(i), b.ValueAt<In>(i), &values[static_cast<size_t>(i)],
        &null);
      if (null) {
        nulls[static_cast<size_t>(i)] = 1;
        any_null = true;
      }
    }
  } else {
    for (int64_t i = 0; i < rows; ++i) {
      if (a.IsNull(i) || b.IsNull(i)) {
        nulls[static_cast<size_t>(i)] = 1;
        any_null = true;
        continue;
      }
      bool null = false;
      f(a.ValueAt<In>(i), b.ValueAt<In>(i), &values[static_cast<size_t>(i)],
        &null);
      if (null) {
        nulls[static_cast<size_t>(i)] = 1;
        any_null = true;
      }
    }
  }
  return MakeFlatResult<Out>(out_type, std::move(values), std::move(nulls),
                             any_null);
}

// Unary kernel over fixed-width input In -> Out.
template <typename In, typename Out, typename F>
BlockPtr UnaryKernel(const std::vector<BlockPtr>& args, int64_t rows,
                     TypeKind out_type, F f) {
  DecodedBlock a;
  a.Decode(args[0]);
  if (a.is_constant()) {
    Out out{};
    bool null = a.IsNull(0);
    if (!null) f(a.ValueAt<In>(0), &out, &null);
    BlockPtr one = MakeFlatResult<Out>(out_type, {out},
                                       {static_cast<uint8_t>(null ? 1 : 0)},
                                       null);
    return std::make_shared<RleBlock>(std::move(one), rows);
  }
  std::vector<Out> values(static_cast<size_t>(rows));
  std::vector<uint8_t> nulls(static_cast<size_t>(rows), 0);
  bool any_null = false;
  for (int64_t i = 0; i < rows; ++i) {
    if (a.IsNull(i)) {
      nulls[static_cast<size_t>(i)] = 1;
      any_null = true;
      continue;
    }
    bool null = false;
    f(a.ValueAt<In>(i), &values[static_cast<size_t>(i)], &null);
    if (null) {
      nulls[static_cast<size_t>(i)] = 1;
      any_null = true;
    }
  }
  return MakeFlatResult<Out>(out_type, std::move(values), std::move(nulls),
                             any_null);
}

// Binary kernel over VARCHAR inputs -> fixed-width Out.
// F: void(string_view, string_view, Out*, bool*).
template <typename Out, typename F>
BlockPtr BinaryStringKernel(const std::vector<BlockPtr>& args, int64_t rows,
                            TypeKind out_type, F f) {
  DecodedBlock a, b;
  a.Decode(args[0]);
  b.Decode(args[1]);
  std::vector<Out> values(static_cast<size_t>(rows));
  std::vector<uint8_t> nulls(static_cast<size_t>(rows), 0);
  bool any_null = false;
  for (int64_t i = 0; i < rows; ++i) {
    if (a.IsNull(i) || b.IsNull(i)) {
      nulls[static_cast<size_t>(i)] = 1;
      any_null = true;
      continue;
    }
    bool null = false;
    f(a.StringAt(i), b.StringAt(i), &values[static_cast<size_t>(i)], &null);
    if (null) {
      nulls[static_cast<size_t>(i)] = 1;
      any_null = true;
    }
  }
  return MakeFlatResult<Out>(out_type, std::move(values), std::move(nulls),
                             any_null);
}

// Comparison dispatcher used for all orderable types. `cmp_sign` maps the
// three-way comparison to a boolean: returns f(compare_result).
template <typename F>
uint8_t BoolOf(F f, int c) {
  return f(c) ? 1 : 0;
}

template <typename F>
BlockPtr CompareKernel(TypeKind arg_type, const std::vector<BlockPtr>& args,
                       int64_t rows, F accept) {
  switch (arg_type) {
    case TypeKind::kBigint:
    case TypeKind::kDate:
      return BinaryKernel<int64_t, uint8_t>(
          args, rows, TypeKind::kBoolean,
          [accept](int64_t x, int64_t y, uint8_t* out, bool*) {
            int c = x < y ? -1 : (x > y ? 1 : 0);
            *out = BoolOf(accept, c);
          });
    case TypeKind::kDouble:
      return BinaryKernel<double, uint8_t>(
          args, rows, TypeKind::kBoolean,
          [accept](double x, double y, uint8_t* out, bool*) {
            int c = x < y ? -1 : (x > y ? 1 : 0);
            *out = BoolOf(accept, c);
          });
    case TypeKind::kBoolean:
      return BinaryKernel<uint8_t, uint8_t>(
          args, rows, TypeKind::kBoolean,
          [accept](uint8_t x, uint8_t y, uint8_t* out, bool*) {
            int c = x < y ? -1 : (x > y ? 1 : 0);
            *out = BoolOf(accept, c);
          });
    case TypeKind::kVarchar:
      return BinaryStringKernel<uint8_t>(
          args, rows, TypeKind::kBoolean,
          [accept](std::string_view x, std::string_view y, uint8_t* out,
                   bool*) {
            int c = x.compare(y);
            c = c < 0 ? -1 : (c > 0 ? 1 : 0);
            *out = BoolOf(accept, c);
          });
    default:
      PRESTO_UNREACHABLE();
  }
}

// Builds a varchar result row by row through a builder lambda.
// F: void(int64_t row, std::string* out, bool* null) for non-null rows.
template <typename F>
BlockPtr VarcharResultKernel(int64_t rows,
                             const std::function<bool(int64_t)>& is_null,
                             F f) {
  std::vector<int32_t> offsets;
  offsets.reserve(static_cast<size_t>(rows) + 1);
  offsets.push_back(0);
  std::string bytes;
  std::vector<uint8_t> nulls(static_cast<size_t>(rows), 0);
  bool any_null = false;
  std::string scratch;
  for (int64_t i = 0; i < rows; ++i) {
    if (is_null(i)) {
      nulls[static_cast<size_t>(i)] = 1;
      any_null = true;
    } else {
      scratch.clear();
      bool null = false;
      f(i, &scratch, &null);
      if (null) {
        nulls[static_cast<size_t>(i)] = 1;
        any_null = true;
      } else {
        bytes += scratch;
      }
    }
    offsets.push_back(static_cast<int32_t>(bytes.size()));
  }
  if (!any_null) nulls.clear();
  return std::make_shared<VarcharBlock>(std::move(offsets), std::move(bytes),
                                        std::move(nulls));
}

// ---------------------------------------------------------------------------
// Row (interpreter) helpers.
// ---------------------------------------------------------------------------

Value DivRow(const std::vector<Value>& args, TypeKind t) {
  if (t == TypeKind::kBigint) {
    int64_t d = args[1].AsBigint();
    if (d == 0) return Value::Null(TypeKind::kBigint);
    return Value::Bigint(args[0].AsBigint() / d);
  }
  double d = args[1].AsDouble();
  if (d == 0.0) return Value::Null(TypeKind::kDouble);
  return Value::Double(args[0].AsDouble() / d);
}

int CompareValues(const Value& a, const Value& b) { return a.Compare(b); }

}  // namespace

// ---------------------------------------------------------------------------
// Registry construction.
// ---------------------------------------------------------------------------

const FunctionRegistry& FunctionRegistry::Instance() {
  static const FunctionRegistry* kInstance = new FunctionRegistry();
  return *kInstance;
}

void FunctionRegistry::Register(ScalarFunction fn) {
  functions_.push_back(std::move(fn));
}

std::vector<std::string> FunctionRegistry::FunctionNames() const {
  std::vector<std::string> names;
  for (const auto& f : functions_) {
    if (names.empty() || names.back() != f.name) names.push_back(f.name);
  }
  return names;
}

Result<const ScalarFunction*> FunctionRegistry::Resolve(
    const std::string& name, const std::vector<TypeKind>& arg_types) const {
  // Pass 1: exact match.
  for (const auto& f : functions_) {
    if (f.name != name || f.arg_types.size() != arg_types.size()) continue;
    bool exact = true;
    for (size_t i = 0; i < arg_types.size(); ++i) {
      if (f.arg_types[i] != arg_types[i]) {
        exact = false;
        break;
      }
    }
    if (exact) return &f;
  }
  // Pass 2: coercible match (first wins; registration order puts preferred
  // overloads first).
  for (const auto& f : functions_) {
    if (f.name != name || f.arg_types.size() != arg_types.size()) continue;
    bool usable = true;
    for (size_t i = 0; i < arg_types.size(); ++i) {
      if (!IsImplicitlyCoercible(arg_types[i], f.arg_types[i])) {
        usable = false;
        break;
      }
    }
    if (usable) return &f;
  }
  std::string types;
  for (size_t i = 0; i < arg_types.size(); ++i) {
    if (i > 0) types += ", ";
    types += TypeToString(arg_types[i]);
  }
  bool name_exists = false;
  for (const auto& f : functions_) {
    if (f.name == name) {
      name_exists = true;
      break;
    }
  }
  if (!name_exists) {
    return Status::InvalidArgument("unknown function: " + name);
  }
  return Status::InvalidArgument("no overload of " + name +
                                 " accepts arguments (" + types + ")");
}

FunctionRegistry::FunctionRegistry() {
  using TK = TypeKind;
  const TK B = TK::kBigint;
  const TK D = TK::kDouble;
  const TK V = TK::kVarchar;
  const TK BO = TK::kBoolean;
  const TK DT = TK::kDate;

  // ---- Arithmetic ----
  auto arith = [&](const std::string& nm, auto lf, auto df, auto lrow,
                   auto drow) {
    Register({nm, {B, B}, B, true, lrow,
              [lf](const std::vector<BlockPtr>& a, int64_t n) {
                return BinaryKernel<int64_t, int64_t>(a, n, TK::kBigint, lf);
              }});
    Register({nm, {D, D}, D, true, drow,
              [df](const std::vector<BlockPtr>& a, int64_t n) {
                return BinaryKernel<double, double>(a, n, TK::kDouble, df);
              }});
  };
  arith(
      "plus",
      [](int64_t x, int64_t y, int64_t* o, bool*) { *o = x + y; },
      [](double x, double y, double* o, bool*) { *o = x + y; },
      [](const std::vector<Value>& a) {
        return Value::Bigint(a[0].AsBigint() + a[1].AsBigint());
      },
      [](const std::vector<Value>& a) {
        return Value::Double(a[0].AsDouble() + a[1].AsDouble());
      });
  arith(
      "minus",
      [](int64_t x, int64_t y, int64_t* o, bool*) { *o = x - y; },
      [](double x, double y, double* o, bool*) { *o = x - y; },
      [](const std::vector<Value>& a) {
        return Value::Bigint(a[0].AsBigint() - a[1].AsBigint());
      },
      [](const std::vector<Value>& a) {
        return Value::Double(a[0].AsDouble() - a[1].AsDouble());
      });
  arith(
      "multiply",
      [](int64_t x, int64_t y, int64_t* o, bool*) { *o = x * y; },
      [](double x, double y, double* o, bool*) { *o = x * y; },
      [](const std::vector<Value>& a) {
        return Value::Bigint(a[0].AsBigint() * a[1].AsBigint());
      },
      [](const std::vector<Value>& a) {
        return Value::Double(a[0].AsDouble() * a[1].AsDouble());
      });
  // Division by zero yields NULL (documented deviation: the engine has no
  // per-row error channel; Presto raises a query error instead).
  arith(
      "divide",
      [](int64_t x, int64_t y, int64_t* o, bool* null) {
        if (y == 0) {
          *null = true;
        } else {
          *o = x / y;
        }
      },
      [](double x, double y, double* o, bool* null) {
        if (y == 0.0) {
          *null = true;
        } else {
          *o = x / y;
        }
      },
      [](const std::vector<Value>& a) { return DivRow(a, TK::kBigint); },
      [](const std::vector<Value>& a) { return DivRow(a, TK::kDouble); });
  Register({"modulus",
            {B, B},
            B,
            true,
            [](const std::vector<Value>& a) {
              int64_t d = a[1].AsBigint();
              if (d == 0) return Value::Null(TK::kBigint);
              return Value::Bigint(a[0].AsBigint() % d);
            },
            [](const std::vector<BlockPtr>& a, int64_t n) {
              return BinaryKernel<int64_t, int64_t>(
                  a, n, TK::kBigint,
                  [](int64_t x, int64_t y, int64_t* o, bool* null) {
                    if (y == 0) {
                      *null = true;
                    } else {
                      *o = x % y;
                    }
                  });
            }});
  Register({"negate",
            {B},
            B,
            true,
            [](const std::vector<Value>& a) {
              return Value::Bigint(-a[0].AsBigint());
            },
            [](const std::vector<BlockPtr>& a, int64_t n) {
              return UnaryKernel<int64_t, int64_t>(
                  a, n, TK::kBigint,
                  [](int64_t x, int64_t* o, bool*) { *o = -x; });
            }});
  Register({"negate",
            {D},
            D,
            true,
            [](const std::vector<Value>& a) {
              return Value::Double(-a[0].AsDouble());
            },
            [](const std::vector<BlockPtr>& a, int64_t n) {
              return UnaryKernel<double, double>(
                  a, n, TK::kDouble,
                  [](double x, double* o, bool*) { *o = -x; });
            }});

  // ---- Comparisons (all orderable types) ----
  struct CmpDef {
    const char* name;
    bool (*accept)(int);
  };
  const CmpDef cmps[] = {
      {"eq", [](int c) { return c == 0; }},
      {"neq", [](int c) { return c != 0; }},
      {"lt", [](int c) { return c < 0; }},
      {"lte", [](int c) { return c <= 0; }},
      {"gt", [](int c) { return c > 0; }},
      {"gte", [](int c) { return c >= 0; }},
  };
  for (const auto& def : cmps) {
    for (TK t : {B, D, V, BO, DT}) {
      auto accept = def.accept;
      Register({def.name,
                {t, t},
                BO,
                true,
                [accept](const std::vector<Value>& a) {
                  return Value::Boolean(accept(CompareValues(a[0], a[1])));
                },
                [accept, t](const std::vector<BlockPtr>& a, int64_t n) {
                  return CompareKernel(t, a, n, accept);
                }});
    }
  }

  // ---- Logical NOT ----
  Register({"not",
            {BO},
            BO,
            true,
            [](const std::vector<Value>& a) {
              return Value::Boolean(!a[0].AsBoolean());
            },
            [](const std::vector<BlockPtr>& a, int64_t n) {
              return UnaryKernel<uint8_t, uint8_t>(
                  a, n, TK::kBoolean,
                  [](uint8_t x, uint8_t* o, bool*) { *o = x ? 0 : 1; });
            }});

  // ---- String functions ----
  Register({"length",
            {V},
            B,
            true,
            [](const std::vector<Value>& a) {
              return Value::Bigint(
                  static_cast<int64_t>(a[0].AsVarchar().size()));
            },
            [](const std::vector<BlockPtr>& a, int64_t n) {
              DecodedBlock d;
              d.Decode(a[0]);
              std::vector<int64_t> values(static_cast<size_t>(n));
              std::vector<uint8_t> nulls(static_cast<size_t>(n), 0);
              bool any_null = false;
              for (int64_t i = 0; i < n; ++i) {
                if (d.IsNull(i)) {
                  nulls[static_cast<size_t>(i)] = 1;
                  any_null = true;
                } else {
                  values[static_cast<size_t>(i)] =
                      static_cast<int64_t>(d.StringAt(i).size());
                }
              }
              return MakeFlatResult<int64_t>(TK::kBigint, std::move(values),
                                             std::move(nulls), any_null);
            }});
  auto string_map = [&](const std::string& nm,
                        std::string (*f)(std::string_view)) {
    Register({nm,
              {V},
              V,
              true,
              [f](const std::vector<Value>& a) {
                return Value::Varchar(f(a[0].AsVarchar()));
              },
              [f](const std::vector<BlockPtr>& a, int64_t n) {
                DecodedBlock d;
                d.Decode(a[0]);
                return VarcharResultKernel(
                    n, [&d](int64_t i) { return d.IsNull(i); },
                    [&d, f](int64_t i, std::string* out, bool*) {
                      *out = f(d.StringAt(i));
                    });
              }});
  };
  string_map("lower", [](std::string_view s) { return ToLowerAscii(s); });
  string_map("upper", [](std::string_view s) { return ToUpperAscii(s); });
  string_map("trim", [](std::string_view s) {
    size_t b = s.find_first_not_of(' ');
    if (b == std::string_view::npos) return std::string();
    size_t e = s.find_last_not_of(' ');
    return std::string(s.substr(b, e - b + 1));
  });
  Register({"concat",
            {V, V},
            V,
            true,
            [](const std::vector<Value>& a) {
              return Value::Varchar(a[0].AsVarchar() + a[1].AsVarchar());
            },
            [](const std::vector<BlockPtr>& a, int64_t n) {
              DecodedBlock x, y;
              x.Decode(a[0]);
              y.Decode(a[1]);
              return VarcharResultKernel(
                  n,
                  [&](int64_t i) { return x.IsNull(i) || y.IsNull(i); },
                  [&](int64_t i, std::string* out, bool*) {
                    out->append(x.StringAt(i));
                    out->append(y.StringAt(i));
                  });
            }});
  // substr(s, start[, length]): 1-based start per SQL.
  auto substr_impl = [](std::string_view s, int64_t start, int64_t len) {
    if (start < 1) start = 1;
    auto b = static_cast<size_t>(start - 1);
    if (b >= s.size() || len <= 0) return std::string();
    return std::string(s.substr(b, static_cast<size_t>(len)));
  };
  Register({"substr",
            {V, B},
            V,
            true,
            [substr_impl](const std::vector<Value>& a) {
              return Value::Varchar(substr_impl(
                  a[0].AsVarchar(), a[1].AsBigint(),
                  static_cast<int64_t>(a[0].AsVarchar().size())));
            },
            nullptr});
  Register({"substr",
            {V, B, B},
            V,
            true,
            [substr_impl](const std::vector<Value>& a) {
              return Value::Varchar(substr_impl(a[0].AsVarchar(),
                                                a[1].AsBigint(),
                                                a[2].AsBigint()));
            },
            nullptr});
  Register({"strpos",
            {V, V},
            B,
            true,
            [](const std::vector<Value>& a) {
              auto pos = a[0].AsVarchar().find(a[1].AsVarchar());
              return Value::Bigint(
                  pos == std::string::npos ? 0
                                           : static_cast<int64_t>(pos) + 1);
            },
            nullptr});
  Register({"replace",
            {V, V, V},
            V,
            true,
            [](const std::vector<Value>& a) {
              std::string s = a[0].AsVarchar();
              const std::string& from = a[1].AsVarchar();
              const std::string& to = a[2].AsVarchar();
              if (from.empty()) return Value::Varchar(s);
              std::string out;
              size_t pos = 0;
              for (;;) {
                size_t hit = s.find(from, pos);
                if (hit == std::string::npos) {
                  out += s.substr(pos);
                  break;
                }
                out += s.substr(pos, hit - pos);
                out += to;
                pos = hit + from.size();
              }
              return Value::Varchar(out);
            },
            nullptr});
  Register({"like",
            {V, V},
            BO,
            true,
            [](const std::vector<Value>& a) {
              return Value::Boolean(
                  LikeMatch(a[0].AsVarchar(), a[1].AsVarchar()));
            },
            [](const std::vector<BlockPtr>& a, int64_t n) {
              return BinaryStringKernel<uint8_t>(
                  a, n, TK::kBoolean,
                  [](std::string_view v, std::string_view p, uint8_t* o,
                     bool*) { *o = LikeMatch(v, p) ? 1 : 0; });
            }});

  // ---- Math ----
  Register({"abs",
            {B},
            B,
            true,
            [](const std::vector<Value>& a) {
              return Value::Bigint(std::llabs(a[0].AsBigint()));
            },
            [](const std::vector<BlockPtr>& a, int64_t n) {
              return UnaryKernel<int64_t, int64_t>(
                  a, n, TK::kBigint,
                  [](int64_t x, int64_t* o, bool*) { *o = x < 0 ? -x : x; });
            }});
  Register({"abs",
            {D},
            D,
            true,
            [](const std::vector<Value>& a) {
              return Value::Double(std::fabs(a[0].AsDouble()));
            },
            [](const std::vector<BlockPtr>& a, int64_t n) {
              return UnaryKernel<double, double>(
                  a, n, TK::kDouble,
                  [](double x, double* o, bool*) { *o = std::fabs(x); });
            }});
  auto dmath = [&](const std::string& nm, double (*f)(double)) {
    Register({nm,
              {D},
              D,
              true,
              [f](const std::vector<Value>& a) {
                return Value::Double(f(a[0].AsDouble()));
              },
              [f](const std::vector<BlockPtr>& a, int64_t n) {
                return UnaryKernel<double, double>(
                    a, n, TK::kDouble,
                    [f](double x, double* o, bool*) { *o = f(x); });
              }});
  };
  dmath("round", [](double x) { return std::round(x); });
  dmath("floor", [](double x) { return std::floor(x); });
  dmath("ceil", [](double x) { return std::ceil(x); });
  dmath("sqrt", [](double x) { return std::sqrt(x); });
  dmath("ln", [](double x) { return std::log(x); });
  dmath("exp", [](double x) { return std::exp(x); });
  Register({"power",
            {D, D},
            D,
            true,
            [](const std::vector<Value>& a) {
              return Value::Double(std::pow(a[0].AsDouble(), a[1].AsDouble()));
            },
            [](const std::vector<BlockPtr>& a, int64_t n) {
              return BinaryKernel<double, double>(
                  a, n, TK::kDouble, [](double x, double y, double* o, bool*) {
                    *o = std::pow(x, y);
                  });
            }});
  for (TK t : {B, D, V, DT}) {
    Register({"greatest",
              {t, t},
              t,
              true,
              [](const std::vector<Value>& a) {
                return a[0].Compare(a[1]) >= 0 ? a[0] : a[1];
              },
              nullptr});
    Register({"least",
              {t, t},
              t,
              true,
              [](const std::vector<Value>& a) {
                return a[0].Compare(a[1]) <= 0 ? a[0] : a[1];
              },
              nullptr});
  }

  // ---- Date functions ----
  auto date_part = [&](const std::string& nm, int part) {
    Register({nm,
              {DT},
              B,
              true,
              [part](const std::vector<Value>& a) {
                std::string s = FormatDate(a[0].AsDate());
                // s == YYYY-MM-DD
                int64_t v = 0;
                if (part == 0) {
                  v = std::atoll(s.substr(0, 4).c_str());
                } else if (part == 1) {
                  v = std::atoll(s.substr(5, 2).c_str());
                } else {
                  v = std::atoll(s.substr(8, 2).c_str());
                }
                return Value::Bigint(v);
              },
              nullptr});
  };
  date_part("year", 0);
  date_part("month", 1);
  date_part("day", 2);
  Register({"date_add",
            {DT, B},
            DT,
            true,
            [](const std::vector<Value>& a) {
              return Value::Date(a[0].AsDate() + a[1].AsBigint());
            },
            [](const std::vector<BlockPtr>& a, int64_t n) {
              return BinaryKernel<int64_t, int64_t>(
                  a, n, TK::kDate,
                  [](int64_t x, int64_t y, int64_t* o, bool*) { *o = x + y; });
            }});
  Register({"date_diff",
            {DT, DT},
            B,
            true,
            [](const std::vector<Value>& a) {
              return Value::Bigint(a[1].AsDate() - a[0].AsDate());
            },
            [](const std::vector<BlockPtr>& a, int64_t n) {
              return BinaryKernel<int64_t, int64_t>(
                  a, n, TK::kBigint,
                  [](int64_t x, int64_t y, int64_t* o, bool*) { *o = y - x; });
            }});

  // ---- Misc ----
  Register({"hash64",
            {B},
            B,
            true,
            [](const std::vector<Value>& a) {
              return Value::Bigint(static_cast<int64_t>(
                  HashInt64(static_cast<uint64_t>(a[0].AsBigint()))));
            },
            [](const std::vector<BlockPtr>& a, int64_t n) {
              return UnaryKernel<int64_t, int64_t>(
                  a, n, TK::kBigint, [](int64_t x, int64_t* o, bool*) {
                    *o = static_cast<int64_t>(
                        HashInt64(static_cast<uint64_t>(x)));
                  });
            }});
}

}  // namespace presto
