#ifndef PRESTOCPP_EXPR_EVALUATOR_H_
#define PRESTOCPP_EXPR_EVALUATOR_H_

#include "common/status.h"
#include "expr/expression.h"
#include "vector/page.h"

namespace presto {

/// SQL CAST semantics between supported types. Unparseable VARCHAR inputs
/// yield NULL (documented deviation: no per-row error channel).
Value CastValue(TypeKind target, const Value& in);

/// Row-at-a-time boxed evaluation over row `row` of `page` — the paper's
/// "expression interpreter ... much too slow for production use" (§V-B1).
/// Kept for differential testing, constant folding, and as the baseline in
/// the code-generation benchmark.
Result<Value> EvalExprRow(const Expr& expr, const Page& page, int64_t row);

/// Folds a constant expression (no column references) to a Value.
Result<Value> EvalConstantExpr(const Expr& expr);

/// How expressions are evaluated at runtime.
enum class EvalMode {
  kInterpreted,  // loop of EvalExprRow per row (baseline)
  kCompiled,     // fused type-specialized vector kernels (§V-B analogue)
};

/// Evaluates an expression over a whole page, producing one output block.
/// In kCompiled mode evaluation is columnar: literals become RLE blocks,
/// column refs pass input blocks through unchanged (preserving lazy and
/// dictionary encodings for downstream fast paths), and kCall nodes run
/// their vectorized kernels.
class ExprEvaluator {
 public:
  ExprEvaluator(ExprPtr expr, EvalMode mode)
      : expr_(std::move(expr)), mode_(mode) {}

  const ExprPtr& expr() const { return expr_; }
  EvalMode mode() const { return mode_; }

  Result<BlockPtr> Eval(const Page& input) const;

 private:
  Result<BlockPtr> EvalVector(const Expr& expr, const Page& input) const;

  ExprPtr expr_;
  EvalMode mode_;
};

}  // namespace presto

#endif  // PRESTOCPP_EXPR_EVALUATOR_H_
