#include "expr/expression.h"

#include <algorithm>

#include "common/check.h"
#include "expr/function_registry.h"

namespace presto {

ExprPtr Expr::MakeColumn(int index, TypeKind type) {
  auto e = std::make_shared<Expr>(ExprKind::kColumnRef, type);
  e->column_ = index;
  return e;
}

ExprPtr Expr::MakeLiteral(Value value) {
  auto e = std::make_shared<Expr>(ExprKind::kLiteral, value.type());
  e->literal_ = std::move(value);
  return e;
}

ExprPtr Expr::MakeCall(const ScalarFunction* fn, std::vector<ExprPtr> children) {
  PRESTO_CHECK(fn != nullptr);
  auto e = std::make_shared<Expr>(ExprKind::kCall, fn->return_type);
  e->function_ = fn;
  e->children_ = std::move(children);
  return e;
}

ExprPtr Expr::MakeCast(TypeKind target, ExprPtr input) {
  auto e = std::make_shared<Expr>(ExprKind::kCast, target);
  e->children_ = {std::move(input)};
  return e;
}

ExprPtr Expr::MakeAnd(std::vector<ExprPtr> children) {
  auto e = std::make_shared<Expr>(ExprKind::kAnd, TypeKind::kBoolean);
  e->children_ = std::move(children);
  return e;
}

ExprPtr Expr::MakeOr(std::vector<ExprPtr> children) {
  auto e = std::make_shared<Expr>(ExprKind::kOr, TypeKind::kBoolean);
  e->children_ = std::move(children);
  return e;
}

ExprPtr Expr::MakeCase(std::vector<ExprPtr> children, bool has_else,
                       TypeKind type) {
  auto e = std::make_shared<Expr>(ExprKind::kCase, type);
  e->children_ = std::move(children);
  e->has_else_ = has_else;
  return e;
}

ExprPtr Expr::MakeIn(std::vector<ExprPtr> children) {
  auto e = std::make_shared<Expr>(ExprKind::kIn, TypeKind::kBoolean);
  e->children_ = std::move(children);
  return e;
}

ExprPtr Expr::MakeIsNull(ExprPtr input) {
  auto e = std::make_shared<Expr>(ExprKind::kIsNull, TypeKind::kBoolean);
  e->children_ = {std::move(input)};
  return e;
}

ExprPtr Expr::MakeCoalesce(std::vector<ExprPtr> children, TypeKind type) {
  auto e = std::make_shared<Expr>(ExprKind::kCoalesce, type);
  e->children_ = std::move(children);
  return e;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kColumnRef:
      return "#" + std::to_string(column_);
    case ExprKind::kLiteral:
      return literal_.ToString();
    case ExprKind::kCall: {
      // Infix rendering for the common operators.
      static const struct {
        const char* fn;
        const char* op;
      } kInfix[] = {{"plus", " + "},   {"minus", " - "}, {"multiply", " * "},
                    {"divide", " / "}, {"modulus", " % "}, {"eq", " = "},
                    {"neq", " <> "},   {"lt", " < "},    {"lte", " <= "},
                    {"gt", " > "},     {"gte", " >= "}};
      if (children_.size() == 2) {
        for (const auto& inf : kInfix) {
          if (function_->name == inf.fn) {
            return "(" + children_[0]->ToString() + inf.op +
                   children_[1]->ToString() + ")";
          }
        }
      }
      std::string out = function_->name + "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += ", ";
        out += children_[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kCast:
      return "CAST(" + children_[0]->ToString() + " AS " +
             TypeToString(type_) + ")";
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      std::string sep = kind_ == ExprKind::kAnd ? " AND " : " OR ";
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += sep;
        out += children_[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kCase: {
      std::string out = "CASE";
      size_t pair_count = (children_.size() - (has_else_ ? 1 : 0)) / 2;
      for (size_t p = 0; p < pair_count; ++p) {
        out += " WHEN " + children_[2 * p]->ToString() + " THEN " +
               children_[2 * p + 1]->ToString();
      }
      if (has_else_) out += " ELSE " + children_.back()->ToString();
      return out + " END";
    }
    case ExprKind::kIn: {
      std::string out = children_[0]->ToString() + " IN (";
      for (size_t i = 1; i < children_.size(); ++i) {
        if (i > 1) out += ", ";
        out += children_[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kIsNull:
      return "(" + children_[0]->ToString() + " IS NULL)";
    case ExprKind::kCoalesce: {
      std::string out = "coalesce(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += ", ";
        out += children_[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

bool IsConstantExpr(const Expr& expr) {
  if (expr.kind() == ExprKind::kColumnRef) return false;
  for (const auto& c : expr.children()) {
    if (!IsConstantExpr(*c)) return false;
  }
  return true;
}

void CollectReferencedColumns(const Expr& expr, std::vector<int>* columns) {
  if (expr.kind() == ExprKind::kColumnRef) {
    if (std::find(columns->begin(), columns->end(), expr.column()) ==
        columns->end()) {
      columns->push_back(expr.column());
    }
  }
  for (const auto& c : expr.children()) CollectReferencedColumns(*c, columns);
  std::sort(columns->begin(), columns->end());
}

ExprPtr ExprWithChildren(const Expr& expr, std::vector<ExprPtr> children) {
  switch (expr.kind()) {
    case ExprKind::kColumnRef:
    case ExprKind::kLiteral:
      PRESTO_CHECK(children.empty());
      return expr.kind() == ExprKind::kColumnRef
                 ? Expr::MakeColumn(expr.column(), expr.type())
                 : Expr::MakeLiteral(expr.literal());
    case ExprKind::kCall:
      return Expr::MakeCall(expr.function(), std::move(children));
    case ExprKind::kCast:
      return Expr::MakeCast(expr.type(), std::move(children[0]));
    case ExprKind::kAnd:
      return Expr::MakeAnd(std::move(children));
    case ExprKind::kOr:
      return Expr::MakeOr(std::move(children));
    case ExprKind::kCase:
      return Expr::MakeCase(std::move(children), expr.has_else(), expr.type());
    case ExprKind::kIn:
      return Expr::MakeIn(std::move(children));
    case ExprKind::kIsNull:
      return Expr::MakeIsNull(std::move(children[0]));
    case ExprKind::kCoalesce:
      return Expr::MakeCoalesce(std::move(children), expr.type());
  }
  PRESTO_UNREACHABLE();
}

ExprPtr ReplaceColumnsWithExprs(const ExprPtr& expr,
                                const std::vector<ExprPtr>& replacements) {
  if (expr->kind() == ExprKind::kColumnRef) {
    auto idx = static_cast<size_t>(expr->column());
    PRESTO_CHECK(idx < replacements.size());
    return replacements[idx];
  }
  if (expr->kind() == ExprKind::kLiteral) return expr;
  std::vector<ExprPtr> children;
  children.reserve(expr->children().size());
  bool changed = false;
  for (const auto& c : expr->children()) {
    auto nc = ReplaceColumnsWithExprs(c, replacements);
    changed = changed || nc != c;
    children.push_back(std::move(nc));
  }
  if (!changed) return expr;
  return ExprWithChildren(*expr, std::move(children));
}

ExprPtr RemapColumns(const ExprPtr& expr, const std::vector<int>& mapping) {
  switch (expr->kind()) {
    case ExprKind::kColumnRef: {
      int old = expr->column();
      PRESTO_CHECK(old >= 0 && old < static_cast<int>(mapping.size()));
      PRESTO_CHECK(mapping[static_cast<size_t>(old)] >= 0);
      return Expr::MakeColumn(mapping[static_cast<size_t>(old)], expr->type());
    }
    case ExprKind::kLiteral:
      return expr;
    default: {
      std::vector<ExprPtr> children;
      children.reserve(expr->children().size());
      bool changed = false;
      for (const auto& c : expr->children()) {
        auto nc = RemapColumns(c, mapping);
        changed = changed || nc != c;
        children.push_back(std::move(nc));
      }
      if (!changed) return expr;
      switch (expr->kind()) {
        case ExprKind::kCall:
          return Expr::MakeCall(expr->function(), std::move(children));
        case ExprKind::kCast:
          return Expr::MakeCast(expr->type(), std::move(children[0]));
        case ExprKind::kAnd:
          return Expr::MakeAnd(std::move(children));
        case ExprKind::kOr:
          return Expr::MakeOr(std::move(children));
        case ExprKind::kCase:
          return Expr::MakeCase(std::move(children), expr->has_else(),
                                expr->type());
        case ExprKind::kIn:
          return Expr::MakeIn(std::move(children));
        case ExprKind::kIsNull:
          return Expr::MakeIsNull(std::move(children[0]));
        case ExprKind::kCoalesce:
          return Expr::MakeCoalesce(std::move(children), expr->type());
        default:
          PRESTO_UNREACHABLE();
      }
    }
  }
}

}  // namespace presto
