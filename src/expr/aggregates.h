#ifndef PRESTOCPP_EXPR_AGGREGATES_H_
#define PRESTOCPP_EXPR_AGGREGATES_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "types/type.h"
#include "vector/block.h"

namespace presto {

/// Supported aggregate functions. kCountAll is COUNT(*); kCountDistinct is
/// COUNT(DISTINCT x); kApproxDistinct is the HyperLogLog sketch Presto uses
/// for cardinality estimation.
enum class AggKind : uint8_t {
  kCountAll,
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
  kCountDistinct,
  kApproxDistinct,
  kStddev,
  kVariance,
};

/// A resolved aggregate call: function, argument type (kUnknown for
/// COUNT(*)), and result type.
struct AggregateSignature {
  AggKind kind;
  TypeKind arg_type;
  TypeKind result_type;
  /// Type of the partial-aggregation (intermediate) state column shipped
  /// across the shuffle between AggregatePartial and AggregateFinal.
  TypeKind intermediate_type;
};

/// Resolves an aggregate by SQL name ("count", "sum", ...). `arg` is
/// nullopt for COUNT(*). `distinct` is only supported for COUNT.
Result<AggregateSignature> ResolveAggregate(const std::string& name,
                                            std::optional<TypeKind> arg,
                                            bool distinct);

/// Per-aggregate grouped accumulator. State lives in flat per-group arrays
/// (§V-A: flat memory structures in the critical path). Group ids are dense
/// [0, n) assigned by the aggregation hash table.
///
/// Lifecycle: Resize(n) whenever new groups appear, then either Add (raw
/// input) or Merge (intermediate states from partial aggregation), finally
/// BuildIntermediate or BuildFinal.
class Accumulator {
 public:
  virtual ~Accumulator() = default;

  /// Ensures state exists for groups [0, num_groups).
  virtual void Resize(int64_t num_groups) = 0;

  /// Accumulates raw input rows: row i goes to group group_ids[i]. `arg` is
  /// null for COUNT(*).
  virtual void Add(const int32_t* group_ids, const BlockPtr& arg,
                   int64_t rows) = 0;

  /// Merges intermediate states produced by BuildIntermediate.
  virtual Status Merge(const int32_t* group_ids, const BlockPtr& state,
                       int64_t rows) = 0;

  /// Serializes per-group state for the partial->final shuffle.
  virtual BlockPtr BuildIntermediate(int64_t num_groups) = 0;

  /// Produces the final per-group result column.
  virtual BlockPtr BuildFinal(int64_t num_groups) = 0;

  /// Approximate state footprint for memory accounting.
  virtual int64_t MemoryBytes() const = 0;
};

/// Creates the accumulator implementing `sig`.
std::unique_ptr<Accumulator> CreateAccumulator(const AggregateSignature& sig);

}  // namespace presto

#endif  // PRESTOCPP_EXPR_AGGREGATES_H_
