#include "expr/aggregates.h"

#include <cmath>
#include <cstring>
#include <unordered_set>

#include "common/check.h"
#include "common/hash.h"
#include "common/string_utils.h"
#include "vector/block_builder.h"
#include "vector/decoded_block.h"

namespace presto {

Result<AggregateSignature> ResolveAggregate(const std::string& name,
                                            std::optional<TypeKind> arg,
                                            bool distinct) {
  std::string n = ToLowerAscii(name);
  using TK = TypeKind;
  if (distinct && n != "count") {
    return Status::Unsupported("DISTINCT is only supported with COUNT");
  }
  if (n == "count") {
    if (!arg.has_value()) {
      return AggregateSignature{AggKind::kCountAll, TK::kUnknown, TK::kBigint,
                                TK::kBigint};
    }
    if (distinct) {
      return AggregateSignature{AggKind::kCountDistinct, *arg, TK::kBigint,
                                TK::kVarchar};
    }
    return AggregateSignature{AggKind::kCount, *arg, TK::kBigint, TK::kBigint};
  }
  if (!arg.has_value()) {
    return Status::InvalidArgument(n + " requires an argument");
  }
  if (n == "sum") {
    if (*arg == TK::kBigint) {
      return AggregateSignature{AggKind::kSum, TK::kBigint, TK::kBigint,
                                TK::kBigint};
    }
    if (*arg == TK::kDouble) {
      return AggregateSignature{AggKind::kSum, TK::kDouble, TK::kDouble,
                                TK::kDouble};
    }
    return Status::InvalidArgument("sum requires a numeric argument");
  }
  if (n == "avg") {
    if (*arg != TK::kBigint && *arg != TK::kDouble) {
      return Status::InvalidArgument("avg requires a numeric argument");
    }
    return AggregateSignature{AggKind::kAvg, *arg, TK::kDouble, TK::kVarchar};
  }
  if (n == "min" || n == "max") {
    if (!IsOrderable(*arg)) {
      return Status::InvalidArgument(n + " requires an orderable argument");
    }
    return AggregateSignature{n == "min" ? AggKind::kMin : AggKind::kMax,
                              *arg, *arg, *arg};
  }
  if (n == "approx_distinct") {
    return AggregateSignature{AggKind::kApproxDistinct, *arg, TK::kBigint,
                              TK::kVarchar};
  }
  if (n == "stddev" || n == "stddev_samp") {
    if (*arg != TK::kBigint && *arg != TK::kDouble) {
      return Status::InvalidArgument("stddev requires a numeric argument");
    }
    return AggregateSignature{AggKind::kStddev, *arg, TK::kDouble,
                              TK::kVarchar};
  }
  if (n == "variance" || n == "var_samp") {
    if (*arg != TK::kBigint && *arg != TK::kDouble) {
      return Status::InvalidArgument("variance requires a numeric argument");
    }
    return AggregateSignature{AggKind::kVariance, *arg, TK::kDouble,
                              TK::kVarchar};
  }
  return Status::InvalidArgument("unknown aggregate function: " + name);
}

namespace {

// ---------------------------------------------------------------------------
// COUNT / COUNT(*)
// ---------------------------------------------------------------------------
class CountAccumulator final : public Accumulator {
 public:
  explicit CountAccumulator(bool count_all) : count_all_(count_all) {}

  void Resize(int64_t n) override {
    counts_.resize(static_cast<size_t>(n), 0);
  }

  void Add(const int32_t* group_ids, const BlockPtr& arg,
           int64_t rows) override {
    if (count_all_ || arg == nullptr) {
      for (int64_t i = 0; i < rows; ++i) {
        ++counts_[static_cast<size_t>(group_ids[i])];
      }
      return;
    }
    DecodedBlock d;
    d.Decode(arg);
    for (int64_t i = 0; i < rows; ++i) {
      if (!d.IsNull(i)) ++counts_[static_cast<size_t>(group_ids[i])];
    }
  }

  Status Merge(const int32_t* group_ids, const BlockPtr& state,
               int64_t rows) override {
    DecodedBlock d;
    d.Decode(state);
    for (int64_t i = 0; i < rows; ++i) {
      if (!d.IsNull(i)) {
        counts_[static_cast<size_t>(group_ids[i])] += d.ValueAt<int64_t>(i);
      }
    }
    return Status::OK();
  }

  BlockPtr BuildIntermediate(int64_t n) override { return BuildFinal(n); }

  BlockPtr BuildFinal(int64_t n) override {
    return MakeBigintBlock(std::vector<int64_t>(
        counts_.begin(), counts_.begin() + static_cast<ptrdiff_t>(n)));
  }

  int64_t MemoryBytes() const override {
    return static_cast<int64_t>(counts_.size() * sizeof(int64_t));
  }

 private:
  bool count_all_;
  std::vector<int64_t> counts_;
};

// ---------------------------------------------------------------------------
// SUM / MIN / MAX over fixed-width numerics
// ---------------------------------------------------------------------------
template <typename T>
class SumAccumulator final : public Accumulator {
 public:
  explicit SumAccumulator(TypeKind type) : type_(type) {}

  void Resize(int64_t n) override {
    sums_.resize(static_cast<size_t>(n), T{});
    seen_.resize(static_cast<size_t>(n), 0);
  }

  void Add(const int32_t* group_ids, const BlockPtr& arg,
           int64_t rows) override {
    DecodedBlock d;
    d.Decode(arg);
    if (!d.MayHaveNulls()) {
      for (int64_t i = 0; i < rows; ++i) {
        auto g = static_cast<size_t>(group_ids[i]);
        sums_[g] += d.ValueAt<T>(i);
        seen_[g] = 1;
      }
      return;
    }
    for (int64_t i = 0; i < rows; ++i) {
      if (d.IsNull(i)) continue;
      auto g = static_cast<size_t>(group_ids[i]);
      sums_[g] += d.ValueAt<T>(i);
      seen_[g] = 1;
    }
  }

  Status Merge(const int32_t* group_ids, const BlockPtr& state,
               int64_t rows) override {
    Add(group_ids, state, rows);
    return Status::OK();
  }

  BlockPtr BuildIntermediate(int64_t n) override { return BuildFinal(n); }

  BlockPtr BuildFinal(int64_t n) override {
    auto count = static_cast<size_t>(n);
    std::vector<T> values(sums_.begin(),
                          sums_.begin() + static_cast<ptrdiff_t>(n));
    std::vector<uint8_t> nulls(count, 0);
    bool any_null = false;
    for (size_t i = 0; i < count; ++i) {
      if (!seen_[i]) {
        nulls[i] = 1;
        any_null = true;
      }
    }
    if (!any_null) nulls.clear();
    return std::make_shared<FlatBlock<T>>(type_, std::move(values),
                                          std::move(nulls));
  }

  int64_t MemoryBytes() const override {
    return static_cast<int64_t>(sums_.size() * (sizeof(T) + 1));
  }

 private:
  TypeKind type_;
  std::vector<T> sums_;
  std::vector<uint8_t> seen_;
};

// MIN/MAX for fixed-width types.
template <typename T>
class MinMaxAccumulator final : public Accumulator {
 public:
  MinMaxAccumulator(TypeKind type, bool is_min)
      : type_(type), is_min_(is_min) {}

  void Resize(int64_t n) override {
    values_.resize(static_cast<size_t>(n), T{});
    seen_.resize(static_cast<size_t>(n), 0);
  }

  void Add(const int32_t* group_ids, const BlockPtr& arg,
           int64_t rows) override {
    DecodedBlock d;
    d.Decode(arg);
    for (int64_t i = 0; i < rows; ++i) {
      if (d.IsNull(i)) continue;
      auto g = static_cast<size_t>(group_ids[i]);
      T v = d.ValueAt<T>(i);
      if (!seen_[g] || (is_min_ ? v < values_[g] : v > values_[g])) {
        values_[g] = v;
        seen_[g] = 1;
      }
    }
  }

  Status Merge(const int32_t* group_ids, const BlockPtr& state,
               int64_t rows) override {
    Add(group_ids, state, rows);
    return Status::OK();
  }

  BlockPtr BuildIntermediate(int64_t n) override { return BuildFinal(n); }

  BlockPtr BuildFinal(int64_t n) override {
    auto count = static_cast<size_t>(n);
    std::vector<T> values(values_.begin(),
                          values_.begin() + static_cast<ptrdiff_t>(n));
    std::vector<uint8_t> nulls(count, 0);
    bool any_null = false;
    for (size_t i = 0; i < count; ++i) {
      if (!seen_[i]) {
        nulls[i] = 1;
        any_null = true;
      }
    }
    if (!any_null) nulls.clear();
    return std::make_shared<FlatBlock<T>>(type_, std::move(values),
                                          std::move(nulls));
  }

  int64_t MemoryBytes() const override {
    return static_cast<int64_t>(values_.size() * (sizeof(T) + 1));
  }

 private:
  TypeKind type_;
  bool is_min_;
  std::vector<T> values_;
  std::vector<uint8_t> seen_;
};

// MIN/MAX for VARCHAR.
class MinMaxStringAccumulator final : public Accumulator {
 public:
  explicit MinMaxStringAccumulator(bool is_min) : is_min_(is_min) {}

  void Resize(int64_t n) override {
    values_.resize(static_cast<size_t>(n));
    seen_.resize(static_cast<size_t>(n), 0);
  }

  void Add(const int32_t* group_ids, const BlockPtr& arg,
           int64_t rows) override {
    DecodedBlock d;
    d.Decode(arg);
    for (int64_t i = 0; i < rows; ++i) {
      if (d.IsNull(i)) continue;
      auto g = static_cast<size_t>(group_ids[i]);
      std::string_view v = d.StringAt(i);
      if (!seen_[g] || (is_min_ ? v < values_[g] : v > values_[g])) {
        values_[g] = std::string(v);
        seen_[g] = 1;
      }
    }
  }

  Status Merge(const int32_t* group_ids, const BlockPtr& state,
               int64_t rows) override {
    Add(group_ids, state, rows);
    return Status::OK();
  }

  BlockPtr BuildIntermediate(int64_t n) override { return BuildFinal(n); }

  BlockPtr BuildFinal(int64_t n) override {
    BlockBuilder b(TypeKind::kVarchar);
    for (int64_t i = 0; i < n; ++i) {
      if (seen_[static_cast<size_t>(i)]) {
        b.AppendString(values_[static_cast<size_t>(i)]);
      } else {
        b.AppendNull();
      }
    }
    return b.Build();
  }

  int64_t MemoryBytes() const override {
    int64_t total = static_cast<int64_t>(seen_.size());
    for (const auto& s : values_) total += static_cast<int64_t>(s.size() + 16);
    return total;
  }

 private:
  bool is_min_;
  std::vector<std::string> values_;
  std::vector<uint8_t> seen_;
};

// ---------------------------------------------------------------------------
// Blob-state accumulators: AVG, STDDEV/VARIANCE, COUNT(DISTINCT),
// APPROX_DISTINCT. Intermediate states travel as VARCHAR blobs.
// ---------------------------------------------------------------------------

// AVG / STDDEV / VARIANCE share a (n, sum, sumsq) moments state.
struct Moments {
  int64_t n = 0;
  double sum = 0;
  double sumsq = 0;
};

class MomentsAccumulator final : public Accumulator {
 public:
  MomentsAccumulator(AggKind kind, TypeKind arg_type)
      : kind_(kind), arg_type_(arg_type) {}

  void Resize(int64_t n) override {
    state_.resize(static_cast<size_t>(n));
  }

  void Add(const int32_t* group_ids, const BlockPtr& arg,
           int64_t rows) override {
    DecodedBlock d;
    d.Decode(arg);
    for (int64_t i = 0; i < rows; ++i) {
      if (d.IsNull(i)) continue;
      double v = arg_type_ == TypeKind::kDouble
                     ? d.ValueAt<double>(i)
                     : static_cast<double>(d.ValueAt<int64_t>(i));
      Moments& m = state_[static_cast<size_t>(group_ids[i])];
      m.n += 1;
      m.sum += v;
      m.sumsq += v * v;
    }
  }

  Status Merge(const int32_t* group_ids, const BlockPtr& state,
               int64_t rows) override {
    DecodedBlock d;
    d.Decode(state);
    for (int64_t i = 0; i < rows; ++i) {
      if (d.IsNull(i)) continue;
      std::string_view blob = d.StringAt(i);
      if (blob.size() != sizeof(Moments)) {
        return Status::Internal("bad moments intermediate state");
      }
      Moments in;
      std::memcpy(&in, blob.data(), sizeof(Moments));
      Moments& m = state_[static_cast<size_t>(group_ids[i])];
      m.n += in.n;
      m.sum += in.sum;
      m.sumsq += in.sumsq;
    }
    return Status::OK();
  }

  BlockPtr BuildIntermediate(int64_t n) override {
    BlockBuilder b(TypeKind::kVarchar);
    for (int64_t i = 0; i < n; ++i) {
      const Moments& m = state_[static_cast<size_t>(i)];
      b.AppendString(std::string_view(reinterpret_cast<const char*>(&m),
                                      sizeof(Moments)));
    }
    return b.Build();
  }

  BlockPtr BuildFinal(int64_t n) override {
    BlockBuilder b(TypeKind::kDouble);
    for (int64_t i = 0; i < n; ++i) {
      const Moments& m = state_[static_cast<size_t>(i)];
      if (m.n == 0 || (kind_ != AggKind::kAvg && m.n < 2)) {
        b.AppendNull();
        continue;
      }
      double mean = m.sum / static_cast<double>(m.n);
      switch (kind_) {
        case AggKind::kAvg:
          b.AppendDouble(mean);
          break;
        case AggKind::kVariance:
        case AggKind::kStddev: {
          double num = m.sumsq - static_cast<double>(m.n) * mean * mean;
          double var = num / static_cast<double>(m.n - 1);
          if (var < 0) var = 0;  // numeric noise
          b.AppendDouble(kind_ == AggKind::kStddev ? std::sqrt(var) : var);
          break;
        }
        default:
          PRESTO_UNREACHABLE();
      }
    }
    return b.Build();
  }

  int64_t MemoryBytes() const override {
    return static_cast<int64_t>(state_.size() * sizeof(Moments));
  }

 private:
  AggKind kind_;
  TypeKind arg_type_;
  std::vector<Moments> state_;
};

// Encodes a non-null scalar into bytes for distinct sets.
std::string EncodeDistinctKey(const DecodedBlock& d, TypeKind type,
                              int64_t row) {
  switch (type) {
    case TypeKind::kBoolean: {
      char c = d.ValueAt<uint8_t>(row) ? 1 : 0;
      return std::string(1, c);
    }
    case TypeKind::kBigint:
    case TypeKind::kDate: {
      int64_t v = d.ValueAt<int64_t>(row);
      return std::string(reinterpret_cast<const char*>(&v), sizeof(v));
    }
    case TypeKind::kDouble: {
      double v = d.ValueAt<double>(row);
      if (v == 0.0) v = 0.0;  // normalize -0.0
      return std::string(reinterpret_cast<const char*>(&v), sizeof(v));
    }
    case TypeKind::kVarchar:
      return std::string(d.StringAt(row));
    default:
      PRESTO_UNREACHABLE();
  }
}

class CountDistinctAccumulator final : public Accumulator {
 public:
  explicit CountDistinctAccumulator(TypeKind arg_type)
      : arg_type_(arg_type) {}

  void Resize(int64_t n) override { sets_.resize(static_cast<size_t>(n)); }

  void Add(const int32_t* group_ids, const BlockPtr& arg,
           int64_t rows) override {
    DecodedBlock d;
    d.Decode(arg);
    for (int64_t i = 0; i < rows; ++i) {
      if (d.IsNull(i)) continue;
      sets_[static_cast<size_t>(group_ids[i])].insert(
          EncodeDistinctKey(d, arg_type_, i));
    }
  }

  Status Merge(const int32_t* group_ids, const BlockPtr& state,
               int64_t rows) override {
    DecodedBlock d;
    d.Decode(state);
    for (int64_t i = 0; i < rows; ++i) {
      if (d.IsNull(i)) continue;
      std::string_view blob = d.StringAt(i);
      auto& set = sets_[static_cast<size_t>(group_ids[i])];
      // Blob: sequence of (u32 len, bytes).
      size_t off = 0;
      while (off + 4 <= blob.size()) {
        uint32_t len = 0;
        std::memcpy(&len, blob.data() + off, 4);
        off += 4;
        if (off + len > blob.size()) {
          return Status::Internal("bad distinct intermediate state");
        }
        set.insert(std::string(blob.substr(off, len)));
        off += len;
      }
    }
    return Status::OK();
  }

  BlockPtr BuildIntermediate(int64_t n) override {
    BlockBuilder b(TypeKind::kVarchar);
    std::string blob;
    for (int64_t i = 0; i < n; ++i) {
      blob.clear();
      for (const auto& key : sets_[static_cast<size_t>(i)]) {
        auto len = static_cast<uint32_t>(key.size());
        blob.append(reinterpret_cast<const char*>(&len), 4);
        blob.append(key);
      }
      b.AppendString(blob);
    }
    return b.Build();
  }

  BlockPtr BuildFinal(int64_t n) override {
    std::vector<int64_t> counts(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      counts[static_cast<size_t>(i)] =
          static_cast<int64_t>(sets_[static_cast<size_t>(i)].size());
    }
    return MakeBigintBlock(std::move(counts));
  }

  int64_t MemoryBytes() const override {
    int64_t total = 0;
    for (const auto& s : sets_) {
      total += static_cast<int64_t>(s.size() * 48 + 64);
    }
    return total;
  }

 private:
  TypeKind arg_type_;
  std::vector<std::unordered_set<std::string>> sets_;
};

// HyperLogLog with 2^11 registers (standard error ~2.3%), mirroring
// Presto's approx_distinct default accuracy class.
class ApproxDistinctAccumulator final : public Accumulator {
 public:
  static constexpr int kBits = 11;
  static constexpr int kRegisters = 1 << kBits;

  explicit ApproxDistinctAccumulator(TypeKind arg_type)
      : arg_type_(arg_type) {}

  void Resize(int64_t n) override {
    if (static_cast<size_t>(n) > regs_.size()) {
      regs_.resize(static_cast<size_t>(n));
    }
  }

  void Add(const int32_t* group_ids, const BlockPtr& arg,
           int64_t rows) override {
    DecodedBlock d;
    d.Decode(arg);
    for (int64_t i = 0; i < rows; ++i) {
      if (d.IsNull(i)) continue;
      uint64_t h = d.HashAt(i);
      Observe(static_cast<size_t>(group_ids[i]), h);
    }
  }

  Status Merge(const int32_t* group_ids, const BlockPtr& state,
               int64_t rows) override {
    DecodedBlock d;
    d.Decode(state);
    for (int64_t i = 0; i < rows; ++i) {
      if (d.IsNull(i)) continue;
      std::string_view blob = d.StringAt(i);
      if (blob.empty()) continue;
      if (blob.size() != kRegisters) {
        return Status::Internal("bad hll intermediate state");
      }
      auto& regs = Registers(static_cast<size_t>(group_ids[i]));
      for (int r = 0; r < kRegisters; ++r) {
        auto v = static_cast<uint8_t>(blob[static_cast<size_t>(r)]);
        if (v > regs[static_cast<size_t>(r)]) {
          regs[static_cast<size_t>(r)] = v;
        }
      }
    }
    return Status::OK();
  }

  BlockPtr BuildIntermediate(int64_t n) override {
    BlockBuilder b(TypeKind::kVarchar);
    for (int64_t i = 0; i < n; ++i) {
      const auto& slot = regs_[static_cast<size_t>(i)];
      if (slot.empty()) {
        b.AppendString("");
      } else {
        b.AppendString(std::string_view(
            reinterpret_cast<const char*>(slot.data()), slot.size()));
      }
    }
    return b.Build();
  }

  BlockPtr BuildFinal(int64_t n) override {
    std::vector<int64_t> counts(static_cast<size_t>(n), 0);
    for (int64_t i = 0; i < n; ++i) {
      counts[static_cast<size_t>(i)] = Estimate(static_cast<size_t>(i));
    }
    return MakeBigintBlock(std::move(counts));
  }

  int64_t MemoryBytes() const override {
    int64_t total = 0;
    for (const auto& r : regs_) total += static_cast<int64_t>(r.size());
    return total;
  }

 private:
  std::vector<uint8_t>& Registers(size_t group) {
    auto& slot = regs_[group];
    if (slot.empty()) slot.resize(kRegisters, 0);
    return slot;
  }

  void Observe(size_t group, uint64_t hash) {
    auto& regs = Registers(group);
    auto bucket = static_cast<size_t>(hash >> (64 - kBits));
    uint64_t rest = hash << kBits;
    uint8_t rank = 1;
    while (rank <= 64 - kBits && (rest & (1ULL << 63)) == 0) {
      ++rank;
      rest <<= 1;
    }
    if (rank > regs[bucket]) regs[bucket] = rank;
  }

  int64_t Estimate(size_t group) const {
    const auto& regs = regs_[group];
    if (regs.empty()) return 0;
    double sum = 0;
    int zeros = 0;
    for (uint8_t r : regs) {
      sum += std::ldexp(1.0, -static_cast<int>(r));
      if (r == 0) ++zeros;
    }
    const double m = kRegisters;
    const double alpha = 0.7213 / (1.0 + 1.079 / m);
    double est = alpha * m * m / sum;
    if (est <= 2.5 * m && zeros > 0) {
      // Linear counting for the small range.
      est = m * std::log(m / static_cast<double>(zeros));
    }
    return static_cast<int64_t>(est + 0.5);
  }

  TypeKind arg_type_;
  std::vector<std::vector<uint8_t>> regs_;
};

}  // namespace

std::unique_ptr<Accumulator> CreateAccumulator(const AggregateSignature& sig) {
  switch (sig.kind) {
    case AggKind::kCountAll:
      return std::make_unique<CountAccumulator>(true);
    case AggKind::kCount:
      return std::make_unique<CountAccumulator>(false);
    case AggKind::kSum:
      if (sig.arg_type == TypeKind::kDouble) {
        return std::make_unique<SumAccumulator<double>>(TypeKind::kDouble);
      }
      return std::make_unique<SumAccumulator<int64_t>>(TypeKind::kBigint);
    case AggKind::kMin:
    case AggKind::kMax: {
      bool is_min = sig.kind == AggKind::kMin;
      switch (sig.arg_type) {
        case TypeKind::kBoolean:
          return std::make_unique<MinMaxAccumulator<uint8_t>>(
              TypeKind::kBoolean, is_min);
        case TypeKind::kBigint:
        case TypeKind::kDate:
          return std::make_unique<MinMaxAccumulator<int64_t>>(sig.arg_type,
                                                              is_min);
        case TypeKind::kDouble:
          return std::make_unique<MinMaxAccumulator<double>>(
              TypeKind::kDouble, is_min);
        case TypeKind::kVarchar:
          return std::make_unique<MinMaxStringAccumulator>(is_min);
        default:
          PRESTO_UNREACHABLE();
      }
      PRESTO_UNREACHABLE();
    }
    case AggKind::kAvg:
    case AggKind::kStddev:
    case AggKind::kVariance:
      return std::make_unique<MomentsAccumulator>(sig.kind, sig.arg_type);
    case AggKind::kCountDistinct:
      return std::make_unique<CountDistinctAccumulator>(sig.arg_type);
    case AggKind::kApproxDistinct:
      return std::make_unique<ApproxDistinctAccumulator>(sig.arg_type);
  }
  PRESTO_UNREACHABLE();
}

}  // namespace presto
