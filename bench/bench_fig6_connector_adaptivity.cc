// Figure 6 reproduction: "Query runtimes for a subset of TPC-DS" — the
// same 19 labeled queries executed against three configurations:
//   (1) raptor             — shared-nothing local flash, stats available
//   (2) hive (no stats)    — remote DFS, optimizer has no statistics
//   (3) hive (stats)       — remote DFS, table/column statistics enable the
//                            cost-based join re-ordering and join-strategy
//                            selection of §IV-C.
// The paper's claim is relative: Raptor is fastest (storage latency), and
// statistics close much of the gap for join-heavy queries on Hive.
//
//   ./build/bench/bench_fig6_connector_adaptivity [scale]

#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"

using namespace presto;         // NOLINT
using namespace presto::bench;  // NOLINT

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 1.0;

  EngineOptions options;
  options.cluster.num_workers = 4;
  options.cluster.executor.threads = 2;

  std::printf("Figure 6: connector adaptivity, TPC-H-style scale %.2f\n",
              scale);
  std::printf("(paper: TPC-DS 30TB on 100 nodes; shape, not absolutes)\n\n");

  auto tpch = std::make_shared<TpchConnector>("tpch", scale);
  const std::vector<std::string> tables = {"lineitem", "orders", "customer",
                                           "supplier", "part", "nation"};

  // Config 1: raptor (bucketed on the join key where present).
  PrestoEngine raptor_engine(options);
  auto raptor = std::make_shared<RaptorConnector>("raptor");
  PRESTO_CHECK(
      LoadRaptorFromTpch(tpch.get(), raptor.get(), tables, "orderkey", 8)
          .ok());
  raptor_engine.catalog().Register(raptor);

  // Config 2+3: hive over remote DFS; same loaded data, stats toggled.
  auto hive = std::make_shared<HiveConnector>("hive");
  PRESTO_CHECK(LoadHiveFromTpch(tpch.get(), hive.get(), tables).ok());

  PrestoEngine hive_nostats_engine(options);
  hive_nostats_engine.catalog().Register(hive);

  PrestoEngine hive_stats_engine(options);
  hive_stats_engine.catalog().Register(hive);
  for (const auto& table : tables) {
    PRESTO_CHECK(hive->AnalyzeTable(table).ok());
  }

  std::printf("%-5s %14s %18s %15s\n", "query", "raptor_ms",
              "hive_nostats_ms", "hive_stats_ms");
  BenchReport report("fig6_connector_adaptivity");
  double sum_raptor = 0, sum_nostats = 0, sum_stats = 0;
  for (const auto& q : Fig6Queries("raptor")) {
    double raptor_ms =
        static_cast<double>(TimeQuery(&raptor_engine, q.sql)) / 1000.0;
    sum_raptor += raptor_ms;
    // Same query against hive (swap catalog prefix).
    std::string hive_sql = q.sql;
    for (size_t pos = 0; (pos = hive_sql.find("raptor.", pos)) !=
                         std::string::npos;) {
      hive_sql.replace(pos, 7, "hive.");
    }
    double nostats_ms =
        static_cast<double>(TimeQuery(&hive_nostats_engine, hive_sql)) /
        1000.0;
    sum_nostats += nostats_ms;
    double stats_ms =
        static_cast<double>(TimeQuery(&hive_stats_engine, hive_sql)) / 1000.0;
    sum_stats += stats_ms;
    std::printf("%-5s %14.1f %18.1f %15.1f\n", q.label.c_str(), raptor_ms,
                nostats_ms, stats_ms);
    report.Add(q.label, "raptor", raptor_ms, "ms");
    report.Add(q.label, "hive_nostats", nostats_ms, "ms");
    report.Add(q.label, "hive_stats", stats_ms, "ms");
  }
  std::printf("%-5s %14.1f %18.1f %15.1f\n", "TOTAL", sum_raptor, sum_nostats,
              sum_stats);
  report.Add("TOTAL", "raptor", sum_raptor, "ms");
  report.Add("TOTAL", "hive_nostats", sum_nostats, "ms");
  report.Add("TOTAL", "hive_stats", sum_stats, "ms");
  std::printf(
      "\nexpected shape: raptor <= hive(stats) <= hive(no stats); stats "
      "help most on the multi-join queries (q35, q80, ...)\n");
  std::string json = report.WriteJson();
  if (!json.empty()) std::printf("wrote %s\n", json.c_str());
  return 0;
}
