// §V-E ablation: operating on compressed data. The page processor
// evaluates expressions once per dictionary entry (or once per RLE run)
// instead of once per row, and reuses results when consecutive blocks share
// a dictionary. This microbench compares the same projection over
// dictionary-encoded vs. pre-flattened input.
//
//   ./build/bench/bench_compressed_exec

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "expr/page_processor.h"
#include "expr/function_registry.h"
#include "vector/encoded_block.h"

namespace presto {
namespace {

ExprPtr Col(int i, TypeKind t) { return Expr::MakeColumn(i, t); }
ExprPtr Lit(Value v) { return Expr::MakeLiteral(std::move(v)); }
ExprPtr Call(const std::string& name, std::vector<ExprPtr> args) {
  std::vector<TypeKind> types;
  for (const auto& a : args) types.push_back(a->type());
  auto fn = FunctionRegistry::Instance().Resolve(name, types);
  PRESTO_CHECK(fn.ok());
  return Expr::MakeCall(*fn, std::move(args));
}

// A low-cardinality string column: 16 distinct values, 8192 rows, with the
// same shared dictionary across pages (as ORC stripes produce, §V-E).
std::vector<Page> DictPages(int num_pages, bool flatten) {
  std::vector<std::string> entries;
  for (int i = 0; i < 16; ++i) {
    entries.push_back("category_with_long_name_" + std::to_string(i));
  }
  auto dictionary = MakeVarcharBlock(entries);
  Random rng(9);
  std::vector<Page> pages;
  for (int p = 0; p < num_pages; ++p) {
    std::vector<int32_t> indices;
    for (int i = 0; i < 8192; ++i) {
      indices.push_back(static_cast<int32_t>(rng.NextUint64(16)));
    }
    BlockPtr block =
        std::make_shared<DictionaryBlock>(dictionary, std::move(indices));
    if (flatten) block = block->Flatten();
    pages.push_back(Page({block}));
  }
  return pages;
}

// Projection: upper(s) || '!' — string work per evaluated value.
std::vector<ExprPtr> Projection() {
  return {Call("concat", {Call("upper", {Col(0, TypeKind::kVarchar)}),
                          Lit(Value::Varchar("!"))})};
}

void RunPages(benchmark::State& state, bool flatten) {
  auto pages = DictPages(16, flatten);
  for (auto _ : state) {
    PageProcessor processor(nullptr, Projection(), EvalMode::kCompiled);
    int64_t rows = 0;
    for (const auto& page : pages) {
      auto out = processor.Process(page);
      PRESTO_CHECK(out.ok());
      rows += out->num_rows();
    }
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * 16 * 8192);
}

void BM_ProjectOverDictionary(benchmark::State& state) {
  RunPages(state, /*flatten=*/false);
}
void BM_ProjectOverFlat(benchmark::State& state) {
  RunPages(state, /*flatten=*/true);
}

// Filter over an RLE (constant) column: evaluated once per run.
void BM_FilterOverRle(benchmark::State& state) {
  std::vector<Page> pages;
  for (int p = 0; p < 16; ++p) {
    pages.push_back(Page({MakeConstantBlock(Value::Bigint(p % 4), 8192)}));
  }
  auto filter = Call("eq", {Col(0, TypeKind::kBigint), Lit(Value::Bigint(1))});
  for (auto _ : state) {
    PageProcessor processor(filter, {Col(0, TypeKind::kBigint)},
                            EvalMode::kCompiled);
    int64_t rows = 0;
    for (const auto& page : pages) {
      auto out = processor.Process(page);
      PRESTO_CHECK(out.ok());
      rows += out->num_rows();
    }
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * 16 * 8192);
}

void BM_FilterOverFlatEquivalent(benchmark::State& state) {
  std::vector<Page> pages;
  for (int p = 0; p < 16; ++p) {
    pages.push_back(
        Page({MakeConstantBlock(Value::Bigint(p % 4), 8192)->Flatten()}));
  }
  auto filter = Call("eq", {Col(0, TypeKind::kBigint), Lit(Value::Bigint(1))});
  for (auto _ : state) {
    PageProcessor processor(filter, {Col(0, TypeKind::kBigint)},
                            EvalMode::kCompiled);
    int64_t rows = 0;
    for (const auto& page : pages) {
      auto out = processor.Process(page);
      PRESTO_CHECK(out.ok());
      rows += out->num_rows();
    }
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * 16 * 8192);
}

BENCHMARK(BM_ProjectOverDictionary);
BENCHMARK(BM_ProjectOverFlat);
BENCHMARK(BM_FilterOverRle);
BENCHMARK(BM_FilterOverFlatEquivalent);

}  // namespace
}  // namespace presto

BENCHMARK_MAIN();
