// §IV-E3 ablation: adaptive writer scaling. A CTAS writer stage starts with
// one active writer and scales up while producer output buffers stay busy.
// Compares files produced and wall time: adaptive scaling should approach
// fixed-wide throughput while producing fewer files on small writes (the
// paper's "hundreds of writes of a small aggregate amount of data are
// likely to create small files" problem).
//
//   ./build/bench/bench_writer_scaling

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stopwatch.h"

using namespace presto;         // NOLINT
using namespace presto::bench;  // NOLINT

namespace {

struct WriteRun {
  double wall_ms;
  int files;
  int final_writers;
};

WriteRun RunCtas(bool adaptive, double scale, const char* filter) {
  EngineOptions options;
  options.cluster.num_workers = 4;
  options.cluster.executor.threads = 2;
  options.cluster.adaptive_writer_scaling = adaptive;
  // Small exchange buffers make producer backpressure visible to the
  // writer-scaling monitor.
  options.cluster.exchange_buffer_bytes = 256 << 10;
  PrestoEngine engine(options);
  auto tpch = std::make_shared<TpchConnector>("tpch", scale);
  engine.catalog().Register(tpch);
  auto hive = std::make_shared<HiveConnector>("hive");
  RowSchema schema = (*tpch->metadata().GetTable("lineitem"))->schema();
  engine.catalog().Register(hive);
  engine.catalog().SetDefault("tpch");

  std::string sql = std::string(
                        "CREATE TABLE hive.out AS SELECT * FROM lineitem ") +
                    filter;
  Stopwatch watch;
  auto result = engine.Execute(sql);
  PRESTO_CHECK(result.ok());
  auto rows = result->FetchAllRows();
  PRESTO_CHECK(rows.ok());
  WriteRun run;
  run.wall_ms = static_cast<double>(watch.ElapsedMicros()) / 1000.0;
  run.files = static_cast<int>(hive->dfs().List("/warehouse/out/").size());
  // Writer fragment is the one with round-robin output.
  run.final_writers = -1;
  for (int f = 0; f < 8; ++f) {
    int writers = result->execution().active_writers(f);
    if (writers >= 0) run.final_writers = writers;
  }
  return run;
}

}  // namespace

int main() {
  std::printf("Section IV-E3: adaptive writer scaling (CTAS into hive)\n\n");
  std::printf("%-24s %-10s %10s %8s %14s\n", "workload", "mode", "wall_ms",
              "files", "final_writers");
  struct Case {
    const char* name;
    double scale;
    const char* filter;
  };
  const Case cases[] = {
      // Few matching rows per page: fixed-wide writing scatters them into
      // many small files (the paper's S3 small-files problem).
      {"small write (selective)", 1.0, "WHERE orderkey % 50 = 0"},
      {"large write (full scan)", 4.0, ""},
  };
  for (const auto& c : cases) {
    for (bool adaptive : {false, true}) {
      WriteRun run = RunCtas(adaptive, c.scale, c.filter);
      std::printf("%-24s %-10s %10.1f %8d %14d\n", c.name,
                  adaptive ? "adaptive" : "fixed", run.wall_ms, run.files,
                  run.final_writers);
    }
  }
  std::printf(
      "\nexpected shape: adaptive produces fewer files on the small write "
      "(writers stay at 1) and scales up writers on the large write to "
      "approach fixed-wide wall time\n");
  return 0;
}
