// Table I reproduction: "Presto deployments to support selected use cases"
// — runs each use case's workload shape on its connector and reports the
// observed query-duration band, concurrency, and connector, mirroring the
// table's columns (cluster sizes are simulated workers).
//
//   ./build/bench/bench_table1_use_cases

#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"

using namespace presto;         // NOLINT
using namespace presto::bench;  // NOLINT

namespace {

struct Row {
  std::string use_case;
  std::string workload;
  std::string connector;
  int concurrency;
  std::vector<double> runtimes_ms;
};

void PrintRow(const Row& row, BenchReport* report) {
  double lo = Percentile(row.runtimes_ms, 5);
  double hi = Percentile(row.runtimes_ms, 95);
  std::printf("%-26s %-38s %10.1f-%-10.1f %6d %12s\n", row.use_case.c_str(),
              row.workload.c_str(), lo, hi, row.concurrency,
              row.connector.c_str());
  report->Add(row.use_case, "duration_p5", lo, "ms");
  report->Add(row.use_case, "duration_p95", hi, "ms");
  report->Add(row.use_case, "concurrency", row.concurrency, "clients");
}

// Runs `sql_gen(i)` `n` times across `concurrency` client threads.
std::vector<double> RunConcurrent(
    PrestoEngine* engine, int n, int concurrency,
    const std::function<std::string(int)>& sql_gen) {
  std::vector<double> runtimes;
  std::mutex mu;
  std::atomic<int> next{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < concurrency; ++t) {
    threads.emplace_back([&] {
      for (;;) {
        int i = next.fetch_add(1);
        if (i >= n) return;
        Stopwatch watch;
        auto status = RunQuery(engine, sql_gen(i));
        if (status.ok()) {
          std::lock_guard<std::mutex> lock(mu);
          runtimes.push_back(
              static_cast<double>(watch.ElapsedMicros()) / 1000.0);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  return runtimes;
}

}  // namespace

int main() {
  EngineOptions options;
  options.cluster.num_workers = 4;
  options.cluster.executor.threads = 2;
  PrestoEngine engine(options);
  Random rng(3);

  auto tpch = std::make_shared<TpchConnector>("tpch", 1.0);
  auto mysql = std::make_shared<ShardedStoreConnector>("mysql");
  PRESTO_CHECK(LoadAppEvents(mysql.get(), 60000, 500).ok());
  engine.catalog().Register(mysql);
  auto raptor = std::make_shared<RaptorConnector>("raptor");
  PRESTO_CHECK(LoadRaptorFromTpch(tpch.get(), raptor.get(),
                                  {"orders", "customer"}, "custkey", 8)
                   .ok());
  engine.catalog().Register(raptor);
  auto hive = std::make_shared<HiveConnector>("hive");
  PRESTO_CHECK(LoadHiveFromTpch(tpch.get(), hive.get(),
                                {"orders", "lineitem", "customer"})
                   .ok());
  for (const char* t : {"orders", "lineitem", "customer"}) {
    PRESTO_CHECK(hive->AnalyzeTable(t).ok());
  }
  engine.catalog().Register(hive);

  std::printf("Table I: use-case deployments (observed on %d simulated "
              "workers)\n\n",
              options.cluster.num_workers);
  std::printf("%-26s %-38s %21s %6s %12s\n", "use case", "workload shape",
              "duration p5-p95 (ms)", "conc", "connector");
  BenchReport report("table1_use_cases");

  // Developer/Advertiser Analytics: 100s of highly selective queries.
  {
    Row row{"Developer/Advertiser", "joins/aggs, highly selective", "mysql",
            16, {}};
    row.runtimes_ms = RunConcurrent(&engine, 64, row.concurrency, [&](int i) {
      return "SELECT day, sum(value) FROM mysql.app_events WHERE app_id = " +
             std::to_string(i % 500) + " GROUP BY day LIMIT 30";
    });
    PrintRow(row, &report);
  }
  // A/B Testing: 10s of join-heavy queries on raptor.
  {
    Row row{"A/B Testing", "join billions of rows, slice/dice", "raptor", 8,
            {}};
    row.runtimes_ms = RunConcurrent(&engine, 24, row.concurrency, [&](int i) {
      const char* dims[] = {"c.mktsegment", "o.orderpriority",
                            "o.orderstatus"};
      return std::string("SELECT ") + dims[i % 3] +
             ", count(*), avg(o.totalprice) FROM raptor.orders o JOIN "
             "raptor.customer c ON o.custkey = c.custkey GROUP BY " +
             dims[i % 3];
    });
    PrintRow(row, &report);
  }
  // Interactive Analytics: 50-100 concurrent exploratory queries.
  {
    Row row{"Interactive Analytics", "exploratory aggs over warehouse",
            "hive", 12, {}};
    row.runtimes_ms = RunConcurrent(&engine, 36, row.concurrency, [&](int i) {
      switch (i % 3) {
        case 0:
          return std::string(
              "SELECT orderpriority, count(*), sum(totalprice) FROM "
              "hive.orders GROUP BY orderpriority");
        case 1:
          return std::string(
              "SELECT shipmode, avg(extendedprice) FROM hive.lineitem "
              "GROUP BY shipmode");
        default:
          return std::string(
              "SELECT c.mktsegment, count(*) FROM hive.orders o JOIN "
              "hive.customer c ON o.custkey = c.custkey GROUP BY "
              "c.mktsegment");
      }
    });
    PrintRow(row, &report);
  }
  // Batch ETL: a few large transform-and-write jobs.
  {
    Row row{"Batch ETL", "transform/join, write derived table", "hive", 2,
            {}};
    row.runtimes_ms = RunConcurrent(&engine, 4, row.concurrency, [&](int i) {
      return "CREATE TABLE hive.table1_etl_" + std::to_string(i) +
             " AS SELECT o.orderkey, sum(l.extendedprice * (1 - "
             "l.discount)) AS revenue FROM hive.orders o JOIN hive.lineitem "
             "l ON o.orderkey = l.orderkey GROUP BY o.orderkey";
    });
    PrintRow(row, &report);
  }
  std::printf(
      "\nexpected shape (paper Table I): Dev/Adv 50ms-5s | A/B 1-25s | "
      "Interactive 10s-30min | ETL 20min-5hr — bands ordered the same "
      "way here, compressed to laptop scale\n");
  std::string json = report.WriteJson();
  if (!json.empty()) std::printf("wrote %s\n", json.c_str());
  return 0;
}
