// ISSUE 8 benchmark: planning-path QPS with the metadata/split/plan caches
// on (warm) vs off (cold). Repeatedly plans a mix of analytical queries
// through PrestoEngine::Explain — parse -> analyze/plan -> optimize ->
// fragment, no execution — and reports cold-vs-warm p50/p99 planning
// latency, planning QPS, and the warm engine's cache hit ratios. A final
// staleness segment mutates a table between cached executions and counts
// stale reads (must be zero: the invalidation hook runs synchronously on
// the write path).
//
//   ./build/bench/bench_planning_qps [rounds]
//
// Emits BENCH_planning.json (see scripts/check_planning.py).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "connectors/memcon/memory_connector.h"
#include "vector/block.h"

using namespace presto;         // NOLINT
using namespace presto::bench;  // NOLINT

namespace {

// A planning-heavy mix: deep multi-joins and aggregates that exercise the
// cost-based optimizer (per-table stats fetches, join ordering, property
// propagation) and the fragmenter. Cold planning cost scales with join
// depth; a plan-cache hit costs the same regardless.
const char* kQueries[] = {
    "SELECT n.name, sum(l.extendedprice * (1 - l.discount)) "
    "FROM lineitem l JOIN orders o ON l.orderkey = o.orderkey "
    "JOIN customer c ON o.custkey = c.custkey "
    "JOIN supplier s ON l.suppkey = s.suppkey "
    "JOIN nation n ON s.nationkey = n.nationkey "
    "WHERE o.totalprice > 1000 GROUP BY n.name",
    "SELECT p.type, avg(ps.supplycost), count(*) "
    "FROM partsupp ps JOIN part p ON ps.partkey = p.partkey "
    "JOIN supplier s ON ps.suppkey = s.suppkey "
    "JOIN nation n ON s.nationkey = n.nationkey "
    "JOIN region r ON n.regionkey = r.regionkey "
    "WHERE p.size < 30 GROUP BY p.type",
    "SELECT r.name, count(*) "
    "FROM lineitem l JOIN orders o ON l.orderkey = o.orderkey "
    "JOIN customer c ON o.custkey = c.custkey "
    "JOIN nation n ON c.nationkey = n.nationkey "
    "JOIN region r ON n.regionkey = r.regionkey "
    "WHERE l.quantity < 25 GROUP BY r.name",
    "SELECT s.name, sum(ps.availqty) "
    "FROM partsupp ps JOIN supplier s ON ps.suppkey = s.suppkey "
    "JOIN part p ON ps.partkey = p.partkey "
    "WHERE p.brand = 'Brand#23' GROUP BY s.name "
    "ORDER BY 2 DESC LIMIT 10",
    "SELECT c.mktsegment, o.orderstatus, count(*), avg(o.totalprice) "
    "FROM orders o JOIN customer c ON o.custkey = c.custkey "
    "JOIN nation n ON c.nationkey = n.nationkey "
    "GROUP BY c.mktsegment, o.orderstatus",
};

struct Latencies {
  std::vector<double> micros;
  double p50() const { return Percentile(micros, 50); }
  double p99() const { return Percentile(micros, 99); }
  double qps() const {
    double total_s = 0;
    for (double us : micros) total_s += us * 1e-6;
    return total_s > 0 ? static_cast<double>(micros.size()) / total_s : 0;
  }
};

Latencies PlanRounds(PrestoEngine* engine, int rounds) {
  Latencies out;
  for (int r = 0; r < rounds; ++r) {
    for (const char* sql : kQueries) {
      Stopwatch timer;
      auto plan = engine->Explain(sql);
      PRESTO_CHECK(plan.ok());
      out.micros.push_back(static_cast<double>(timer.ElapsedMicros()));
    }
  }
  return out;
}

RowSchema EventsSchema() {
  RowSchema schema;
  schema.Add("k", TypeKind::kBigint);
  return schema;
}

Page EventsPage(int64_t rows) {
  std::vector<int64_t> values;
  for (int64_t i = 0; i < rows; ++i) values.push_back(i);
  return Page({MakeBigintBlock(std::move(values))});
}

// Executes the same cached count query across `mutations` table rewrites;
// returns how many executions observed a stale row count.
int64_t StalenessSegment(int mutations) {
  EngineOptions options;
  options.cluster.num_workers = 2;
  options.cluster.executor.threads = 2;
  PrestoEngine engine(options);
  auto mem = std::make_shared<MemoryConnector>("memory");
  PRESTO_CHECK(mem->CreateTable("events", EventsSchema(),
                                {EventsPage(100)}).ok());
  engine.catalog().Register(mem);
  engine.catalog().SetDefault("memory");

  int64_t stale = 0;
  int64_t expected = 100;
  for (int m = 0; m < mutations; ++m) {
    // Warm the plan cache, then mutate, then re-query.
    for (int i = 0; i < 2; ++i) {
      auto rows = engine.ExecuteAndFetch("SELECT count(*) FROM events");
      PRESTO_CHECK(rows.ok());
      if ((*rows)[0][0] != Value::Bigint(expected)) ++stale;
    }
    expected = 100 + m + 1;
    PRESTO_CHECK(mem->CreateTable("events", EventsSchema(),
                                  {EventsPage(expected)}).ok());
    auto rows = engine.ExecuteAndFetch("SELECT count(*) FROM events");
    PRESTO_CHECK(rows.ok());
    if ((*rows)[0][0] != Value::Bigint(expected)) ++stale;
  }
  return stale;
}

}  // namespace

int main(int argc, char** argv) {
  int rounds = argc > 1 ? std::atoi(argv[1]) : 200;

  EngineOptions cold_options;
  cold_options.metadata.enable_metadata_cache = false;
  cold_options.metadata.enable_split_cache = false;
  cold_options.metadata.enable_plan_cache = false;
  auto cold = MakeTpchEngine(0.01, cold_options);

  auto warm = MakeTpchEngine(0.01);

  // One untimed pass each: JIT-free engine, but first-touch tpch table
  // generation would otherwise skew the cold numbers.
  PlanRounds(cold.get(), 1);
  PlanRounds(warm.get(), 1);

  Latencies cold_lat = PlanRounds(cold.get(), rounds);
  Latencies warm_lat = PlanRounds(warm.get(), rounds);

  MetadataManager& manager = warm->metadata_manager();
  int64_t hits = manager.plan_cache().hits();
  int64_t misses = manager.plan_cache().misses();
  double hit_ratio = hits + misses > 0
                         ? static_cast<double>(hits) /
                               static_cast<double>(hits + misses)
                         : 0.0;
  int64_t stale_reads = StalenessSegment(20);
  double speedup = warm_lat.p99() > 0 ? cold_lat.p99() / warm_lat.p99() : 0;

  std::printf("planning latency over %d rounds x %zu queries\n", rounds,
              sizeof(kQueries) / sizeof(kQueries[0]));
  std::printf("  cold (caches off): p50 %8.1f us   p99 %8.1f us   %8.0f qps\n",
              cold_lat.p50(), cold_lat.p99(), cold_lat.qps());
  std::printf("  warm (caches on):  p50 %8.1f us   p99 %8.1f us   %8.0f qps\n",
              warm_lat.p50(), warm_lat.p99(), warm_lat.qps());
  std::printf("  warm p99 speedup: %.1fx   plan-cache hit ratio: %.3f\n",
              speedup, hit_ratio);
  std::printf("  staleness segment: %lld stale reads\n",
              static_cast<long long>(stale_reads));

  BenchReport report("planning");
  report.Add("cold", "planning_p50", cold_lat.p50(), "us");
  report.Add("cold", "planning_p99", cold_lat.p99(), "us");
  report.Add("cold", "planning_qps", cold_lat.qps(), "qps");
  report.Add("warm", "planning_p50", warm_lat.p50(), "us");
  report.Add("warm", "planning_p99", warm_lat.p99(), "us");
  report.Add("warm", "planning_qps", warm_lat.qps(), "qps");
  report.Add("warm", "plan_cache_hit_ratio", hit_ratio, "");
  report.Add("warm", "p99_speedup", speedup, "x");
  report.Add("staleness", "stale_reads", static_cast<double>(stale_reads),
             "reads");
  std::string path = report.WriteJson();
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
