// §V-D reproduction: lazy data loading. The paper reports, on a production
// Batch ETL sample: "lazy loading reduces data fetched by 78%, cells loaded
// by 22% and total CPU time by 14%". This harness runs a selective-filter
// scan over a wide storc table with lazy reads on and off and prints the
// same three reductions.
//
//   ./build/bench/bench_lazy_loading [rows]

#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "vector/block_builder.h"

using namespace presto;         // NOLINT
using namespace presto::bench;  // NOLINT

namespace {

struct RunStats {
  int64_t bytes_fetched = 0;
  int64_t cells_loaded = 0;
  int64_t cpu_ms = 0;
};

// A wide table: one selective filter column plus many payload columns that
// are only needed for the few surviving rows' aggregates.
RunStats RunScan(bool lazy, int64_t rows) {
  EngineOptions options;
  options.cluster.num_workers = 2;
  options.cluster.executor.threads = 2;
  PrestoEngine engine(options);
  HiveConfig config;
  config.lazy_reads = lazy;
  config.dfs = {10, 8LL << 30, 0};
  auto hive = std::make_shared<HiveConnector>("hive", config);

  RowSchema schema;
  schema.Add("k", TypeKind::kBigint);
  for (int c = 0; c < 8; ++c) {
    schema.Add("payload" + std::to_string(c), TypeKind::kDouble);
  }
  schema.Add("label", TypeKind::kVarchar);
  PRESTO_CHECK(hive->CreateTable("wide", schema).ok());
  Random rng(11);
  std::vector<Page> pages;
  const int64_t page_rows = 8192;
  for (int64_t start = 0; start < rows; start += page_rows) {
    int64_t n = std::min(page_rows, rows - start);
    std::vector<BlockPtr> blocks;
    std::vector<int64_t> keys;
    for (int64_t i = 0; i < n; ++i) keys.push_back(start + i);
    blocks.push_back(MakeBigintBlock(std::move(keys)));
    for (int c = 0; c < 8; ++c) {
      std::vector<double> payload;
      for (int64_t i = 0; i < n; ++i) payload.push_back(rng.NextDouble());
      blocks.push_back(MakeDoubleBlock(std::move(payload)));
    }
    std::vector<std::string> labels;
    for (int64_t i = 0; i < n; ++i) {
      // Matches are clustered in the first ~2% of rows so most stripes have
      // zero survivors — but the suffix varies, so min/max stripe stats
      // cannot prune (pruning would mask the lazy-loading effect).
      int64_t row = start + i;
      bool hot = row < rows / 50;
      labels.push_back((hot ? "hot" : "cold") +
                       std::to_string(rng.NextUint64(1000)));
    }
    blocks.push_back(MakeVarcharBlock(labels));
    pages.push_back(Page(std::move(blocks), n));
  }
  PRESTO_CHECK(hive->LoadTable("wide", pages).ok());
  engine.catalog().Register(hive);

  hive->dfs().ResetStats();
  Stopwatch watch;
  // Highly selective, non-pushable filter: the label column is read
  // everywhere, but the eight payload columns materialize only in stripes
  // that contain surviving rows.
  auto result = engine.Execute(
      "SELECT sum(payload0), sum(payload3), sum(payload7), max(k) "
      "FROM hive.wide WHERE substr(label, 1, 3) = 'hot'");
  PRESTO_CHECK(result.ok());
  auto rows_out = result->FetchAllRows();
  PRESTO_CHECK(rows_out.ok());
  RunStats stats;
  stats.cpu_ms = result->execution().total_cpu_nanos() / 1000000;
  stats.bytes_fetched = hive->dfs().total_bytes_read();
  stats.cells_loaded = hive->lazy_stats().cells_loaded.load();
  (void)watch;
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t rows = argc > 1 ? std::atoll(argv[1]) : 200000;
  std::printf("Section V-D: lazy data loading (%lld-row wide table, "
              "selective filter)\n\n",
              static_cast<long long>(rows));
  RunStats eager = RunScan(/*lazy=*/false, rows);
  RunStats lazy = RunScan(/*lazy=*/true, rows);
  auto pct = [](int64_t eager_v, int64_t lazy_v) {
    if (eager_v == 0) return 0.0;
    return 100.0 * (1.0 - static_cast<double>(lazy_v) /
                              static_cast<double>(eager_v));
  };
  std::printf("%-16s %14s %14s %12s\n", "mode", "bytes_fetched",
              "cells_loaded", "cpu_ms");
  std::printf("%-16s %14lld %14lld %12lld\n", "eager",
              static_cast<long long>(eager.bytes_fetched),
              static_cast<long long>(eager.cells_loaded),
              static_cast<long long>(eager.cpu_ms));
  std::printf("%-16s %14lld %14lld %12lld\n", "lazy",
              static_cast<long long>(lazy.bytes_fetched),
              static_cast<long long>(lazy.cells_loaded),
              static_cast<long long>(lazy.cpu_ms));
  std::printf("\nreductions with lazy loading:\n");
  std::printf("  data fetched: %+.0f%%   (paper: -78%%)\n",
              -pct(eager.bytes_fetched, lazy.bytes_fetched));
  std::printf("  cells loaded: %+.0f%%   (paper: -22%%)\n",
              -pct(eager.cells_loaded, lazy.cells_loaded));
  std::printf("  cpu time:     %+.0f%%   (paper: -14%%)\n",
              -pct(eager.cpu_ms, lazy.cpu_ms));
  return 0;
}
