// Figure 7 reproduction: "Query runtime distribution for selected use
// cases" — a CDF of runtimes per use case, demonstrating that one engine
// spans interactive (ms) to batch (long-running) latencies. Ordering to
// reproduce: Dev/Advertiser < A/B Testing < Interactive < Batch ETL.
//
//   ./build/bench/bench_fig7_runtime_cdf [queries_per_use_case]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"

using namespace presto;         // NOLINT
using namespace presto::bench;  // NOLINT

namespace {

struct UseCase {
  std::string name;
  std::vector<double> runtimes_ms;
};

}  // namespace

int main(int argc, char** argv) {
  int per_case = argc > 1 ? std::atoi(argv[1]) : 24;
  EngineOptions options;
  options.cluster.num_workers = 4;
  options.cluster.executor.threads = 2;
  PrestoEngine engine(options);
  Random rng(17);

  // Substrates per Table I: mysql / raptor / hive / hive.
  auto tpch = std::make_shared<TpchConnector>("tpch", 1.0);
  auto mysql = std::make_shared<ShardedStoreConnector>("mysql");
  PRESTO_CHECK(LoadAppEvents(mysql.get(), 60000, 500).ok());
  engine.catalog().Register(mysql);
  auto raptor = std::make_shared<RaptorConnector>("raptor");
  PRESTO_CHECK(LoadRaptorFromTpch(tpch.get(), raptor.get(),
                                  {"orders", "customer"}, "custkey", 8)
                   .ok());
  engine.catalog().Register(raptor);
  auto hive = std::make_shared<HiveConnector>("hive");
  PRESTO_CHECK(LoadHiveFromTpch(tpch.get(), hive.get(),
                                {"orders", "lineitem", "customer"})
                   .ok());
  for (const char* t : {"orders", "lineitem", "customer"}) {
    PRESTO_CHECK(hive->AnalyzeTable(t).ok());
  }
  engine.catalog().Register(hive);

  std::vector<UseCase> cases;

  // Developer/Advertiser Analytics: highly selective, index-driven.
  {
    UseCase uc{"Dev/Advertiser", {}};
    for (int i = 0; i < per_case; ++i) {
      int64_t app = static_cast<int64_t>(rng.NextUint64(500));
      std::string sql =
          "SELECT day, sum(value) FROM mysql.app_events WHERE app_id = " +
          std::to_string(app) + " GROUP BY day ORDER BY day LIMIT 30";
      uc.runtimes_ms.push_back(
          static_cast<double>(TimeQuery(&engine, sql)) / 1000.0);
    }
    cases.push_back(std::move(uc));
  }
  // A/B Testing: co-located join + slice/dice on raptor.
  {
    UseCase uc{"A/B Testing", {}};
    const char* slices[] = {"mktsegment", "orderpriority", "orderstatus"};
    for (int i = 0; i < per_case; ++i) {
      std::string slice = slices[rng.NextUint64(3)];
      std::string column = slice == "mktsegment" ? "c.mktsegment"
                                                 : "o." + slice;
      std::string sql = "SELECT " + column +
                        ", count(*), avg(o.totalprice) FROM raptor.orders o "
                        "JOIN raptor.customer c ON o.custkey = c.custkey "
                        "GROUP BY " +
                        column;
      uc.runtimes_ms.push_back(
          static_cast<double>(TimeQuery(&engine, sql)) / 1000.0);
    }
    cases.push_back(std::move(uc));
  }
  // Interactive Analytics: exploratory mixes over hive.
  {
    UseCase uc{"Interactive", {}};
    for (int i = 0; i < per_case; ++i) {
      std::string sql;
      switch (rng.NextUint64(3)) {
        case 0:
          sql = "SELECT orderpriority, count(*) FROM hive.orders WHERE "
                "totalprice > " +
                std::to_string(50000 + rng.NextUint64(200000)) +
                " GROUP BY orderpriority";
          break;
        case 1:
          sql = "SELECT shipmode, avg(extendedprice) FROM hive.lineitem "
                "WHERE quantity > " +
                std::to_string(rng.NextUint64(40)) + " GROUP BY shipmode";
          break;
        default:
          sql = "SELECT c.mktsegment, count(*) FROM hive.orders o JOIN "
                "hive.customer c ON o.custkey = c.custkey GROUP BY "
                "c.mktsegment";
      }
      uc.runtimes_ms.push_back(
          static_cast<double>(TimeQuery(&engine, sql)) / 1000.0);
    }
    cases.push_back(std::move(uc));
  }
  // Batch ETL: full-table transform+join CTAS jobs.
  {
    UseCase uc{"Batch ETL", {}};
    int etl_jobs = std::max(4, per_case / 4);
    for (int i = 0; i < etl_jobs; ++i) {
      std::string target = "hive.etl_out_" + std::to_string(i);
      std::string sql =
          "CREATE TABLE " + target +
          " AS SELECT o.orderkey, o.orderdate, "
          "sum(l.extendedprice * (1 - l.discount)) AS revenue, "
          "sum(l.quantity) AS qty FROM hive.orders o JOIN hive.lineitem l "
          "ON o.orderkey = l.orderkey GROUP BY o.orderkey, o.orderdate";
      uc.runtimes_ms.push_back(
          static_cast<double>(TimeQuery(&engine, sql)) / 1000.0);
    }
    cases.push_back(std::move(uc));
  }

  std::printf("Figure 7: query runtime CDF per use case (ms)\n");
  std::printf("(paper x-axis spans 20ms..5hr on 100s of nodes)\n\n");
  std::printf("%-16s %8s %8s %8s %8s %8s %8s\n", "use case", "p10", "p25",
              "p50", "p75", "p90", "max");
  for (const auto& uc : cases) {
    std::printf("%-16s %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f\n",
                uc.name.c_str(), Percentile(uc.runtimes_ms, 10),
                Percentile(uc.runtimes_ms, 25), Percentile(uc.runtimes_ms, 50),
                Percentile(uc.runtimes_ms, 75), Percentile(uc.runtimes_ms, 90),
                Percentile(uc.runtimes_ms, 100));
  }
  std::printf(
      "\nexpected shape: medians ordered Dev/Advertiser < A/B < "
      "Interactive < Batch ETL, spanning >1 order of magnitude\n");
  return 0;
}
