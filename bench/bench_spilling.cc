// §IV-F2 ablation: spilling and memory pools. Runs a wide aggregation
// under three memory configurations:
//   (1) ample memory            — fully in-memory (production default);
//   (2) tiny pool + spill       — revocation keeps the query alive;
//   (3) tiny pool, no spill     — the query is killed (resource exhausted).
// Spill runs go through the PageCodec (LZ4, encodings preserved); the
// compressed-vs-raw spill volume is reported and mirrored to
// BENCH_spill.json.
//
//   ./build/bench/bench_spilling [scale]

#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "exec/spiller.h"

using namespace presto;         // NOLINT
using namespace presto::bench;  // NOLINT

namespace {

void RunCase(BenchReport* report, const char* name, double scale,
             int64_t general_pool, bool spill, bool reserved) {
  EngineOptions options;
  options.cluster.num_workers = 1;
  options.cluster.executor.threads = 2;
  options.cluster.memory.per_worker_general = general_pool;
  options.cluster.memory.per_query_per_node_user = 256LL << 20;
  options.cluster.memory.per_query_per_node_total = 256LL << 20;
  options.cluster.memory.enable_spill = spill;
  options.cluster.memory.enable_reserved_pool = reserved;
  auto engine = MakeTpchEngine(scale, options);
  int64_t compressed_before = Spiller::TotalCompressedBytes();
  int64_t raw_before = Spiller::TotalRawBytes();
  Stopwatch watch;
  auto rows = engine->ExecuteAndFetch(
      "SELECT count(*) FROM (SELECT orderkey, sum(quantity) AS q, "
      "count(*) AS n FROM lineitem GROUP BY orderkey) t WHERE q >= 0");
  double ms = static_cast<double>(watch.ElapsedMicros()) / 1000.0;
  int64_t revocations = engine->cluster().worker(0).memory().revocations();
  int64_t compressed = Spiller::TotalCompressedBytes() - compressed_before;
  int64_t raw = Spiller::TotalRawBytes() - raw_before;
  if (rows.ok()) {
    std::printf("%-28s %10.1f %12lld %12lld %12lld   OK\n", name, ms,
                static_cast<long long>(revocations),
                static_cast<long long>(compressed),
                static_cast<long long>(raw));
  } else {
    std::printf("%-28s %10.1f %12lld %12lld %12lld   %s\n", name, ms,
                static_cast<long long>(revocations),
                static_cast<long long>(compressed),
                static_cast<long long>(raw),
                rows.status().ToString().c_str());
  }
  report->Add(name, "wall_ms", ms, "ms");
  report->Add(name, "revocations", static_cast<double>(revocations));
  report->Add(name, "spill_compressed_bytes", static_cast<double>(compressed),
              "bytes");
  report->Add(name, "spill_raw_bytes", static_cast<double>(raw), "bytes");
}

}  // namespace

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 4.0;
  BenchReport report("spill");
  std::printf("Section IV-F2: memory pools, spilling, reserved pool\n");
  std::printf("query: GROUP BY over distinct orderkeys on 1 worker\n\n");
  std::printf("%-28s %10s %12s %12s %12s   %s\n", "configuration", "wall_ms",
              "revocations", "spill_wire", "spill_raw", "status");
  RunCase(&report, "ample memory (in-memory)", scale, 256LL << 20,
          /*spill=*/false, /*reserved=*/false);
  RunCase(&report, "2MB pool + spill", scale, 2LL << 20, /*spill=*/true,
          /*reserved=*/false);
  RunCase(&report, "2MB pool + reserved pool", scale, 2LL << 20,
          /*spill=*/false, /*reserved=*/true);
  RunCase(&report, "2MB pool, no escape hatch", scale, 2LL << 20,
          /*spill=*/false, /*reserved=*/false);
  std::string json = report.WriteJson();
  std::printf(
      "\nexpected shape: in-memory fastest; spill completes with "
      "revocations > 0 and compressed spill volume below raw; reserved "
      "pool completes (single query promoted); no-escape-hatch is killed "
      "with RESOURCE_EXHAUSTED\n");
  if (!json.empty()) std::printf("report: %s\n", json.c_str());
  return 0;
}
