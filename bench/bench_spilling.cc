// §IV-F2 ablation: spilling and memory pools. Runs a wide aggregation
// under three memory configurations:
//   (1) ample memory            — fully in-memory (production default);
//   (2) tiny pool + spill       — revocation keeps the query alive;
//   (3) tiny pool, no spill     — the query is killed (resource exhausted).
//
//   ./build/bench/bench_spilling

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stopwatch.h"

using namespace presto;         // NOLINT
using namespace presto::bench;  // NOLINT

namespace {

void RunCase(const char* name, int64_t general_pool, bool spill,
             bool reserved) {
  EngineOptions options;
  options.cluster.num_workers = 1;
  options.cluster.executor.threads = 2;
  options.cluster.memory.per_worker_general = general_pool;
  options.cluster.memory.per_query_per_node_user = 256LL << 20;
  options.cluster.memory.per_query_per_node_total = 256LL << 20;
  options.cluster.memory.enable_spill = spill;
  options.cluster.memory.enable_reserved_pool = reserved;
  auto engine = MakeTpchEngine(4.0, options);
  Stopwatch watch;
  auto rows = engine->ExecuteAndFetch(
      "SELECT count(*) FROM (SELECT orderkey, sum(quantity) AS q, "
      "count(*) AS n FROM lineitem GROUP BY orderkey) t WHERE q >= 0");
  double ms = static_cast<double>(watch.ElapsedMicros()) / 1000.0;
  int64_t revocations = engine->cluster().worker(0).memory().revocations();
  if (rows.ok()) {
    std::printf("%-28s %10.1f %12lld %14lld   OK\n", name, ms,
                static_cast<long long>(revocations),
                static_cast<long long>((*rows)[0][0].AsBigint()));
  } else {
    std::printf("%-28s %10.1f %12lld %14s   %s\n", name, ms,
                static_cast<long long>(revocations), "-",
                rows.status().ToString().c_str());
  }
}

}  // namespace

int main() {
  std::printf("Section IV-F2: memory pools, spilling, reserved pool\n");
  std::printf("query: GROUP BY over 60k distinct keys on 1 worker\n\n");
  std::printf("%-28s %10s %12s %14s   %s\n", "configuration", "wall_ms",
              "revocations", "result_rows", "status");
  RunCase("ample memory (in-memory)", 256LL << 20, /*spill=*/false,
          /*reserved=*/false);
  RunCase("2MB pool + spill", 2LL << 20, /*spill=*/true, /*reserved=*/false);
  RunCase("2MB pool + reserved pool", 2LL << 20, /*spill=*/false,
          /*reserved=*/true);
  RunCase("2MB pool, no escape hatch", 2LL << 20, /*spill=*/false,
          /*reserved=*/false);
  std::printf(
      "\nexpected shape: in-memory fastest; spill completes with "
      "revocations > 0; reserved pool completes (single query promoted); "
      "no-escape-hatch is killed with RESOURCE_EXHAUSTED\n");
  return 0;
}
