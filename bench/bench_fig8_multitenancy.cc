// Figure 8 reproduction: "Cluster avg. CPU utilization and concurrency over
// a 4-hour period" — a multi-tenant trace: queries arrive in waves, and the
// MLFQ executor (§IV-F1) keeps worker CPU utilization high (~90% in the
// paper) while concurrency swings, prioritizing new inexpensive queries.
// Includes the MLFQ-vs-FIFO ablation: mean latency of cheap queries under
// heavy load.
//
//   ./build/bench/bench_fig8_multitenancy [trace_seconds]

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"

using namespace presto;         // NOLINT
using namespace presto::bench;  // NOLINT

namespace {

struct TraceResult {
  std::vector<double> cpu_pct;       // per tick
  std::vector<int> concurrency;     // per tick
  std::vector<double> cheap_ms;     // cheap-query latencies
  std::vector<double> expensive_ms; // expensive-query latencies
};

TraceResult RunTrace(bool use_mlfq, int trace_seconds) {
  EngineOptions options;
  options.cluster.num_workers = 4;
  options.cluster.executor.threads = 2;
  options.cluster.executor.use_mlfq = use_mlfq;
  options.cluster.max_concurrent_queries = 64;
  PrestoEngine engine(options);
  auto tpch = std::make_shared<TpchConnector>("tpch", 1.0);
  engine.catalog().Register(tpch);
  engine.catalog().SetDefault("tpch");

  std::atomic<bool> stop{false};
  std::atomic<int> running{0};
  std::mutex results_mu;
  TraceResult result;

  // Background expensive queries (the standing ETL-ish load).
  auto expensive_worker = [&](uint64_t seed) {
    Random rng(seed);
    while (!stop.load()) {
      Stopwatch watch;
      running.fetch_add(1);
      auto status = RunQuery(
          &engine,
          "SELECT orderkey, sum(quantity), avg(extendedprice) FROM "
          "lineitem GROUP BY orderkey");
      running.fetch_sub(1);
      if (status.ok()) {
        std::lock_guard<std::mutex> lock(results_mu);
        result.expensive_ms.push_back(
            static_cast<double>(watch.ElapsedMicros()) / 1000.0);
      }
    }
  };
  // Cheap interactive queries arriving in waves (Poisson-ish).
  auto cheap_worker = [&](uint64_t seed) {
    Random rng(seed);
    while (!stop.load()) {
      // Wave pattern: arrival rate oscillates.
      double mean_gap_ms = 30.0 + 120.0 * rng.NextDouble();
      std::this_thread::sleep_for(std::chrono::microseconds(
          static_cast<int64_t>(rng.NextExponential(mean_gap_ms * 1000))));
      if (stop.load()) break;
      Stopwatch watch;
      running.fetch_add(1);
      auto status = RunQuery(
          &engine,
          "SELECT orderpriority, count(*) FROM orders WHERE custkey = " +
              std::to_string(rng.NextUint64(1500)) +
              " GROUP BY orderpriority");
      running.fetch_sub(1);
      if (status.ok()) {
        std::lock_guard<std::mutex> lock(results_mu);
        result.cheap_ms.push_back(
            static_cast<double>(watch.ElapsedMicros()) / 1000.0);
      }
    }
  };

  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back(expensive_worker, 100 + i);
  }
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back(cheap_worker, 200 + i);
  }

  // Sample the cluster every 250 ms (the Fig. 8 time series).
  int64_t prev_busy = engine.cluster().total_busy_nanos();
  Stopwatch tick;
  int total_threads =
      options.cluster.num_workers * options.cluster.executor.threads;
  for (int t = 0; t < trace_seconds * 4; ++t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    int64_t busy = engine.cluster().total_busy_nanos();
    double window_ns = static_cast<double>(tick.ElapsedNanos());
    tick.Reset();
    double cpu = 100.0 * static_cast<double>(busy - prev_busy) /
                 (window_ns * total_threads);
    prev_busy = busy;
    std::lock_guard<std::mutex> lock(results_mu);
    result.cpu_pct.push_back(std::min(100.0, cpu));
    result.concurrency.push_back(running.load());
  }
  stop.store(true);
  for (auto& t : threads) t.join();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  int trace_seconds = argc > 1 ? std::atoi(argv[1]) : 12;

  std::printf("Figure 8: multi-tenant CPU utilization + concurrency trace\n");
  std::printf("(paper: 4-hour production trace; here %ds compressed)\n\n",
              trace_seconds);

  TraceResult mlfq = RunTrace(/*use_mlfq=*/true, trace_seconds);
  std::printf("%-6s %10s %12s\n", "tick", "cpu_pct", "concurrency");
  for (size_t t = 0; t < mlfq.cpu_pct.size(); ++t) {
    std::printf("%-6zu %10.1f %12d\n", t, mlfq.cpu_pct[t],
                mlfq.concurrency[t]);
  }
  double mean_cpu = 0;
  for (double c : mlfq.cpu_pct) mean_cpu += c;
  mean_cpu /= static_cast<double>(mlfq.cpu_pct.size());
  std::printf("\nmean worker CPU utilization: %.1f%% (paper: ~90%%)\n",
              mean_cpu);

  // MLFQ vs FIFO ablation (§IV-F1): cheap-query turnaround under load.
  // Full-length traces: short windows are dominated by scheduler noise.
  TraceResult fifo = RunTrace(/*use_mlfq=*/false, trace_seconds);
  TraceResult mlfq2 = RunTrace(/*use_mlfq=*/true, trace_seconds);
  std::printf("\nMLFQ ablation: cheap-query latency under expensive load\n");
  std::printf("%-8s %10s %10s %10s %8s\n", "policy", "p50_ms", "p90_ms",
              "p99_ms", "n");
  std::printf("%-8s %10.1f %10.1f %10.1f %8zu\n", "mlfq",
              Percentile(mlfq2.cheap_ms, 50), Percentile(mlfq2.cheap_ms, 90),
              Percentile(mlfq2.cheap_ms, 99), mlfq2.cheap_ms.size());
  std::printf("%-8s %10.1f %10.1f %10.1f %8zu\n", "fifo",
              Percentile(fifo.cheap_ms, 50), Percentile(fifo.cheap_ms, 90),
              Percentile(fifo.cheap_ms, 99), fifo.cheap_ms.size());
  std::printf(
      "\nexpected shape: CPU stays high while concurrency swings; MLFQ "
      "gives cheap queries lower tail latency than FIFO\n");
  return 0;
}
