// Observability-plane benchmark (ISSUE 10): what does watching the
// cluster cost?
//
//   1. Cross-process trace shipping: median latency of a multi-fragment
//      join over a 4-worker process cluster with span shipping on
//      (ClusterConfig::ship_worker_trace, the default) vs off. Shipped
//      spans ride status long-polls the coordinator already makes, so the
//      overhead should be noise.
//   2. Federated scrape: latency of GET /v1/cluster/metrics while the
//      coordinator scrapes all 4 live workers' /v1/metrics endpoints and
//      merges the expositions.
//
// Usage: bench_observability <path-to-presto_worker> [iterations]
// Emits BENCH_observability.json via BenchReport.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "exchange/http/http_io.h"
#include "worker/subprocess.h"

namespace presto::bench {
namespace {

constexpr double kScale = 0.05;
constexpr int kWorkers = 4;

const char* kJoinSql =
    "SELECT o.orderpriority, count(*), sum(l.extendedprice) "
    "FROM orders o JOIN lineitem l ON o.orderkey = l.orderkey "
    "GROUP BY o.orderpriority";

struct WorkerFleet {
  std::vector<std::unique_ptr<Subprocess>> workers;
  std::vector<RemoteWorkerAddress> addresses;
};

bool StartFleet(const std::string& worker_bin, WorkerFleet* fleet) {
  for (int i = 0; i < kWorkers; ++i) {
    auto worker = std::make_unique<Subprocess>();
    Status started = worker->Start(
        {worker_bin, "--worker_id=" + std::to_string(i), "--threads=2",
         "--tpch_scale=" + std::to_string(kScale),
         "--heartbeat_interval_micros=100000"});
    if (!started.ok()) {
      fprintf(stderr, "worker %d: %s\n", i, started.ToString().c_str());
      return false;
    }
    auto ready = worker->WaitForLine("READY", 20'000);
    if (!ready.ok()) {
      fprintf(stderr, "worker %d: %s\n", i, ready.status().ToString().c_str());
      return false;
    }
    RemoteWorkerAddress address;
    if (sscanf(ready->c_str(),
               "READY task_port=%d exchange_port=%d metrics_port=%d",
               &address.task_port, &address.exchange_port,
               &address.metrics_port) < 2) {
      fprintf(stderr, "worker %d: bad banner '%s'\n", i, ready->c_str());
      return false;
    }
    fleet->addresses.push_back(address);
    fleet->workers.push_back(std::move(worker));
  }
  return true;
}

std::unique_ptr<PrestoEngine> MakeProcessEngine(const WorkerFleet& fleet,
                                                bool ship_worker_trace) {
  EngineOptions options;
  options.cluster.mode = ClusterMode::kProcess;
  options.cluster.remote_workers = fleet.addresses;
  options.cluster.heartbeat_timeout_micros = 10'000'000;
  options.cluster.ship_worker_trace = ship_worker_trace;
  auto engine = std::make_unique<PrestoEngine>(std::move(options));
  engine->catalog().Register(std::make_shared<TpchConnector>("tpch", kScale));
  engine->catalog().SetDefault("tpch");
  return engine;
}

// Points every worker's heartbeat at the engine and waits until all beat.
bool ConnectHeartbeats(PrestoEngine* engine, WorkerFleet* fleet) {
  if (!engine->StartObservability().ok()) return false;
  for (auto& worker : fleet->workers) {
    (void)worker->WriteLine("coordinator_port=" +
                            std::to_string(engine->observability_port()));
  }
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    bool all = true;
    for (int w = 0; w < kWorkers; ++w) {
      all = all && engine->cluster().liveness().SeenHeartbeat(w);
    }
    if (all) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

// Median query latency (ms) over `iterations` runs after one warmup.
double MedianLatencyMs(PrestoEngine* engine, int iterations) {
  (void)RunQuery(engine, kJoinSql);
  std::vector<double> samples;
  for (int i = 0; i < iterations; ++i) {
    samples.push_back(static_cast<double>(TimeQuery(engine, kJoinSql)) / 1e3);
  }
  return Percentile(samples, 50);
}

// One timed GET of /v1/cluster/metrics; latency in ms, -1 on failure.
double TimedScrapeMs(int port, std::string* body) {
  auto start = std::chrono::steady_clock::now();
  auto conn = ConnectToLoopback(port, 5'000'000);
  if (!conn.ok()) return -1;
  HttpRequest request;
  request.method = "GET";
  request.path = "/v1/cluster/metrics";
  if (!(*conn)->WriteRequest(request).ok()) return -1;
  auto response = (*conn)->ReadResponse();
  if (!response.ok() || response->status != 200) return -1;
  *body = response->body;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now() - start)
                 .count()) /
         1e3;
}

int Run(const std::string& worker_bin, int iterations) {
  WorkerFleet fleet;
  if (!StartFleet(worker_bin, &fleet)) return 1;
  BenchReport report("observability");

  // Tracing off first so the traced engine (which the scrape section
  // reuses) is the one left standing.
  double untraced_ms = 0;
  {
    auto engine = MakeProcessEngine(fleet, /*ship_worker_trace=*/false);
    untraced_ms = MedianLatencyMs(engine.get(), iterations);
  }
  auto engine = MakeProcessEngine(fleet, /*ship_worker_trace=*/true);
  double traced_ms = MedianLatencyMs(engine.get(), iterations);
  double overhead_pct =
      untraced_ms > 0 ? (traced_ms - untraced_ms) / untraced_ms * 100 : 0;
  report.Add("trace_shipping_off", "median_latency", untraced_ms, "ms");
  report.Add("trace_shipping_on", "median_latency", traced_ms, "ms");
  report.Add("trace_shipping", "overhead", overhead_pct, "%");
  printf("join over %d workers: traced %.2fms vs untraced %.2fms "
         "(%+.1f%%)\n",
         kWorkers, traced_ms, untraced_ms, overhead_pct);

  // Federated scrape latency: every sample re-scrapes all live workers.
  if (!ConnectHeartbeats(engine.get(), &fleet)) {
    fprintf(stderr, "workers never heartbeated\n");
    return 1;
  }
  std::vector<double> scrape_ms;
  std::string body;
  for (int i = 0; i < iterations * 4; ++i) {
    double sample = TimedScrapeMs(engine->observability_port(), &body);
    if (sample < 0) {
      fprintf(stderr, "cluster metrics scrape failed\n");
      return 1;
    }
    scrape_ms.push_back(sample);
  }
  long long scraped = -1;
  const char* key = "\npresto_cluster_scraped_workers ";
  size_t pos = body.find(key);
  if (pos != std::string::npos) {
    scraped = atoll(body.c_str() + pos + strlen(key));
  }
  report.Add("cluster_metrics", "scrape_p50", Percentile(scrape_ms, 50),
             "ms");
  report.Add("cluster_metrics", "scrape_p95", Percentile(scrape_ms, 95),
             "ms");
  report.Add("cluster_metrics", "workers_scraped",
             static_cast<double>(scraped), "workers");
  printf("/v1/cluster/metrics over %lld workers: p50 %.2fms p95 %.2fms\n",
         scraped, Percentile(scrape_ms, 50), Percentile(scrape_ms, 95));

  std::string path = report.WriteJson();
  if (path.empty()) {
    fprintf(stderr, "failed to write report\n");
    return 1;
  }
  printf("wrote %s\n", path.c_str());
  return scraped == kWorkers ? 0 : 1;
}

}  // namespace
}  // namespace presto::bench

int main(int argc, char** argv) {
  if (argc < 2) {
    fprintf(stderr, "usage: %s <path-to-presto_worker> [iterations]\n",
            argv[0]);
    return 2;
  }
  int iterations = argc > 2 ? atoi(argv[2]) : 5;
  return presto::bench::Run(argv[1], iterations);
}
