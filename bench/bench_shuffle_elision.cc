// §IV-C3 ablation: shuffle minimization via plan properties. Compares
//   (a) a join + aggregation on raptor tables bucketed on the join key
//       (co-located join, aggregation shuffle elided), vs.
//   (b) the identical query on the same data without bucketing alignment
//       (both sides repartitioned, partial/final aggregation),
// counting remote exchanges in the plan and measuring wall time.
//
//   ./build/bench/bench_shuffle_elision [scale]

#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"

using namespace presto;         // NOLINT
using namespace presto::bench;  // NOLINT

namespace {

int CountOccurrences(const std::string& text, const std::string& needle) {
  int count = 0;
  for (size_t pos = 0; (pos = text.find(needle, pos)) != std::string::npos;
       pos += needle.size()) {
    ++count;
  }
  return count;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  EngineOptions options;
  options.cluster.num_workers = 4;
  options.cluster.executor.threads = 2;

  auto tpch = std::make_shared<TpchConnector>("tpch", scale);

  // Co-located: both tables bucketed on custkey.
  PrestoEngine colocated_engine(options);
  auto raptor = std::make_shared<RaptorConnector>("raptor");
  PRESTO_CHECK(LoadRaptorFromTpch(tpch.get(), raptor.get(),
                                  {"orders", "customer"}, "custkey", 8)
                   .ok());
  colocated_engine.catalog().Register(raptor);

  // Misaligned: same engine data but bucketed on unrelated keys.
  PrestoEngine shuffled_engine(options);
  auto raptor2 = std::make_shared<RaptorConnector>("raptor");
  PRESTO_CHECK(LoadRaptorFromTpch(tpch.get(), raptor2.get(), {"orders"},
                                  "orderkey", 8)
                   .ok());
  PRESTO_CHECK(LoadRaptorFromTpch(tpch.get(), raptor2.get(), {"customer"},
                                  "nationkey", 8)
                   .ok());
  shuffled_engine.catalog().Register(raptor2);

  const char* sql =
      "SELECT c.custkey, count(*), sum(o.totalprice) "
      "FROM raptor.orders o JOIN raptor.customer c "
      "ON o.custkey = c.custkey GROUP BY c.custkey";

  std::printf("Section IV-C3: shuffle elision via data layout properties\n");
  std::printf("query: join + aggregation on the join key\n\n");
  std::printf("%-22s %10s %12s %12s\n", "layout", "shuffles", "fragments",
              "wall_ms");
  std::vector<std::pair<PrestoEngine*, const char*>> configs = {
      {&colocated_engine, "bucketed-on-key"},
      {&shuffled_engine, "misaligned"}};
  for (auto& entry : configs) {
    auto plan = entry.first->Explain(sql);
    PRESTO_CHECK(plan.ok());
    int shuffles = CountOccurrences(*plan, "RemoteSource[");
    int fragments = CountOccurrences(*plan, "Fragment ");
    // Warm once, then time.
    TimeQuery(entry.first, sql);
    double ms = 0;
    const int kRuns = 3;
    for (int r = 0; r < kRuns; ++r) {
      ms += static_cast<double>(TimeQuery(entry.first, sql)) / 1000.0;
    }
    std::printf("%-22s %10d %12d %12.1f\n", entry.second, shuffles,
                fragments, ms / kRuns);
  }
  std::printf(
      "\nexpected shape: the bucketed layout plans ~1 shuffle (final "
      "gather only) vs 3+ for the misaligned layout, and runs faster\n");
  return 0;
}
