// §IV-C3 ablation: shuffle minimization via plan properties. Compares
//   (a) a join + aggregation on raptor tables bucketed on the join key
//       (co-located join, aggregation shuffle elided), vs.
//   (b) the identical query on the same data without bucketing alignment
//       (both sides repartitioned, partial/final aggregation),
// counting remote exchanges in the plan, measuring wall time, and reporting
// the serialized shuffle volume each layout actually put on the wire.
// Also measures the §V-E wire-format ablation directly: a dictionary-heavy
// page stream encoded with encoding preservation + LZ4 vs. flattened
// uncompressed. Results mirror to BENCH_shuffle.json.
//
//   ./build/bench/bench_shuffle_elision [scale]

#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "vector/encoded_block.h"
#include "vector/page_codec.h"

using namespace presto;         // NOLINT
using namespace presto::bench;  // NOLINT

namespace {

int CountOccurrences(const std::string& text, const std::string& needle) {
  int count = 0;
  for (size_t pos = 0; (pos = text.find(needle, pos)) != std::string::npos;
       pos += needle.size()) {
    ++count;
  }
  return count;
}

// Dictionary-heavy shuffle payload: 16 pages of 8192 rows, every page's two
// columns sharing one 16-entry dictionary of long strings (the ad-id /
// user-agent shape that motivates §V-E encoding preservation).
std::vector<Page> DictionaryHeavyPages() {
  std::vector<std::string> entries;
  for (int i = 0; i < 16; ++i) {
    entries.push_back("dictionary-entry-with-a-rather-long-payload-" +
                      std::to_string(i) + "-abcdefghijklmnopqrstuvwxyz");
  }
  BlockPtr dict = MakeVarcharBlock(entries);
  std::vector<Page> pages;
  for (int p = 0; p < 16; ++p) {
    std::vector<int32_t> idx1, idx2;
    for (int32_t r = 0; r < 8192; ++r) {
      idx1.push_back((r + p) % 16);
      idx2.push_back((r * 7 + p) % 16);
    }
    pages.emplace_back(std::vector<BlockPtr>{
        std::make_shared<DictionaryBlock>(dict, std::move(idx1)),
        std::make_shared<DictionaryBlock>(dict, std::move(idx2))});
  }
  return pages;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  BenchReport report("shuffle");
  EngineOptions options;
  options.cluster.num_workers = 4;
  options.cluster.executor.threads = 2;

  auto tpch = std::make_shared<TpchConnector>("tpch", scale);

  // Co-located: both tables bucketed on custkey.
  PrestoEngine colocated_engine(options);
  auto raptor = std::make_shared<RaptorConnector>("raptor");
  PRESTO_CHECK(LoadRaptorFromTpch(tpch.get(), raptor.get(),
                                  {"orders", "customer"}, "custkey", 8)
                   .ok());
  colocated_engine.catalog().Register(raptor);

  // Misaligned: same engine data but bucketed on unrelated keys.
  PrestoEngine shuffled_engine(options);
  auto raptor2 = std::make_shared<RaptorConnector>("raptor");
  PRESTO_CHECK(LoadRaptorFromTpch(tpch.get(), raptor2.get(), {"orders"},
                                  "orderkey", 8)
                   .ok());
  PRESTO_CHECK(LoadRaptorFromTpch(tpch.get(), raptor2.get(), {"customer"},
                                  "nationkey", 8)
                   .ok());
  shuffled_engine.catalog().Register(raptor2);

  const char* sql =
      "SELECT c.custkey, count(*), sum(o.totalprice) "
      "FROM raptor.orders o JOIN raptor.customer c "
      "ON o.custkey = c.custkey GROUP BY c.custkey";

  std::printf("Section IV-C3: shuffle elision via data layout properties\n");
  std::printf("query: join + aggregation on the join key\n\n");
  std::printf("%-22s %10s %12s %12s %14s %14s\n", "layout", "shuffles",
              "fragments", "wall_ms", "wire_bytes", "raw_bytes");
  std::vector<std::pair<PrestoEngine*, const char*>> configs = {
      {&colocated_engine, "bucketed-on-key"},
      {&shuffled_engine, "misaligned"}};
  for (auto& entry : configs) {
    auto plan = entry.first->Explain(sql);
    PRESTO_CHECK(plan.ok());
    int shuffles = CountOccurrences(*plan, "RemoteSource[");
    int fragments = CountOccurrences(*plan, "Fragment ");
    // Warm once, then time.
    TimeQuery(entry.first, sql);
    double ms = 0;
    const int kRuns = 3;
    for (int r = 0; r < kRuns; ++r) {
      ms += static_cast<double>(TimeQuery(entry.first, sql)) / 1000.0;
    }
    ms /= kRuns;
    ExchangeManager& exchange = entry.first->cluster().exchange();
    int64_t wire = exchange.serialized_wire_bytes();
    int64_t raw = exchange.serialized_raw_bytes();
    std::printf("%-22s %10d %12d %12.1f %14lld %14lld\n", entry.second,
                shuffles, fragments, ms, static_cast<long long>(wire),
                static_cast<long long>(raw));
    report.Add(entry.second, "shuffles", shuffles);
    report.Add(entry.second, "wall_ms", ms, "ms");
    report.Add(entry.second, "exchange_wire_bytes",
               static_cast<double>(wire), "bytes");
    report.Add(entry.second, "exchange_raw_bytes", static_cast<double>(raw),
               "bytes");
  }

  // Wire-format ablation on a dictionary-heavy stream.
  std::vector<Page> pages = DictionaryHeavyPages();
  PageCodec preserved(
      PageCodecOptions{PageCompression::kLz4, /*preserve_encodings=*/true,
                       /*checksum=*/true});
  PageCodec flattened(
      PageCodecOptions{PageCompression::kNone, /*preserve_encodings=*/false,
                       /*checksum=*/true});
  int64_t preserved_bytes = 0;
  int64_t flattened_bytes = 0;
  for (const Page& page : pages) {
    preserved_bytes += preserved.Encode(page).wire_bytes();
    flattened_bytes += flattened.Encode(page).wire_bytes();
  }
  double ratio = preserved_bytes > 0
                     ? static_cast<double>(flattened_bytes) /
                           static_cast<double>(preserved_bytes)
                     : 0.0;
  std::printf(
      "\ndictionary-heavy wire format (16 pages x 8192 rows, shared "
      "16-entry dictionary):\n");
  std::printf("  preserve+lz4:   %10lld bytes\n",
              static_cast<long long>(preserved_bytes));
  std::printf("  flatten+none:   %10lld bytes\n",
              static_cast<long long>(flattened_bytes));
  std::printf("  volume ratio:   %10.1fx smaller (expect >= 2x)\n", ratio);
  report.Add("dictionary-heavy", "codec_preserved_lz4_bytes",
             static_cast<double>(preserved_bytes), "bytes");
  report.Add("dictionary-heavy", "codec_flattened_none_bytes",
             static_cast<double>(flattened_bytes), "bytes");
  report.Add("dictionary-heavy", "codec_volume_ratio", ratio, "x");

  std::string json = report.WriteJson();
  std::printf(
      "\nexpected shape: the bucketed layout plans ~1 shuffle (final "
      "gather only) vs 3+ for the misaligned layout, runs faster, and "
      "ships fewer serialized bytes\n");
  if (!json.empty()) std::printf("report: %s\n", json.c_str());
  return 0;
}
