#ifndef PRESTOCPP_BENCH_BENCH_UTIL_H_
#define PRESTOCPP_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "connectors/hive/hive_connector.h"
#include "connectors/raptor/raptor_connector.h"
#include "connectors/shardedstore/sharded_store.h"
#include "connectors/tpch/tpch_connector.h"
#include "engine/engine.h"

namespace presto::bench {

/// Builds an engine with a tpch catalog at `scale`.
std::unique_ptr<PrestoEngine> MakeTpchEngine(double scale,
                                             EngineOptions options = {});

/// Copies tpch tables into a hive connector (remote-DFS warehouse).
Status LoadHiveFromTpch(TpchConnector* tpch, HiveConnector* hive,
                        const std::vector<std::string>& tables);

/// Copies tpch tables into raptor, bucketed on `bucket_column`.
Status LoadRaptorFromTpch(TpchConnector* tpch, RaptorConnector* raptor,
                          const std::vector<std::string>& tables,
                          const std::string& bucket_column, int buckets);

/// Loads the Developer/Advertiser analytics table into a sharded store:
/// app_events(app_id, day, metric, value) sharded+indexed on app_id.
Status LoadAppEvents(ShardedStoreConnector* store, int64_t rows,
                     int64_t num_apps);

/// Runs a query and returns wall microseconds (asserts success).
int64_t TimeQuery(PrestoEngine* engine, const std::string& sql);

/// Runs a query, discards results, returns status.
Status RunQuery(PrestoEngine* engine, const std::string& sql);

/// The 19 Fig. 6 workload queries (labels q09..q82 match the figure's
/// x-axis; shapes — scan-heavy aggregates, multi-joins, selective filters —
/// approximate the TPC-DS subset on our TPC-H-style schema). `catalog` is
/// prefixed to every table name.
struct LabeledQuery {
  std::string label;
  std::string sql;
};
std::vector<LabeledQuery> Fig6Queries(const std::string& catalog);

/// Percentile of a sorted vector (p in [0,100]).
double Percentile(std::vector<double> values, double p);

/// Collects measurements and mirrors them to `BENCH_<name>.json` in the
/// working directory, so benchmark runs are machine-readable (CI trend
/// tracking, plotting) as well as human-readable on stdout.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  /// Records one sample; `unit` is free-form ("ms", "rows", ...).
  void Add(const std::string& label, const std::string& metric, double value,
           const std::string& unit = "");

  /// Writes BENCH_<name>.json; returns the path ("" on I/O failure).
  std::string WriteJson() const;

 private:
  struct Sample {
    std::string label;
    std::string metric;
    std::string unit;
    double value;
  };

  std::string name_;
  std::vector<Sample> samples_;
};

}  // namespace presto::bench

#endif  // PRESTOCPP_BENCH_BENCH_UTIL_H_
