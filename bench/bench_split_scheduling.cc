// §IV-D3 ablation: lazy split enumeration. With a slow metastore ("it can
// take minutes for the Hive connector to enumerate partitions"), lazy
// batched enumeration lets a LIMIT query return long before enumeration
// completes; eager enumeration (one huge batch) pays the full cost up
// front. Also reports shortest-queue assignment balancing under skewed
// split costs.
//
//   ./build/bench/bench_split_scheduling

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stopwatch.h"

using namespace presto;         // NOLINT
using namespace presto::bench;  // NOLINT

namespace {

double TimeToFirstRow(PrestoEngine* engine, const std::string& sql) {
  Stopwatch watch;
  auto result = engine->Execute(sql);
  PRESTO_CHECK(result.ok());
  auto first = result->Next();
  PRESTO_CHECK(first.ok());
  double ms = static_cast<double>(watch.ElapsedMicros()) / 1000.0;
  result->Cancel();
  return ms;
}

}  // namespace

int main() {
  std::printf("Section IV-D3: lazy split enumeration + split assignment\n\n");

  // A hive table with many files and a slow per-batch enumeration.
  auto make_engine = [&](int batch_size) {
    EngineOptions options;
    options.cluster.num_workers = 4;
    options.cluster.executor.threads = 2;
    options.cluster.split_batch_size = batch_size;
    auto engine = std::make_unique<PrestoEngine>(options);
    auto tpch = std::make_shared<TpchConnector>("tpch", 1.0);
    HiveConfig config;
    config.file_rows = 500;  // many small files => many splits
    config.split_enumeration_delay_micros = 5000;  // slow "metastore", per file
    auto hive = std::make_shared<HiveConnector>("hive", config);
    PRESTO_CHECK(LoadHiveFromTpch(tpch.get(), hive.get(), {"orders"}).ok());
    engine->catalog().Register(hive);
    engine->catalog().SetDefault("hive");
    return engine;
  };

  std::printf("time-to-first-row of 'SELECT * FROM orders LIMIT 100' with a "
              "5ms-per-file metastore, 30 files:\n");
  std::printf("%-28s %14s\n", "enumeration", "first_row_ms");
  {
    auto lazy = make_engine(/*batch_size=*/2);
    std::printf("%-28s %14.1f\n", "lazy (batches of 2)",
                TimeToFirstRow(lazy.get(), "SELECT * FROM orders LIMIT 100"));
  }
  {
    auto eager = make_engine(/*batch_size=*/100000);
    std::printf("%-28s %14.1f\n", "eager (single batch)",
                TimeToFirstRow(eager.get(),
                               "SELECT * FROM orders LIMIT 100"));
  }

  // Shortest-queue balancing: a full aggregation over the same many-file
  // table; report per-scan splits processed spread via total wall time.
  {
    auto engine = make_engine(8);
    Stopwatch watch;
    auto rows = engine->ExecuteAndFetch(
        "SELECT orderpriority, count(*) FROM orders GROUP BY orderpriority");
    PRESTO_CHECK(rows.ok());
    std::printf("\nfull scan with shortest-queue split assignment: %.1f ms, "
                "%zu groups\n",
                static_cast<double>(watch.ElapsedMicros()) / 1000.0,
                rows->size());
  }
  std::printf(
      "\nexpected shape: lazy enumeration returns the first rows in a "
      "fraction of the eager configuration's time (the LIMIT is satisfied "
      "before enumeration finishes)\n");
  return 0;
}
