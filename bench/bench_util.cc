#include "bench/bench_util.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "connector/scan_util.h"
#include "vector/block_builder.h"

namespace presto::bench {

std::unique_ptr<PrestoEngine> MakeTpchEngine(double scale,
                                             EngineOptions options) {
  auto engine = std::make_unique<PrestoEngine>(options);
  auto tpch = std::make_shared<TpchConnector>("tpch", scale);
  engine->catalog().Register(tpch);
  engine->catalog().SetDefault("tpch");
  return engine;
}

Status LoadHiveFromTpch(TpchConnector* tpch, HiveConnector* hive,
                        const std::vector<std::string>& tables) {
  for (const auto& table : tables) {
    PRESTO_ASSIGN_OR_RETURN(auto pages, ReadAllPages(tpch, table));
    PRESTO_ASSIGN_OR_RETURN(TableHandlePtr handle,
                            tpch->metadata().GetTable(table));
    PRESTO_RETURN_IF_ERROR(hive->CreateTable(table, handle->schema()));
    PRESTO_RETURN_IF_ERROR(hive->LoadTable(table, pages));
  }
  return Status::OK();
}

Status LoadRaptorFromTpch(TpchConnector* tpch, RaptorConnector* raptor,
                          const std::vector<std::string>& tables,
                          const std::string& bucket_column, int buckets) {
  for (const auto& table : tables) {
    PRESTO_ASSIGN_OR_RETURN(auto pages, ReadAllPages(tpch, table));
    PRESTO_ASSIGN_OR_RETURN(TableHandlePtr handle,
                            tpch->metadata().GetTable(table));
    // Fall back to the first column when the bucket column is absent.
    std::string bucket = bucket_column;
    if (!handle->schema().IndexOf(bucket).has_value()) {
      bucket = handle->schema().at(0).name;
    }
    PRESTO_RETURN_IF_ERROR(
        raptor->CreateTable(table, handle->schema(), bucket, buckets));
    PRESTO_RETURN_IF_ERROR(raptor->LoadTable(table, pages));
  }
  return Status::OK();
}

Status LoadAppEvents(ShardedStoreConnector* store, int64_t rows,
                     int64_t num_apps) {
  RowSchema schema;
  schema.Add("app_id", TypeKind::kBigint);
  schema.Add("day", TypeKind::kBigint);
  schema.Add("metric", TypeKind::kVarchar);
  schema.Add("value", TypeKind::kDouble);
  PRESTO_RETURN_IF_ERROR(
      store->CreateTable("app_events", schema, "app_id", {"app_id", "day"}));
  Random rng(7);
  const char* metrics[] = {"impressions", "clicks", "spend"};
  std::vector<int64_t> app, day;
  std::vector<std::string> metric;
  std::vector<double> value;
  for (int64_t i = 0; i < rows; ++i) {
    app.push_back(static_cast<int64_t>(rng.NextSkewed(
        static_cast<uint64_t>(num_apps))));
    day.push_back(static_cast<int64_t>(rng.NextUint64(90)));
    metric.push_back(metrics[rng.NextUint64(3)]);
    value.push_back(rng.NextDouble() * 1000.0);
  }
  return store->LoadTable("app_events",
                          {Page({MakeBigintBlock(app), MakeBigintBlock(day),
                                 MakeVarcharBlock(metric),
                                 MakeDoubleBlock(value)})});
}

int64_t TimeQuery(PrestoEngine* engine, const std::string& sql) {
  Stopwatch watch;
  auto rows = engine->ExecuteAndFetch(sql);
  PRESTO_CHECK(rows.ok());
  return watch.ElapsedMicros();
}

Status RunQuery(PrestoEngine* engine, const std::string& sql) {
  PRESTO_ASSIGN_OR_RETURN(QueryResult result, engine->Execute(sql));
  PRESTO_ASSIGN_OR_RETURN(auto rows, result.FetchAllRows());
  (void)rows;
  return Status::OK();
}

std::vector<LabeledQuery> Fig6Queries(const std::string& catalog) {
  auto t = [&](const std::string& name) { return catalog + "." + name; };
  std::vector<LabeledQuery> out;
  // Scan-heavy aggregations.
  out.push_back({"q09",
                 "SELECT returnflag, linestatus, sum(quantity), "
                 "sum(extendedprice), avg(discount), count(*) FROM " +
                     t("lineitem") +
                     " WHERE shipdate <= DATE '1998-09-02' "
                     "GROUP BY returnflag, linestatus"});
  out.push_back({"q18",
                 "SELECT orderpriority, count(*) FROM " + t("orders") +
                     " WHERE orderdate >= DATE '1993-07-01' AND orderdate < "
                     "DATE '1994-10-01' GROUP BY orderpriority"});
  out.push_back({"q20",
                 "SELECT shipmode, sum(CASE WHEN orderpriority = '1-URGENT' "
                 "THEN 1 ELSE 0 END) FROM " +
                     t("lineitem") + " l JOIN " + t("orders") +
                     " o ON l.orderkey = o.orderkey GROUP BY shipmode"});
  out.push_back({"q26",
                 "SELECT avg(quantity), avg(extendedprice) FROM " +
                     t("lineitem") + " WHERE shipinstruct = 'DELIVER IN "
                                     "PERSON' AND quantity < 10"});
  out.push_back({"q28",
                 "SELECT count(DISTINCT suppkey) FROM " + t("lineitem") +
                     " WHERE discount > 0.05"});
  // Multi-join queries (the CBO payoff: small dimensions last in syntax).
  out.push_back({"q35",
                 "SELECT n.name, count(*) FROM " + t("lineitem") + " l JOIN " +
                     t("orders") + " o ON l.orderkey = o.orderkey JOIN " +
                     t("customer") + " c ON o.custkey = c.custkey JOIN " +
                     t("nation") +
                     " n ON c.nationkey = n.nationkey GROUP BY n.name"});
  out.push_back({"q37",
                 "SELECT c.mktsegment, sum(o.totalprice) FROM " + t("orders") +
                     " o JOIN " + t("customer") +
                     " c ON o.custkey = c.custkey GROUP BY c.mktsegment"});
  out.push_back({"q44",
                 "SELECT s.name, count(*) FROM " + t("lineitem") + " l JOIN " +
                     t("supplier") +
                     " s ON l.suppkey = s.suppkey GROUP BY s.name "
                     "ORDER BY 2 DESC LIMIT 10"});
  out.push_back({"q50",
                 "SELECT n.name, avg(c.acctbal) FROM " + t("customer") +
                     " c JOIN " + t("nation") +
                     " n ON c.nationkey = n.nationkey GROUP BY n.name"});
  out.push_back({"q54",
                 "SELECT count(*) FROM " + t("lineitem") + " l JOIN " +
                     t("part") + " p ON l.partkey = p.partkey WHERE p.brand "
                                 "= 'Brand#23'"});
  // Selective filters (stripe pruning / index-friendly).
  out.push_back({"q60",
                 "SELECT * FROM " + t("orders") +
                     " WHERE orderkey = 1042 ORDER BY orderkey LIMIT 5"});
  out.push_back({"q64",
                 "SELECT count(*), sum(extendedprice) FROM " + t("lineitem") +
                     " WHERE orderkey BETWEEN 100 AND 200"});
  out.push_back({"q69",
                 "SELECT orderstatus, count(*) FROM " + t("orders") +
                     " WHERE totalprice > 250000 GROUP BY orderstatus"});
  // Windowed / ordered analytics.
  out.push_back({"q71",
                 "SELECT custkey, totalprice, row_number() OVER (PARTITION "
                 "BY custkey ORDER BY totalprice DESC) AS rn FROM " +
                     t("orders") + " WHERE custkey < 50"});
  out.push_back({"q73",
                 "SELECT orderdate, sum(totalprice) FROM " + t("orders") +
                     " GROUP BY orderdate ORDER BY 2 DESC LIMIT 20"});
  // Wide aggregations.
  out.push_back({"q76",
                 "SELECT orderkey, sum(quantity) FROM " + t("lineitem") +
                     " GROUP BY orderkey HAVING sum(quantity) > 150"});
  out.push_back({"q78",
                 "SELECT partkey, count(*), avg(extendedprice) FROM " +
                     t("lineitem") + " GROUP BY partkey ORDER BY 2 DESC "
                                     "LIMIT 25"});
  out.push_back({"q80",
                 "SELECT c.mktsegment, n.name, count(*) FROM " + t("orders") +
                     " o JOIN " + t("customer") +
                     " c ON o.custkey = c.custkey JOIN " + t("nation") +
                     " n ON c.nationkey = n.nationkey WHERE o.totalprice > "
                     "100000 GROUP BY c.mktsegment, n.name"});
  out.push_back({"q82",
                 "SELECT count(DISTINCT custkey) FROM " + t("orders") +
                     " WHERE orderdate >= DATE '1995-01-01'"});
  return out;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

void BenchReport::Add(const std::string& label, const std::string& metric,
                      double value, const std::string& unit) {
  samples_.push_back({label, metric, unit, value});
}

std::string BenchReport::WriteJson() const {
  std::string path = "BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return "";
  std::fprintf(f, "{\n  \"benchmark\": \"%s\",\n  \"samples\": [",
               JsonEscape(name_).c_str());
  for (size_t i = 0; i < samples_.size(); ++i) {
    const Sample& s = samples_[i];
    std::fprintf(f,
                 "%s\n    {\"label\": \"%s\", \"metric\": \"%s\", "
                 "\"value\": %.6g, \"unit\": \"%s\"}",
                 i == 0 ? "" : ",", JsonEscape(s.label).c_str(),
                 JsonEscape(s.metric).c_str(), s.value,
                 JsonEscape(s.unit).c_str());
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  return path;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  auto lo = static_cast<size_t>(std::floor(rank));
  auto hi = static_cast<size_t>(std::ceil(rank));
  double frac = rank - std::floor(rank);
  return values[lo] * (1 - frac) + values[hi] * frac;
}

}  // namespace presto::bench
