// Out-of-process cluster demo (§III, §IV-B): a coordinator driving two
// `presto_worker` daemons over the /v1/task HTTP protocol, with
// heartbeat-driven failure detection AND task-level retry (ISSUE 7) of a
// kill -9'd worker.
//
// Usage: process_cluster <path-to-presto_worker>
//
// Emits KEY=VALUE lines that scripts/check_cluster.py validates in CI:
//   WORKERS_ALIVE=<n>             heartbeats seen from every worker
//   JOIN_ROWS=<n>                 distributed join result size
//   JOIN_MATCHES_LOCAL=<0|1>      distributed result equals in-process result
//   SPECULATIONS=<n>              speculative replicas launched against the
//                                 deterministically stalled worker (ISSUE 9)
//   SPECULATION_WINS=<n>          replicas that beat their original
//   SPECULATION_MATCHES_LOCAL=<0|1> speculated result equals in-process
//   SPECULATION_BUFFERS_LEAKED=<n>  exchange bytes left after the race
//   SPECULATION_RETAINED_LEAKED=<n> replay-retention bytes left after it
//   KILL_RECOVERED=<0|1>          query SUCCEEDED despite kill -9 mid-query
//   RECOVERED_MATCHES_LOCAL=<0|1> recovered result equals in-process result
//   TASK_RETRIES=<n>              presto_task_retries_total after recovery
//   RECOVERY_MICROS=<n>           fetch latency of the disturbed query
//   ALIVE_AFTER_KILL=<n>          liveness gauge after the kill
//   BUFFERS_LEAKED=<n>            coordinator exchange bytes left behind
//   RETAINED_LEAKED=<n>           replay-retention bytes left behind
//   NO_RETRY_FAILED=<0|1>         with max_task_retries=0 the dead worker
//                                 fails the query cleanly (the pre-recovery
//                                 contract still holds)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "connectors/tpch/tpch_connector.h"
#include "engine/engine.h"
#include "worker/subprocess.h"

using namespace presto;

namespace {

constexpr double kScale = 0.05;

std::vector<std::string> SortedRows(
    const std::vector<std::vector<Value>>& rows) {
  std::vector<std::string> out;
  for (const auto& row : rows) {
    std::string line;
    for (const auto& value : row) line += value.ToString() + "|";
    out.push_back(std::move(line));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::unique_ptr<PrestoEngine> MakeEngine(
    const std::vector<RemoteWorkerAddress>& addresses, int max_task_retries) {
  EngineOptions options;
  options.cluster.mode = ClusterMode::kProcess;
  options.cluster.remote_workers = addresses;
  options.cluster.heartbeat_timeout_micros = 1'000'000;
  options.cluster.max_task_retries = max_task_retries;
  auto engine = std::make_unique<PrestoEngine>(std::move(options));
  engine->catalog().Register(std::make_shared<TpchConnector>("tpch", kScale));
  engine->catalog().SetDefault("tpch");
  return engine;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    fprintf(stderr, "usage: %s <path-to-presto_worker>\n", argv[0]);
    return 2;
  }
  const std::string worker_bin = argv[1];

  // Launch two worker daemons; each prints READY with its ports.
  std::vector<std::unique_ptr<Subprocess>> workers;
  std::vector<RemoteWorkerAddress> addresses;
  for (int i = 0; i < 2; ++i) {
    auto worker = std::make_unique<Subprocess>();
    Status started = worker->Start(
        {worker_bin, "--worker_id=" + std::to_string(i), "--threads=2",
         "--tpch_scale=" + std::to_string(kScale),
         "--heartbeat_interval_micros=100000"});
    if (!started.ok()) {
      fprintf(stderr, "worker %d: %s\n", i, started.ToString().c_str());
      return 1;
    }
    auto ready = worker->WaitForLine("READY", 20'000);
    if (!ready.ok()) {
      fprintf(stderr, "worker %d: %s\n", i, ready.status().ToString().c_str());
      return 1;
    }
    RemoteWorkerAddress address;
    if (sscanf(ready->c_str(), "READY task_port=%d exchange_port=%d",
               &address.task_port, &address.exchange_port) != 2) {
      fprintf(stderr, "worker %d: bad banner '%s'\n", i, ready->c_str());
      return 1;
    }
    addresses.push_back(address);
    workers.push_back(std::move(worker));
  }

  // Coordinator in kProcess mode with task retry on (the ClusterConfig
  // default): same scheduling logic as in-process, but tasks travel as
  // JSON over /v1/task and results come back through the workers'
  // exchange endpoints.
  auto engine = MakeEngine(addresses, /*max_task_retries=*/1);

  // Heartbeats flow worker -> coordinator observability port, which only
  // exists now; deliver it over each worker's stdin.
  Status obs = engine->StartObservability();
  if (!obs.ok()) {
    fprintf(stderr, "observability: %s\n", obs.ToString().c_str());
    return 1;
  }
  for (auto& worker : workers) {
    (void)worker->WriteLine("coordinator_port=" +
                            std::to_string(engine->observability_port()));
  }
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline &&
         !(engine->cluster().liveness().SeenHeartbeat(0) &&
           engine->cluster().liveness().SeenHeartbeat(1))) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  bool beat = engine->cluster().liveness().SeenHeartbeat(0) &&
              engine->cluster().liveness().SeenHeartbeat(1);
  int alive = static_cast<int>(engine->cluster().liveness().AliveCount(2));
  printf("WORKERS_ALIVE=%d\n", beat ? alive : 0);

  // A multi-fragment join, checked against the in-process engine.
  const char* join_sql =
      "SELECT o.orderpriority, count(*), sum(l.extendedprice) "
      "FROM orders o JOIN lineitem l ON o.orderkey = l.orderkey "
      "GROUP BY o.orderpriority";
  const char* kill_sql =
      "SELECT count(*) FROM orders o JOIN lineitem l "
      "ON o.orderkey = l.orderkey";
  auto remote = engine->ExecuteAndFetch(join_sql);
  if (!remote.ok()) {
    fprintf(stderr, "join: %s\n", remote.status().ToString().c_str());
    return 1;
  }
  printf("JOIN_ROWS=%zu\n", remote->size());
  const char* spec_sql = "SELECT count(*) FROM lineitem";
  std::vector<std::vector<Value>> kill_reference;
  std::vector<std::vector<Value>> spec_reference;
  {
    EngineOptions local_options;
    local_options.cluster.num_workers = 2;
    PrestoEngine local(std::move(local_options));
    local.catalog().Register(std::make_shared<TpchConnector>("tpch", kScale));
    local.catalog().SetDefault("tpch");
    auto reference = local.ExecuteAndFetch(join_sql);
    bool matches = reference.ok() &&
                   SortedRows(*remote) == SortedRows(*reference);
    printf("JOIN_MATCHES_LOCAL=%d\n", matches ? 1 : 0);
    auto kill_ref = local.ExecuteAndFetch(kill_sql);
    if (!kill_ref.ok()) {
      fprintf(stderr, "local ref: %s\n",
              kill_ref.status().ToString().c_str());
      return 1;
    }
    kill_reference = std::move(*kill_ref);
    auto spec_ref = local.ExecuteAndFetch(spec_sql);
    if (!spec_ref.ok()) {
      fprintf(stderr, "local spec ref: %s\n",
              spec_ref.status().ToString().c_str());
      return 1;
    }
    spec_reference = std::move(*spec_ref);
  }

  // Speculative execution (ISSUE 9), while BOTH workers are still alive:
  // worker 1 is deterministically stalled (every driver quantum pays one
  // second), so it never dies — recovery can't help. The speculative
  // engine's coordinator notices the straggling task via the progress
  // counters in the status poll, races a replica on worker 0, and the
  // replica wins. Its liveness tracker never sees heartbeats (passive),
  // so the stalled worker stays "alive" throughout — exactly the
  // straggler-not-failure regime speculation exists for.
  bool spec_ok = false;
  {
    EngineOptions spec_options;
    spec_options.cluster.mode = ClusterMode::kProcess;
    spec_options.cluster.remote_workers = addresses;
    spec_options.cluster.heartbeat_timeout_micros = 60'000'000;
    spec_options.cluster.max_speculative_tasks = 4;
    spec_options.cluster.speculation_min_stall_micros = 250'000;
    spec_options.cluster.speculation_interval_micros = 25'000;
    auto speculative = std::make_unique<PrestoEngine>(std::move(spec_options));
    speculative->catalog().Register(
        std::make_shared<TpchConnector>("tpch", kScale));
    speculative->catalog().SetDefault("tpch");

    (void)workers[1]->WriteLine("arm_stall_micros=1000000");
    auto raced = speculative->ExecuteAndFetch(spec_sql);
    (void)workers[1]->WriteLine("arm_stall_micros=0");
    long long speculations =
        speculative->metrics()
            .RegisterCounter("presto_task_speculations_total", "")
            ->value();
    long long wins = speculative->metrics()
                         .RegisterCounter("presto_speculation_wins_total", "")
                         ->value();
    printf("SPECULATIONS=%lld\n", speculations);
    printf("SPECULATION_WINS=%lld\n", wins);
    bool matches = raced.ok() &&
                   SortedRows(*raced) == SortedRows(spec_reference);
    if (!raced.ok()) {
      fprintf(stderr, "speculated query: %s\n",
              raced.status().ToString().c_str());
    }
    printf("SPECULATION_MATCHES_LOCAL=%d\n", matches ? 1 : 0);

    // The aborted original drains once its in-flight stalled quantum
    // finishes; insist every byte is gone before moving on.
    auto drain_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(15);
    long long leaked_buffers = -1;
    long long leaked_retained = -1;
    while (std::chrono::steady_clock::now() < drain_deadline) {
      leaked_buffers = speculative->cluster().exchange().TotalBufferedBytes() +
                       speculative->cluster().exchange().TotalInflightBytes();
      leaked_retained = speculative->cluster().exchange().TotalRetainedBytes();
      if (leaked_buffers == 0 && leaked_retained == 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    printf("SPECULATION_BUFFERS_LEAKED=%lld\n", leaked_buffers);
    printf("SPECULATION_RETAINED_LEAKED=%lld\n", leaked_retained);
    spec_ok = matches && speculations >= 1 && wins >= 1 &&
              leaked_buffers == 0 && leaked_retained == 0;
  }

  // Task retry (ISSUE 7): kill -9 a worker mid-query. The coordinator's
  // recovery manager re-creates its tasks on the survivor, replays their
  // split journal, re-points the exchange consumers, and the query
  // SUCCEEDS — a dead worker costs latency, not the query.
  auto disturbed = engine->Execute(kill_sql);
  if (!disturbed.ok()) {
    fprintf(stderr, "kill query: %s\n",
            disturbed.status().ToString().c_str());
    return 1;
  }
  workers[1]->Kill();
  workers[1]->Wait();
  auto start = std::chrono::steady_clock::now();
  auto recovered = disturbed->FetchAllRows();
  auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  printf("KILL_RECOVERED=%d\n", recovered.ok() ? 1 : 0);
  if (!recovered.ok()) {
    fprintf(stderr, "recovery: %s\n", recovered.status().ToString().c_str());
  }
  printf("RECOVERED_MATCHES_LOCAL=%d\n",
         recovered.ok() && SortedRows(*recovered) == SortedRows(kill_reference)
             ? 1
             : 0);
  printf("TASK_RETRIES=%lld\n",
         static_cast<long long>(
             engine->metrics()
                 .RegisterCounter("presto_task_retries_total", "")
                 ->value()));
  printf("RECOVERY_MICROS=%lld\n", static_cast<long long>(micros));

  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline &&
         engine->cluster().liveness().IsAlive(1)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  printf("ALIVE_AFTER_KILL=%d\n",
         static_cast<int>(engine->cluster().liveness().AliveCount(2)));
  printf("BUFFERS_LEAKED=%lld\n",
         static_cast<long long>(
             engine->cluster().exchange().TotalBufferedBytes() +
             engine->cluster().exchange().TotalInflightBytes()));
  printf("RETAINED_LEAKED=%lld\n",
         static_cast<long long>(
             engine->cluster().exchange().TotalRetainedBytes()));

  // The fault-tolerance envelope is opt-out: with max_task_retries=0 the
  // same dead worker fails the query cleanly (the PR-6 detection
  // contract), instead of hanging or silently shrinking the result.
  bool no_retry_failed = false;
  {
    auto strict = MakeEngine(addresses, /*max_task_retries=*/0);
    Status status = strict->ExecuteAndFetch(kill_sql).status();
    no_retry_failed = !status.ok();
    if (status.ok()) {
      fprintf(stderr, "no-retry engine unexpectedly succeeded\n");
    }
  }
  printf("NO_RETRY_FAILED=%d\n", no_retry_failed ? 1 : 0);

  return recovered.ok() && no_retry_failed && spec_ok ? 0 : 1;
}
