// Out-of-process cluster demo (§III, §IV-B): a coordinator driving two
// `presto_worker` daemons over the /v1/task HTTP protocol, with
// heartbeat-driven failure detection AND task-level retry (ISSUE 7) of a
// kill -9'd worker.
//
// Usage: process_cluster <path-to-presto_worker>
//
// Emits KEY=VALUE lines that scripts/check_cluster.py validates in CI:
//   WORKERS_ALIVE=<n>             heartbeats seen from every worker
//   JOIN_ROWS=<n>                 distributed join result size
//   JOIN_MATCHES_LOCAL=<0|1>      distributed result equals in-process result
//   WORKER_METRICS_OK=<0|1>       a worker's own /v1/metrics exposition
//                                 serves the expected gauge families
//   CLUSTER_METRICS_WORKERS=<n>   workers scraped into the coordinator's
//                                 federated /v1/cluster/metrics exposition
//   CLUSTER_METRICS_RELABELED=<0|1> scraped samples carry worker="w<i>"
//   TRACE_WORKER_PIDS=<n>         distinct worker pids with shipped spans
//                                 in the join query's merged Chrome trace
//   TRACE_DROPPED=<n>             worker spans dropped before shipping
//   SPECULATIONS=<n>              speculative replicas launched against the
//                                 deterministically stalled worker (ISSUE 9)
//   SPECULATION_WINS=<n>          replicas that beat their original
//   SPECULATION_MATCHES_LOCAL=<0|1> speculated result equals in-process
//   SPECULATION_BUFFERS_LEAKED=<n>  exchange bytes left after the race
//   SPECULATION_RETAINED_LEAKED=<n> replay-retention bytes left after it
//   KILL_RECOVERED=<0|1>          query SUCCEEDED despite kill -9 mid-query
//   RECOVERED_MATCHES_LOCAL=<0|1> recovered result equals in-process result
//   TASK_RETRIES=<n>              presto_task_retries_total after recovery
//   RECOVERY_MICROS=<n>           fetch latency of the disturbed query
//   ALIVE_AFTER_KILL=<n>          liveness gauge after the kill
//   BUFFERS_LEAKED=<n>            coordinator exchange bytes left behind
//   RETAINED_LEAKED=<n>           replay-retention bytes left behind
//   NO_RETRY_FAILED=<0|1>         with max_task_retries=0 the dead worker
//                                 fails the query cleanly (the pre-recovery
//                                 contract still holds)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "connectors/tpch/tpch_connector.h"
#include "engine/engine.h"
#include "exchange/http/http_io.h"
#include "worker/subprocess.h"

using namespace presto;

namespace {

constexpr double kScale = 0.05;

std::vector<std::string> SortedRows(
    const std::vector<std::vector<Value>>& rows) {
  std::vector<std::string> out;
  for (const auto& row : rows) {
    std::string line;
    for (const auto& value : row) line += value.ToString() + "|";
    out.push_back(std::move(line));
  }
  std::sort(out.begin(), out.end());
  return out;
}

// GET `path` from 127.0.0.1:`port`; empty string on any failure.
std::string HttpGetBody(int port, const std::string& path) {
  auto conn = ConnectToLoopback(port, 2'000'000);
  if (!conn.ok()) return "";
  HttpRequest request;
  request.method = "GET";
  request.path = path;
  if (!(*conn)->WriteRequest(request).ok()) return "";
  auto response = (*conn)->ReadResponse();
  if (!response.ok() || response->status != 200) return "";
  return response->body;
}

// Distinct worker pids (pid >= 1) among the real — non-metadata — events of
// a Chrome trace JSON document.
int CountWorkerPids(const Result<std::string>& trace_json) {
  if (!trace_json.ok()) return 0;
  auto doc = Json::Parse(*trace_json);
  if (!doc.ok()) return 0;
  auto events = doc->GetArray("traceEvents");
  if (!events.ok()) return 0;
  std::set<int64_t> pids;
  for (const Json& event : (*events)->items()) {
    auto phase = event.GetString("ph");
    if (!phase.ok() || *phase == "M") continue;
    auto pid = event.GetInt("pid");
    if (pid.ok() && *pid >= 1) pids.insert(*pid);
  }
  return static_cast<int>(pids.size());
}

std::unique_ptr<PrestoEngine> MakeEngine(
    const std::vector<RemoteWorkerAddress>& addresses, int max_task_retries) {
  EngineOptions options;
  options.cluster.mode = ClusterMode::kProcess;
  options.cluster.remote_workers = addresses;
  options.cluster.heartbeat_timeout_micros = 1'000'000;
  options.cluster.max_task_retries = max_task_retries;
  auto engine = std::make_unique<PrestoEngine>(std::move(options));
  engine->catalog().Register(std::make_shared<TpchConnector>("tpch", kScale));
  engine->catalog().SetDefault("tpch");
  return engine;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    fprintf(stderr, "usage: %s <path-to-presto_worker>\n", argv[0]);
    return 2;
  }
  const std::string worker_bin = argv[1];

  // Launch two worker daemons; each prints READY with its ports.
  std::vector<std::unique_ptr<Subprocess>> workers;
  std::vector<RemoteWorkerAddress> addresses;
  for (int i = 0; i < 2; ++i) {
    auto worker = std::make_unique<Subprocess>();
    Status started = worker->Start(
        {worker_bin, "--worker_id=" + std::to_string(i), "--threads=2",
         "--tpch_scale=" + std::to_string(kScale),
         "--heartbeat_interval_micros=100000"});
    if (!started.ok()) {
      fprintf(stderr, "worker %d: %s\n", i, started.ToString().c_str());
      return 1;
    }
    auto ready = worker->WaitForLine("READY", 20'000);
    if (!ready.ok()) {
      fprintf(stderr, "worker %d: %s\n", i, ready.status().ToString().c_str());
      return 1;
    }
    RemoteWorkerAddress address;
    if (sscanf(ready->c_str(),
               "READY task_port=%d exchange_port=%d metrics_port=%d",
               &address.task_port, &address.exchange_port,
               &address.metrics_port) < 2) {
      fprintf(stderr, "worker %d: bad banner '%s'\n", i, ready->c_str());
      return 1;
    }
    addresses.push_back(address);
    workers.push_back(std::move(worker));
  }

  // Coordinator in kProcess mode with task retry on (the ClusterConfig
  // default): same scheduling logic as in-process, but tasks travel as
  // JSON over /v1/task and results come back through the workers'
  // exchange endpoints.
  auto engine = MakeEngine(addresses, /*max_task_retries=*/1);

  // Heartbeats flow worker -> coordinator observability port, which only
  // exists now; deliver it over each worker's stdin.
  Status obs = engine->StartObservability();
  if (!obs.ok()) {
    fprintf(stderr, "observability: %s\n", obs.ToString().c_str());
    return 1;
  }
  for (auto& worker : workers) {
    (void)worker->WriteLine("coordinator_port=" +
                            std::to_string(engine->observability_port()));
  }
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline &&
         !(engine->cluster().liveness().SeenHeartbeat(0) &&
           engine->cluster().liveness().SeenHeartbeat(1))) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  bool beat = engine->cluster().liveness().SeenHeartbeat(0) &&
              engine->cluster().liveness().SeenHeartbeat(1);
  int alive = static_cast<int>(engine->cluster().liveness().AliveCount(2));
  printf("WORKERS_ALIVE=%d\n", beat ? alive : 0);

  // A multi-fragment join, checked against the in-process engine.
  const char* join_sql =
      "SELECT o.orderpriority, count(*), sum(l.extendedprice) "
      "FROM orders o JOIN lineitem l ON o.orderkey = l.orderkey "
      "GROUP BY o.orderpriority";
  const char* kill_sql =
      "SELECT count(*) FROM orders o JOIN lineitem l "
      "ON o.orderkey = l.orderkey";
  auto join_handle = engine->Execute(join_sql);
  if (!join_handle.ok()) {
    fprintf(stderr, "join: %s\n", join_handle.status().ToString().c_str());
    return 1;
  }
  const std::string join_query_id = join_handle->query_id();
  auto remote = join_handle->FetchAllRows();
  if (!remote.ok()) {
    fprintf(stderr, "join: %s\n", remote.status().ToString().c_str());
    return 1;
  }
  printf("JOIN_ROWS=%zu\n", remote->size());
  const char* spec_sql = "SELECT count(*) FROM lineitem";
  std::vector<std::vector<Value>> kill_reference;
  std::vector<std::vector<Value>> spec_reference;
  {
    EngineOptions local_options;
    local_options.cluster.num_workers = 2;
    PrestoEngine local(std::move(local_options));
    local.catalog().Register(std::make_shared<TpchConnector>("tpch", kScale));
    local.catalog().SetDefault("tpch");
    auto reference = local.ExecuteAndFetch(join_sql);
    bool matches = reference.ok() &&
                   SortedRows(*remote) == SortedRows(*reference);
    printf("JOIN_MATCHES_LOCAL=%d\n", matches ? 1 : 0);
    auto kill_ref = local.ExecuteAndFetch(kill_sql);
    if (!kill_ref.ok()) {
      fprintf(stderr, "local ref: %s\n",
              kill_ref.status().ToString().c_str());
      return 1;
    }
    kill_reference = std::move(*kill_ref);
    auto spec_ref = local.ExecuteAndFetch(spec_sql);
    if (!spec_ref.ok()) {
      fprintf(stderr, "local spec ref: %s\n",
              spec_ref.status().ToString().c_str());
      return 1;
    }
    spec_reference = std::move(*spec_ref);
  }

  // Observability plane (ISSUE 10), while BOTH workers are still alive.
  // A worker daemon serves its own Prometheus exposition on the metrics
  // port it advertised in the READY banner.
  {
    std::string body =
        HttpGetBody(addresses[0].metrics_port, "/v1/metrics");
    bool ok = body.find("presto_worker_active_tasks") != std::string::npos &&
              body.find("presto_worker_memory_general_used_bytes") !=
                  std::string::npos;
    printf("WORKER_METRICS_OK=%d\n", ok ? 1 : 0);
  }

  // The coordinator's /v1/cluster/metrics federates: it scrapes every live
  // worker's /v1/metrics, relabels each sample with worker="w<i>", and
  // merges them with its own registry into one exposition.
  {
    std::string body =
        HttpGetBody(engine->observability_port(), "/v1/cluster/metrics");
    long long scraped = -1;
    // Match the sample line, not the "# HELP presto_cluster_..." header.
    const char* key = "\npresto_cluster_scraped_workers ";
    size_t pos = body.find(key);
    if (pos != std::string::npos) {
      scraped = atoll(body.c_str() + pos + strlen(key));
    }
    // A scraped-and-relabeled sample: this family only exists in worker
    // registries, so the worker label can only come from federation.
    bool relabeled =
        body.find("presto_worker_active_tasks{worker=\"w1\"") !=
        std::string::npos;
    printf("CLUSTER_METRICS_WORKERS=%lld\n", scraped);
    printf("CLUSTER_METRICS_RELABELED=%d\n", relabeled ? 1 : 0);
  }

  // Cross-process trace shipping: the join's merged Chrome trace must hold
  // spans from both worker processes (pid = worker_id + 1) alongside the
  // coordinator's pid-0 planning spans. The final flush rides the task
  // DELETE round-trip, so allow a short settle window.
  {
    int worker_pids = 0;
    auto trace_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < trace_deadline) {
      worker_pids = CountWorkerPids(engine->QueryTraceJson(join_query_id));
      if (worker_pids >= 2) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    printf("TRACE_WORKER_PIDS=%d\n", worker_pids);
    long long dropped = 0;
    for (int w = 0; w < 2; ++w) {
      dropped += engine->metrics()
                     .RegisterCounter(
                         "presto_trace_dropped_spans_total", "",
                         {{"worker", "w" + std::to_string(w)}})
                     ->value();
    }
    printf("TRACE_DROPPED=%lld\n", dropped);
  }

  // Speculative execution (ISSUE 9), while BOTH workers are still alive:
  // worker 1 is deterministically stalled (every driver quantum pays one
  // second), so it never dies — recovery can't help. The speculative
  // engine's coordinator notices the straggling task via the progress
  // counters in the status poll, races a replica on worker 0, and the
  // replica wins. Its liveness tracker never sees heartbeats (passive),
  // so the stalled worker stays "alive" throughout — exactly the
  // straggler-not-failure regime speculation exists for.
  bool spec_ok = false;
  {
    EngineOptions spec_options;
    spec_options.cluster.mode = ClusterMode::kProcess;
    spec_options.cluster.remote_workers = addresses;
    spec_options.cluster.heartbeat_timeout_micros = 60'000'000;
    spec_options.cluster.max_speculative_tasks = 4;
    spec_options.cluster.speculation_min_stall_micros = 250'000;
    spec_options.cluster.speculation_interval_micros = 25'000;
    auto speculative = std::make_unique<PrestoEngine>(std::move(spec_options));
    speculative->catalog().Register(
        std::make_shared<TpchConnector>("tpch", kScale));
    speculative->catalog().SetDefault("tpch");

    (void)workers[1]->WriteLine("arm_stall_micros=1000000");
    auto raced = speculative->ExecuteAndFetch(spec_sql);
    (void)workers[1]->WriteLine("arm_stall_micros=0");
    long long speculations =
        speculative->metrics()
            .RegisterCounter("presto_task_speculations_total", "",
                             {{"trace_instant", "task_speculate"}})
            ->value();
    long long wins =
        speculative->metrics()
            .RegisterCounter("presto_speculation_wins_total", "",
                             {{"trace_instant", "speculation_win"}})
            ->value();
    printf("SPECULATIONS=%lld\n", speculations);
    printf("SPECULATION_WINS=%lld\n", wins);
    bool matches = raced.ok() &&
                   SortedRows(*raced) == SortedRows(spec_reference);
    if (!raced.ok()) {
      fprintf(stderr, "speculated query: %s\n",
              raced.status().ToString().c_str());
    }
    printf("SPECULATION_MATCHES_LOCAL=%d\n", matches ? 1 : 0);

    // The aborted original drains once its in-flight stalled quantum
    // finishes; insist every byte is gone before moving on.
    auto drain_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(15);
    long long leaked_buffers = -1;
    long long leaked_retained = -1;
    while (std::chrono::steady_clock::now() < drain_deadline) {
      leaked_buffers = speculative->cluster().exchange().TotalBufferedBytes() +
                       speculative->cluster().exchange().TotalInflightBytes();
      leaked_retained = speculative->cluster().exchange().TotalRetainedBytes();
      if (leaked_buffers == 0 && leaked_retained == 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    printf("SPECULATION_BUFFERS_LEAKED=%lld\n", leaked_buffers);
    printf("SPECULATION_RETAINED_LEAKED=%lld\n", leaked_retained);
    spec_ok = matches && speculations >= 1 && wins >= 1 &&
              leaked_buffers == 0 && leaked_retained == 0;
  }

  // Task retry (ISSUE 7): kill -9 a worker mid-query. The coordinator's
  // recovery manager re-creates its tasks on the survivor, replays their
  // split journal, re-points the exchange consumers, and the query
  // SUCCEEDS — a dead worker costs latency, not the query.
  auto disturbed = engine->Execute(kill_sql);
  if (!disturbed.ok()) {
    fprintf(stderr, "kill query: %s\n",
            disturbed.status().ToString().c_str());
    return 1;
  }
  workers[1]->Kill();
  workers[1]->Wait();
  auto start = std::chrono::steady_clock::now();
  auto recovered = disturbed->FetchAllRows();
  auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  printf("KILL_RECOVERED=%d\n", recovered.ok() ? 1 : 0);
  if (!recovered.ok()) {
    fprintf(stderr, "recovery: %s\n", recovered.status().ToString().c_str());
  }
  printf("RECOVERED_MATCHES_LOCAL=%d\n",
         recovered.ok() && SortedRows(*recovered) == SortedRows(kill_reference)
             ? 1
             : 0);
  printf("TASK_RETRIES=%lld\n",
         static_cast<long long>(
             engine->metrics()
                 .RegisterCounter("presto_task_retries_total", "",
                                  {{"trace_instant", "task_recovery"}})
                 ->value()));
  printf("RECOVERY_MICROS=%lld\n", static_cast<long long>(micros));

  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline &&
         engine->cluster().liveness().IsAlive(1)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  printf("ALIVE_AFTER_KILL=%d\n",
         static_cast<int>(engine->cluster().liveness().AliveCount(2)));
  printf("BUFFERS_LEAKED=%lld\n",
         static_cast<long long>(
             engine->cluster().exchange().TotalBufferedBytes() +
             engine->cluster().exchange().TotalInflightBytes()));
  printf("RETAINED_LEAKED=%lld\n",
         static_cast<long long>(
             engine->cluster().exchange().TotalRetainedBytes()));

  // The fault-tolerance envelope is opt-out: with max_task_retries=0 the
  // same dead worker fails the query cleanly (the PR-6 detection
  // contract), instead of hanging or silently shrinking the result.
  bool no_retry_failed = false;
  {
    auto strict = MakeEngine(addresses, /*max_task_retries=*/0);
    Status status = strict->ExecuteAndFetch(kill_sql).status();
    no_retry_failed = !status.ok();
    if (status.ok()) {
      fprintf(stderr, "no-retry engine unexpectedly succeeded\n");
    }
  }
  printf("NO_RETRY_FAILED=%d\n", no_retry_failed ? 1 : 0);

  return recovered.ok() && no_retry_failed && spec_ok ? 0 : 1;
}
