// Observability: distributed tracing + the HTTP observability plane.
//
// Runs a TPC-H-style distributed join over the real HTTP exchange
// transport, then exposes the engine's /v1 endpoints:
//
//   GET /v1/metrics           Prometheus text exposition
//   GET /v1/query             all tracked queries (JSON)
//   GET /v1/query/{id}        one query's lifecycle + stats (JSON)
//   GET /v1/query/{id}/trace  Chrome trace JSON -> load in ui.perfetto.dev
//
// Build & run:
//   cmake -B build && cmake --build build
//   ./build/examples/observability 60   # serve the endpoints for 60s
//   curl localhost:$PORT/v1/metrics
//
// With no argument it prints the trace timeline and exits (CI smoke mode
// passes a duration and curls the printed PORT).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "connectors/tpch/tpch_connector.h"
#include "engine/engine.h"

using namespace presto;  // NOLINT

int main(int argc, char** argv) {
  int serve_seconds = argc > 1 ? std::atoi(argv[1]) : 0;

  // Real localhost-socket shuffle, so the trace includes HTTP fetch/serve
  // spans with cross-worker trace-context propagation.
  EngineOptions options;
  options.cluster.num_workers = 2;
  options.cluster.executor.threads = 2;
  options.cluster.network.transport = TransportMode::kHttp;
  PrestoEngine engine(options);
  engine.catalog().Register(std::make_shared<TpchConnector>("tpch", 0.01));
  engine.catalog().SetDefault("tpch");

  // The observability plane serves scrapes while queries run.
  if (!engine.StartObservability().ok()) {
    std::fprintf(stderr, "failed to start observability server\n");
    return 1;
  }
  std::printf("PORT=%d\n", engine.observability_port());

  auto result = engine.Execute(
      "SELECT c.mktsegment, count(*) AS orders FROM orders o "
      "JOIN customer c ON o.custkey = c.custkey GROUP BY c.mktsegment");
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  auto rows = result->FetchAllRows();
  if (!rows.ok()) {
    std::fprintf(stderr, "%s\n", rows.status().ToString().c_str());
    return 1;
  }
  std::printf("QUERY_ID=%s\n", result->query_id().c_str());
  std::printf("rows=%zu\n", rows->size());

  // EXPLAIN ANALYZE VERBOSE appends the compact trace timeline.
  auto analyzed = engine.ExplainAnalyze(
      "EXPLAIN ANALYZE VERBOSE SELECT orderstatus, count(*) FROM orders "
      "GROUP BY orderstatus");
  if (analyzed.ok()) std::printf("%s\n", analyzed->c_str());

  std::fflush(stdout);
  if (serve_seconds > 0) {
    // Smoke/CI mode: keep serving so an external curl can hit /v1/*.
    std::this_thread::sleep_for(std::chrono::seconds(serve_seconds));
  } else {
    auto trace = engine.QueryTraceJson(result->query_id());
    if (trace.ok()) {
      std::printf("trace JSON: %zu bytes (load in ui.perfetto.dev)\n",
                  trace->size());
    }
  }
  return 0;
}
