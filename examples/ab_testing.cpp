// A/B Testing (§II-C): interactive slice-and-dice over experiment data
// stored in Raptor. Both tables are bucketed on the same key, so "almost
// every query requires a large join" executes as a co-located join with no
// shuffle at all (§IV-C3).
//
//   ./build/examples/ab_testing

#include <cstdio>

#include "common/random.h"
#include "common/stopwatch.h"
#include "connectors/raptor/raptor_connector.h"
#include "engine/engine.h"
#include "vector/block_builder.h"

using namespace presto;  // NOLINT

int main() {
  EngineOptions options;
  options.cluster.num_workers = 4;
  PrestoEngine engine(options);

  auto raptor = std::make_shared<RaptorConnector>("raptor");
  const int kBuckets = 16;
  const int64_t kUsers = 20000;
  Random rng(42);

  // assignments(userkey, experiment, variant): which arm each user is in.
  {
    RowSchema schema;
    schema.Add("userkey", TypeKind::kBigint);
    schema.Add("experiment", TypeKind::kVarchar);
    schema.Add("variant", TypeKind::kVarchar);
    raptor->CreateTable("assignments", schema, "userkey", kBuckets);
    std::vector<int64_t> users;
    std::vector<std::string> experiments, variants;
    for (int64_t u = 0; u < kUsers; ++u) {
      users.push_back(u);
      experiments.push_back("new_feed_ranker");
      variants.push_back(rng.NextBool(0.5) ? "test" : "control");
    }
    raptor->LoadTable("assignments",
                      {Page({MakeBigintBlock(users),
                             MakeVarcharBlock(experiments),
                             MakeVarcharBlock(variants)})});
  }
  // events(userkey, metric, value, country): behavioral metrics per user.
  {
    RowSchema schema;
    schema.Add("userkey", TypeKind::kBigint);
    schema.Add("metric", TypeKind::kVarchar);
    schema.Add("value", TypeKind::kDouble);
    schema.Add("country", TypeKind::kVarchar);
    raptor->CreateTable("events", schema, "userkey", kBuckets);
    const char* metrics[] = {"time_spent", "likes", "comments"};
    const char* countries[] = {"us", "br", "in", "jp", "fr"};
    std::vector<int64_t> users;
    std::vector<std::string> metric, country;
    std::vector<double> value;
    for (int64_t e = 0; e < kUsers * 5; ++e) {
      int64_t u = rng.NextUint64(static_cast<uint64_t>(kUsers));
      users.push_back(u);
      metric.push_back(metrics[rng.NextUint64(3)]);
      // The "test" arm gets a small lift via user parity (synthetic).
      double lift = (u % 2 == 0) ? 1.05 : 1.0;
      value.push_back(rng.NextDouble() * 100.0 * lift);
      country.push_back(countries[rng.NextUint64(5)]);
    }
    raptor->LoadTable("events",
                      {Page({MakeBigintBlock(users), MakeVarcharBlock(metric),
                             MakeDoubleBlock(value),
                             MakeVarcharBlock(country)})});
  }
  engine.catalog().Register(raptor);
  engine.catalog().SetDefault("raptor");

  // The canonical A/B query: join assignments to events, compare arms.
  const char* sql =
      "SELECT a.variant, e.metric, count(*) AS n, avg(e.value) AS mean "
      "FROM events e JOIN assignments a ON e.userkey = a.userkey "
      "WHERE a.experiment = 'new_feed_ranker' "
      "GROUP BY a.variant, e.metric ORDER BY e.metric, a.variant";

  auto plan = engine.Explain(sql);
  if (plan.ok()) {
    bool colocated = plan->find("dist=colocated") != std::string::npos;
    std::printf("join strategy: %s\n",
                colocated ? "co-located (no shuffle)" : "shuffled");
  }
  Stopwatch watch;
  auto rows = engine.ExecuteAndFetch(sql);
  if (!rows.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 rows.status().ToString().c_str());
    return 1;
  }
  std::printf("results in %.1f ms:\n%-10s %-12s %8s %10s\n",
              static_cast<double>(watch.ElapsedMicros()) / 1000.0, "variant",
              "metric", "n", "mean");
  for (const auto& row : *rows) {
    std::printf("%-10s %-12s %8lld %10.3f\n", row[0].AsVarchar().c_str(),
                row[1].AsVarchar().c_str(),
                static_cast<long long>(row[2].AsBigint()),
                row[3].AsDouble());
  }

  // Slice by country at interactive latency (the "arbitrary slice and
  // dice" requirement).
  auto slice = engine.ExecuteAndFetch(
      "SELECT e.country, a.variant, avg(e.value) FROM events e "
      "JOIN assignments a ON e.userkey = a.userkey "
      "WHERE e.metric = 'time_spent' GROUP BY e.country, a.variant "
      "ORDER BY e.country, a.variant");
  if (slice.ok()) {
    std::printf("\nper-country time_spent (%zu slices)\n", slice->size());
  }
  return 0;
}
