// Query observability tour: run SQL, then inspect what the engine saw —
// per-query lifecycle info, per-operator runtime stats, EXPLAIN ANALYZE,
// event listeners, and the Prometheus-style metrics endpoint.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/query_stats

#include <cstdio>
#include <memory>

#include "connectors/tpch/tpch_connector.h"
#include "engine/engine.h"

using namespace presto;  // NOLINT

namespace {

// A minimal event listener: the embedded analogue of Presto's event
// listener plugin, e.g. for shipping query telemetry to a warehouse.
class LoggingListener : public EventListener {
 public:
  void QueryCreated(const QueryCreatedEvent& event) override {
    std::printf("[listener] created   %s: %s\n", event.query_id.c_str(),
                event.sql.c_str());
  }
  void QueryCompleted(const QueryCompletedEvent& event) override {
    std::printf("[listener] completed %s: %s, %s\n", event.query_id.c_str(),
                event.final_status.ok() ? "OK" : "FAILED",
                event.stats.Summary().c_str());
  }
};

}  // namespace

int main() {
  EngineOptions options;
  options.cluster.num_workers = 4;
  PrestoEngine engine(options);
  engine.catalog().Register(
      std::make_shared<TpchConnector>("tpch", /*scale=*/0.5));
  engine.AddEventListener(std::make_shared<LoggingListener>());

  // 1. Run a query and fetch its lifecycle record by query id.
  auto result = engine.Execute(
      "SELECT n.name, count(*) AS orders FROM tpch.orders o "
      "JOIN tpch.customer c ON o.custkey = c.custkey "
      "JOIN tpch.nation n ON c.nationkey = n.nationkey "
      "GROUP BY n.name ORDER BY orders DESC LIMIT 5");
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::string query_id = result->query_id();
  auto rows = result->FetchAllRows();
  if (!rows.ok()) {
    std::fprintf(stderr, "fetch failed: %s\n",
                 rows.status().ToString().c_str());
    return 1;
  }

  auto info = engine.QueryInfoFor(query_id);
  if (!info.ok()) return 1;
  std::printf("\n-- QueryInfo for %s --\n", query_id.c_str());
  std::printf("state:      %s\n", QueryStateToString(info->state));
  std::printf("planning:   %s\n", FormatNanos(info->planning_nanos).c_str());
  std::printf("queued:     %s\n", FormatNanos(info->queued_nanos).c_str());
  std::printf("execution:  %s\n", FormatNanos(info->execution_nanos).c_str());
  std::printf("summary:    %s\n", info->stats.Summary().c_str());
  std::printf("tasks per fragment:");
  for (const auto& [fragment, tasks] : info->fragment_task_counts) {
    std::printf("  f%d=%d", fragment, tasks);
  }
  std::printf("\n\nper-operator breakdown:\n");
  for (const auto& op : info->stats.MergedOperators()) {
    std::printf("  %s\n", op.ToString().c_str());
  }

  // 2. EXPLAIN ANALYZE: the fragmented plan annotated with actual runtime
  //    stats next to the optimizer's estimates.
  auto annotated = engine.ExplainAnalyze(
      "SELECT orderpriority, count(*) FROM tpch.orders "
      "GROUP BY orderpriority");
  if (!annotated.ok()) return 1;
  std::printf("\n-- EXPLAIN ANALYZE --\n%s", annotated->c_str());

  // 3. The engine-wide metrics registry, Prometheus text format.
  std::printf("\n-- /metrics --\n%s", engine.metrics().RenderText().c_str());
  return 0;
}
