// Federated querying (§I, §II): one SQL statement joining a Hive-style
// warehouse, a sharded operational row store, and the TPC-H generator —
// three connectors, one query, no ETL.
//
//   ./build/examples/federated_query

#include <cstdio>

#include "connector/scan_util.h"
#include "connectors/hive/hive_connector.h"
#include "connectors/shardedstore/sharded_store.h"
#include "connectors/tpch/tpch_connector.h"
#include "engine/engine.h"
#include "vector/block_builder.h"

using namespace presto;  // NOLINT

int main() {
  EngineOptions options;
  options.cluster.num_workers = 4;
  PrestoEngine engine(options);

  // Catalog 1: the TPC-H generator ("production data store").
  auto tpch = std::make_shared<TpchConnector>("tpch", 0.5);
  engine.catalog().Register(tpch);

  // Catalog 2: the warehouse — orders copied into hive's remote DFS.
  auto hive = std::make_shared<HiveConnector>("hive");
  {
    auto pages = ReadAllPages(tpch.get(), "orders");
    if (!pages.ok()) return 1;
    RowSchema schema = (*tpch->metadata().GetTable("orders"))->schema();
    hive->CreateTable("orders", schema);
    hive->LoadTable("orders", *pages);
    hive->AnalyzeTable("orders");
  }
  engine.catalog().Register(hive);

  // Catalog 3: a sharded MySQL-style store with per-customer attributes.
  auto mysql = std::make_shared<ShardedStoreConnector>("mysql");
  {
    RowSchema schema;
    schema.Add("custkey", TypeKind::kBigint);
    schema.Add("tier", TypeKind::kVarchar);
    mysql->CreateTable("customer_tiers", schema, "custkey", {"custkey"});
    std::vector<int64_t> keys;
    std::vector<std::string> tiers;
    const char* names[] = {"bronze", "silver", "gold"};
    for (int64_t k = 0; k < 750; ++k) {
      keys.push_back(k);
      tiers.push_back(names[k % 3]);
    }
    mysql->LoadTable("customer_tiers",
                     {Page({MakeBigintBlock(keys), MakeVarcharBlock(tiers)})});
  }
  engine.catalog().Register(mysql);

  const char* sql =
      "SELECT t.tier, count(*) AS orders, avg(o.totalprice) AS avg_price "
      "FROM hive.orders o "
      "JOIN mysql.customer_tiers t ON o.custkey = t.custkey "
      "JOIN tpch.customer c ON o.custkey = c.custkey "
      "WHERE c.acctbal > 0 "
      "GROUP BY t.tier ORDER BY orders DESC";

  auto plan = engine.Explain(sql);
  if (plan.ok()) std::printf("-- distributed plan --\n%s\n", plan->c_str());

  auto rows = engine.ExecuteAndFetch(sql);
  if (!rows.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 rows.status().ToString().c_str());
    return 1;
  }
  std::printf("%-8s %8s %10s\n", "tier", "orders", "avg_price");
  for (const auto& row : *rows) {
    std::printf("%-8s %8lld %10.2f\n", row[0].AsVarchar().c_str(),
                static_cast<long long>(row[1].AsBigint()),
                row[2].AsDouble());
  }
  return 0;
}
