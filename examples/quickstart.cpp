// Quickstart: embed the engine, register an in-memory table, run SQL.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "connectors/memcon/memory_connector.h"
#include "engine/engine.h"

using namespace presto;  // NOLINT

int main() {
  // 1. Start an embedded "cluster": 1 coordinator + 4 simulated workers.
  EngineOptions options;
  options.cluster.num_workers = 4;
  PrestoEngine engine(options);

  // 2. Register a catalog. The memory connector is the simplest one; the
  //    same Connector API backs hive, raptor, mysql, and tpch.
  auto memory = std::make_shared<MemoryConnector>("memory");
  RowSchema schema;
  schema.Add("city", TypeKind::kVarchar);
  schema.Add("temp", TypeKind::kDouble);
  schema.Add("day", TypeKind::kBigint);
  std::vector<std::string> cities;
  std::vector<double> temps;
  std::vector<int64_t> days;
  const char* names[] = {"lisbon", "oslo", "tokyo", "lima"};
  for (int64_t i = 0; i < 365 * 4; ++i) {
    cities.push_back(names[i % 4]);
    temps.push_back(10.0 + static_cast<double>((i * 37) % 25) -
                    (i % 4 == 1 ? 8.0 : 0.0));
    days.push_back(i / 4);
  }
  memory->CreateTable("weather", schema,
                      {Page({MakeVarcharBlock(cities), MakeDoubleBlock(temps),
                             MakeBigintBlock(days)})});
  engine.catalog().Register(memory);

  // 3. Run SQL. Results stream back as pages.
  auto rows = engine.ExecuteAndFetch(
      "SELECT city, count(*) AS days, avg(temp) AS avg_temp, max(temp) "
      "FROM weather WHERE temp > 12 GROUP BY city ORDER BY avg_temp DESC");
  if (!rows.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 rows.status().ToString().c_str());
    return 1;
  }
  std::printf("%-10s %6s %10s %8s\n", "city", "days", "avg_temp", "max");
  for (const auto& row : *rows) {
    std::printf("%-10s %6lld %10.2f %8.1f\n",
                row[0].AsVarchar().c_str(),
                static_cast<long long>(row[1].AsBigint()),
                row[2].AsDouble(), row[3].AsDouble());
  }

  // 4. EXPLAIN shows the distributed plan: stages, shuffles, pushdowns.
  auto plan = engine.Explain(
      "SELECT city, avg(temp) FROM weather GROUP BY city");
  if (plan.ok()) {
    std::printf("\n-- distributed plan --\n%s", plan->c_str());
  }
  return 0;
}
