// Interactive Analytics (§II-A): exploratory queries over the warehouse —
// short one-off aggregations, early LIMIT cancellation, and EXPLAIN-driven
// inspection, mirroring how Facebook engineers "examine small amounts of
// data, test hypotheses, and build visualizations".
//
//   ./build/examples/interactive_analytics

#include <cstdio>

#include "common/stopwatch.h"
#include "connector/scan_util.h"
#include "connectors/hive/hive_connector.h"
#include "connectors/tpch/tpch_connector.h"
#include "engine/engine.h"

using namespace presto;  // NOLINT

int main() {
  EngineOptions options;
  options.cluster.num_workers = 4;
  PrestoEngine engine(options);

  auto tpch = std::make_shared<TpchConnector>("tpch", 1.0);
  auto hive = std::make_shared<HiveConnector>("hive");
  for (const char* table : {"orders", "lineitem", "customer", "nation"}) {
    auto pages = ReadAllPages(tpch.get(), table);
    if (!pages.ok()) return 1;
    RowSchema schema = (*tpch->metadata().GetTable(table))->schema();
    hive->CreateTable(table, schema);
    hive->LoadTable(table, *pages);
    hive->AnalyzeTable(table);  // interactive clusters keep stats fresh
  }
  engine.catalog().Register(hive);
  engine.catalog().SetDefault("hive");

  const char* dashboard[] = {
      // Daily revenue trend.
      "SELECT orderdate, sum(totalprice) AS revenue FROM orders "
      "WHERE orderdate >= DATE '1995-01-01' AND orderdate < DATE "
      "'1995-02-01' GROUP BY orderdate ORDER BY orderdate",
      // Top customers by spend.
      "SELECT c.name, sum(o.totalprice) AS spend FROM customer c "
      "JOIN orders o ON c.custkey = o.custkey "
      "GROUP BY c.name ORDER BY spend DESC LIMIT 10",
      // Return rates by ship mode.
      "SELECT shipmode, count(*) AS lines, "
      "sum(CASE WHEN returnflag = 'R' THEN 1 ELSE 0 END) AS returns "
      "FROM lineitem GROUP BY shipmode ORDER BY lines DESC",
      // Market segments per nation (joins + group by).
      "SELECT n.name, c.mktsegment, count(*) FROM customer c "
      "JOIN nation n ON c.nationkey = n.nationkey "
      "GROUP BY n.name, c.mktsegment ORDER BY 3 DESC LIMIT 15",
  };

  for (const char* sql : dashboard) {
    Stopwatch watch;
    auto rows = engine.ExecuteAndFetch(sql);
    if (!rows.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   rows.status().ToString().c_str());
      return 1;
    }
    std::printf("[%6.1f ms, %3zu rows] %.72s...\n",
                static_cast<double>(watch.ElapsedMicros()) / 1000.0,
                rows->size(), sql);
  }

  // Exploratory pattern: fetch one page, then abandon the query — the
  // engine cancels the still-running upstream stages (§IV-D3: "queries are
  // often canceled ... or use LIMIT").
  {
    Stopwatch watch;
    auto result = engine.Execute("SELECT * FROM lineitem");
    if (!result.ok()) return 1;
    auto first = result->Next();
    if (first.ok() && first->has_value()) {
      std::printf("[%6.1f ms] peeked %lld rows of SELECT *, cancelling\n",
                  static_cast<double>(watch.ElapsedMicros()) / 1000.0,
                  static_cast<long long>((*first)->num_rows()));
    }
    result->Cancel();
  }
  return 0;
}
