// Batch ETL (§II-B): a CREATE TABLE AS pipeline that transforms and joins
// warehouse data into a derived table, exercising distributed writes with
// adaptive writer scaling (§IV-E3) and phased scheduling (§IV-D1).
//
//   ./build/examples/batch_etl

#include <cstdio>

#include "common/stopwatch.h"
#include "connector/scan_util.h"
#include "connectors/hive/hive_connector.h"
#include "connectors/tpch/tpch_connector.h"
#include "engine/engine.h"

using namespace presto;  // NOLINT

int main() {
  EngineOptions options;
  options.cluster.num_workers = 4;
  // ETL queries favor throughput and memory efficiency over latency:
  // phased scheduling defers probe-side scans until join builds finish.
  options.cluster.phased_scheduling = true;
  PrestoEngine engine(options);

  auto tpch = std::make_shared<TpchConnector>("tpch", 1.0);
  engine.catalog().Register(tpch);
  auto hive = std::make_shared<HiveConnector>("hive");
  for (const char* table : {"orders", "lineitem"}) {
    auto pages = ReadAllPages(tpch.get(), table);
    if (!pages.ok()) return 1;
    RowSchema schema = (*tpch->metadata().GetTable(table))->schema();
    hive->CreateTable(table, schema);
    hive->LoadTable(table, *pages);
    hive->AnalyzeTable(table);
  }
  engine.catalog().Register(hive);
  engine.catalog().SetDefault("hive");

  // The ETL job: denormalize order revenue into a reporting table.
  const char* ctas =
      "CREATE TABLE hive.order_revenue AS "
      "SELECT o.orderkey, o.orderdate, o.orderpriority, "
      "       sum(l.extendedprice * (1 - l.discount)) AS revenue, "
      "       sum(l.quantity) AS total_qty "
      "FROM orders o JOIN lineitem l ON o.orderkey = l.orderkey "
      "WHERE o.orderstatus <> 'P' "
      "GROUP BY o.orderkey, o.orderdate, o.orderpriority";

  Stopwatch watch;
  auto result = engine.Execute(ctas);
  if (!result.ok()) {
    std::fprintf(stderr, "ETL failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  auto rows = result->FetchAllRows();
  if (!rows.ok()) {
    std::fprintf(stderr, "ETL failed: %s\n", rows.status().ToString().c_str());
    return 1;
  }
  std::printf("wrote %lld rows in %.1f ms\n",
              static_cast<long long>((*rows)[0][0].AsBigint()),
              static_cast<double>(watch.ElapsedMicros()) / 1000.0);

  // Downstream consumers read the derived table like any other.
  auto check = engine.ExecuteAndFetch(
      "SELECT orderpriority, count(*) AS orders, sum(revenue) AS revenue "
      "FROM hive.order_revenue GROUP BY orderpriority ORDER BY revenue DESC");
  if (!check.ok()) {
    std::fprintf(stderr, "verification failed: %s\n",
                 check.status().ToString().c_str());
    return 1;
  }
  std::printf("%-18s %8s %14s\n", "priority", "orders", "revenue");
  for (const auto& row : *check) {
    std::printf("%-18s %8lld %14.2f\n", row[0].AsVarchar().c_str(),
                static_cast<long long>(row[1].AsBigint()),
                row[2].AsDouble());
  }
  return 0;
}
