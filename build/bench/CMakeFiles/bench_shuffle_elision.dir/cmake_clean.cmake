file(REMOVE_RECURSE
  "CMakeFiles/bench_shuffle_elision.dir/bench_shuffle_elision.cc.o"
  "CMakeFiles/bench_shuffle_elision.dir/bench_shuffle_elision.cc.o.d"
  "bench_shuffle_elision"
  "bench_shuffle_elision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shuffle_elision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
