# Empty dependencies file for bench_shuffle_elision.
# This may be replaced when dependencies are built.
