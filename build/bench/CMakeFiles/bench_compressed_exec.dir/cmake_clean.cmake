file(REMOVE_RECURSE
  "CMakeFiles/bench_compressed_exec.dir/bench_compressed_exec.cc.o"
  "CMakeFiles/bench_compressed_exec.dir/bench_compressed_exec.cc.o.d"
  "bench_compressed_exec"
  "bench_compressed_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compressed_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
