# Empty dependencies file for bench_compressed_exec.
# This may be replaced when dependencies are built.
