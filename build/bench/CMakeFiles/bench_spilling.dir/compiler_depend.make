# Empty compiler generated dependencies file for bench_spilling.
# This may be replaced when dependencies are built.
