# Empty dependencies file for bench_fig8_multitenancy.
# This may be replaced when dependencies are built.
