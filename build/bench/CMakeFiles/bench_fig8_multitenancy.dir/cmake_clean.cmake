file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_multitenancy.dir/bench_fig8_multitenancy.cc.o"
  "CMakeFiles/bench_fig8_multitenancy.dir/bench_fig8_multitenancy.cc.o.d"
  "bench_fig8_multitenancy"
  "bench_fig8_multitenancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_multitenancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
