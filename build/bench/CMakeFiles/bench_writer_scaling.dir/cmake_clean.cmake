file(REMOVE_RECURSE
  "CMakeFiles/bench_writer_scaling.dir/bench_writer_scaling.cc.o"
  "CMakeFiles/bench_writer_scaling.dir/bench_writer_scaling.cc.o.d"
  "bench_writer_scaling"
  "bench_writer_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_writer_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
