file(REMOVE_RECURSE
  "CMakeFiles/bench_split_scheduling.dir/bench_split_scheduling.cc.o"
  "CMakeFiles/bench_split_scheduling.dir/bench_split_scheduling.cc.o.d"
  "bench_split_scheduling"
  "bench_split_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_split_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
