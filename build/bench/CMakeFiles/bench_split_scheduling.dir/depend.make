# Empty dependencies file for bench_split_scheduling.
# This may be replaced when dependencies are built.
