file(REMOVE_RECURSE
  "CMakeFiles/bench_lazy_loading.dir/bench_lazy_loading.cc.o"
  "CMakeFiles/bench_lazy_loading.dir/bench_lazy_loading.cc.o.d"
  "bench_lazy_loading"
  "bench_lazy_loading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lazy_loading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
