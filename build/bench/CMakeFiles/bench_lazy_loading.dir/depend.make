# Empty dependencies file for bench_lazy_loading.
# This may be replaced when dependencies are built.
