# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;8;presto_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(types_test "/root/repo/build/tests/types_test")
set_tests_properties(types_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;9;presto_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(vector_test "/root/repo/build/tests/vector_test")
set_tests_properties(vector_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;10;presto_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(expr_test "/root/repo/build/tests/expr_test")
set_tests_properties(expr_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;11;presto_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sql_test "/root/repo/build/tests/sql_test")
set_tests_properties(sql_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;12;presto_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(plan_test "/root/repo/build/tests/plan_test")
set_tests_properties(plan_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;13;presto_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(engine_test "/root/repo/build/tests/engine_test")
set_tests_properties(engine_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;14;presto_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(connectors_test "/root/repo/build/tests/connectors_test")
set_tests_properties(connectors_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;15;presto_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;16;presto_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(runtime_test "/root/repo/build/tests/runtime_test")
set_tests_properties(runtime_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;17;presto_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(fragment_test "/root/repo/build/tests/fragment_test")
set_tests_properties(fragment_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;18;presto_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;19;presto_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(schedule_test "/root/repo/build/tests/schedule_test")
set_tests_properties(schedule_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;20;presto_add_test;/root/repo/tests/CMakeLists.txt;0;")
