file(REMOVE_RECURSE
  "CMakeFiles/batch_etl.dir/batch_etl.cpp.o"
  "CMakeFiles/batch_etl.dir/batch_etl.cpp.o.d"
  "batch_etl"
  "batch_etl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_etl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
