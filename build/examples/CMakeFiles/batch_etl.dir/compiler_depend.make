# Empty compiler generated dependencies file for batch_etl.
# This may be replaced when dependencies are built.
