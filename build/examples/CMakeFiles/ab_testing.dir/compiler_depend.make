# Empty compiler generated dependencies file for ab_testing.
# This may be replaced when dependencies are built.
