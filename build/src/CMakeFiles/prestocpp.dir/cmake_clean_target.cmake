file(REMOVE_RECURSE
  "libprestocpp.a"
)
