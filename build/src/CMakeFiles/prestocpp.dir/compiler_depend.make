# Empty compiler generated dependencies file for prestocpp.
# This may be replaced when dependencies are built.
