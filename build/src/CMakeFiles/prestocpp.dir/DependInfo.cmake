
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/status.cc" "src/CMakeFiles/prestocpp.dir/common/status.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_utils.cc" "src/CMakeFiles/prestocpp.dir/common/string_utils.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/common/string_utils.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/prestocpp.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/connector/connector.cc" "src/CMakeFiles/prestocpp.dir/connector/connector.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/connector/connector.cc.o.d"
  "/root/repo/src/connector/scan_util.cc" "src/CMakeFiles/prestocpp.dir/connector/scan_util.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/connector/scan_util.cc.o.d"
  "/root/repo/src/connectors/hive/hive_connector.cc" "src/CMakeFiles/prestocpp.dir/connectors/hive/hive_connector.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/connectors/hive/hive_connector.cc.o.d"
  "/root/repo/src/connectors/hive/minidfs.cc" "src/CMakeFiles/prestocpp.dir/connectors/hive/minidfs.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/connectors/hive/minidfs.cc.o.d"
  "/root/repo/src/connectors/hive/storc.cc" "src/CMakeFiles/prestocpp.dir/connectors/hive/storc.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/connectors/hive/storc.cc.o.d"
  "/root/repo/src/connectors/memcon/memory_connector.cc" "src/CMakeFiles/prestocpp.dir/connectors/memcon/memory_connector.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/connectors/memcon/memory_connector.cc.o.d"
  "/root/repo/src/connectors/raptor/raptor_connector.cc" "src/CMakeFiles/prestocpp.dir/connectors/raptor/raptor_connector.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/connectors/raptor/raptor_connector.cc.o.d"
  "/root/repo/src/connectors/shardedstore/sharded_store.cc" "src/CMakeFiles/prestocpp.dir/connectors/shardedstore/sharded_store.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/connectors/shardedstore/sharded_store.cc.o.d"
  "/root/repo/src/connectors/tpch/tpch_connector.cc" "src/CMakeFiles/prestocpp.dir/connectors/tpch/tpch_connector.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/connectors/tpch/tpch_connector.cc.o.d"
  "/root/repo/src/engine/engine.cc" "src/CMakeFiles/prestocpp.dir/engine/engine.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/engine/engine.cc.o.d"
  "/root/repo/src/engine/reference_executor.cc" "src/CMakeFiles/prestocpp.dir/engine/reference_executor.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/engine/reference_executor.cc.o.d"
  "/root/repo/src/exchange/exchange.cc" "src/CMakeFiles/prestocpp.dir/exchange/exchange.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/exchange/exchange.cc.o.d"
  "/root/repo/src/exec/driver.cc" "src/CMakeFiles/prestocpp.dir/exec/driver.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/exec/driver.cc.o.d"
  "/root/repo/src/exec/group_by_hash.cc" "src/CMakeFiles/prestocpp.dir/exec/group_by_hash.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/exec/group_by_hash.cc.o.d"
  "/root/repo/src/exec/operators_agg.cc" "src/CMakeFiles/prestocpp.dir/exec/operators_agg.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/exec/operators_agg.cc.o.d"
  "/root/repo/src/exec/operators_join.cc" "src/CMakeFiles/prestocpp.dir/exec/operators_join.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/exec/operators_join.cc.o.d"
  "/root/repo/src/exec/operators_sink.cc" "src/CMakeFiles/prestocpp.dir/exec/operators_sink.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/exec/operators_sink.cc.o.d"
  "/root/repo/src/exec/operators_sort.cc" "src/CMakeFiles/prestocpp.dir/exec/operators_sort.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/exec/operators_sort.cc.o.d"
  "/root/repo/src/exec/operators_source.cc" "src/CMakeFiles/prestocpp.dir/exec/operators_source.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/exec/operators_source.cc.o.d"
  "/root/repo/src/exec/pages_index.cc" "src/CMakeFiles/prestocpp.dir/exec/pages_index.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/exec/pages_index.cc.o.d"
  "/root/repo/src/exec/spiller.cc" "src/CMakeFiles/prestocpp.dir/exec/spiller.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/exec/spiller.cc.o.d"
  "/root/repo/src/exec/task.cc" "src/CMakeFiles/prestocpp.dir/exec/task.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/exec/task.cc.o.d"
  "/root/repo/src/expr/aggregates.cc" "src/CMakeFiles/prestocpp.dir/expr/aggregates.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/expr/aggregates.cc.o.d"
  "/root/repo/src/expr/evaluator.cc" "src/CMakeFiles/prestocpp.dir/expr/evaluator.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/expr/evaluator.cc.o.d"
  "/root/repo/src/expr/expression.cc" "src/CMakeFiles/prestocpp.dir/expr/expression.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/expr/expression.cc.o.d"
  "/root/repo/src/expr/function_registry.cc" "src/CMakeFiles/prestocpp.dir/expr/function_registry.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/expr/function_registry.cc.o.d"
  "/root/repo/src/expr/page_processor.cc" "src/CMakeFiles/prestocpp.dir/expr/page_processor.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/expr/page_processor.cc.o.d"
  "/root/repo/src/fragment/fragmenter.cc" "src/CMakeFiles/prestocpp.dir/fragment/fragmenter.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/fragment/fragmenter.cc.o.d"
  "/root/repo/src/memory/memory.cc" "src/CMakeFiles/prestocpp.dir/memory/memory.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/memory/memory.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/CMakeFiles/prestocpp.dir/optimizer/optimizer.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/optimizer/optimizer.cc.o.d"
  "/root/repo/src/optimizer/stats_estimator.cc" "src/CMakeFiles/prestocpp.dir/optimizer/stats_estimator.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/optimizer/stats_estimator.cc.o.d"
  "/root/repo/src/plan/plan_node.cc" "src/CMakeFiles/prestocpp.dir/plan/plan_node.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/plan/plan_node.cc.o.d"
  "/root/repo/src/plan/planner.cc" "src/CMakeFiles/prestocpp.dir/plan/planner.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/plan/planner.cc.o.d"
  "/root/repo/src/schedule/coordinator.cc" "src/CMakeFiles/prestocpp.dir/schedule/coordinator.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/schedule/coordinator.cc.o.d"
  "/root/repo/src/schedule/task_executor.cc" "src/CMakeFiles/prestocpp.dir/schedule/task_executor.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/schedule/task_executor.cc.o.d"
  "/root/repo/src/sql/analyzer.cc" "src/CMakeFiles/prestocpp.dir/sql/analyzer.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/sql/analyzer.cc.o.d"
  "/root/repo/src/sql/ast.cc" "src/CMakeFiles/prestocpp.dir/sql/ast.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/sql/ast.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/prestocpp.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/prestocpp.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/sql/parser.cc.o.d"
  "/root/repo/src/types/row_schema.cc" "src/CMakeFiles/prestocpp.dir/types/row_schema.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/types/row_schema.cc.o.d"
  "/root/repo/src/types/type.cc" "src/CMakeFiles/prestocpp.dir/types/type.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/types/type.cc.o.d"
  "/root/repo/src/types/value.cc" "src/CMakeFiles/prestocpp.dir/types/value.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/types/value.cc.o.d"
  "/root/repo/src/vector/block.cc" "src/CMakeFiles/prestocpp.dir/vector/block.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/vector/block.cc.o.d"
  "/root/repo/src/vector/block_builder.cc" "src/CMakeFiles/prestocpp.dir/vector/block_builder.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/vector/block_builder.cc.o.d"
  "/root/repo/src/vector/decoded_block.cc" "src/CMakeFiles/prestocpp.dir/vector/decoded_block.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/vector/decoded_block.cc.o.d"
  "/root/repo/src/vector/encoded_block.cc" "src/CMakeFiles/prestocpp.dir/vector/encoded_block.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/vector/encoded_block.cc.o.d"
  "/root/repo/src/vector/page.cc" "src/CMakeFiles/prestocpp.dir/vector/page.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/vector/page.cc.o.d"
  "/root/repo/src/vector/page_serde.cc" "src/CMakeFiles/prestocpp.dir/vector/page_serde.cc.o" "gcc" "src/CMakeFiles/prestocpp.dir/vector/page_serde.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
