#!/usr/bin/env python3
"""CI smoke check for the observability plane.

Usage: check_observability.py TRACE_JSON QUERIES_JSON METRICS_TXT

Validates that
  - the query trace is well-formed Chrome trace_event JSON with spans from
    all four engine layers, and every consumer-side http_fetch span carries
    the producer's trace id (x-presto-trace propagation);
  - /v1/query returned valid JSON;
  - /v1/metrics parses as Prometheus text exposition format, with HELP/TYPE
    announced before each family's samples.
"""

import json
import re
import sys


def check_trace(path):
    with open(path) as f:
        trace = json.load(f)
    events = trace["traceEvents"]
    assert events, "empty traceEvents"
    categories = {e.get("cat") for e in events if e.get("ph") != "M"}
    required = {"coordinator", "scheduler", "executor", "exchange"}
    missing = required - categories
    assert not missing, f"missing trace layers: {missing} (got {categories})"
    fetches = [e for e in events if e.get("name") == "http_fetch"]
    assert fetches, "no consumer-side http_fetch spans"
    for fetch in fetches:
        peer = fetch.get("args", {}).get("peer_trace")
        assert peer, f"http_fetch span without peer_trace: {fetch}"
    spans = [e for e in events if e.get("ph") == "X"]
    assert spans, "no complete (X) spans"
    for span in spans:
        assert span["dur"] >= 0 and "ts" in span, f"bad span: {span}"
    return len(events)


def check_metrics(path):
    sample = re.compile(
        r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? "
        r"[-+]?([0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|[Ii]nf|[Nn]a[Nn])$"
    )
    announced = set()
    count = 0
    with open(path) as f:
        for line in f:
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                announced.add(line.split(" ")[2])
                continue
            assert sample.match(line), f"bad sample line: {line!r}"
            name = re.match(r"[a-zA-Z_:][a-zA-Z0-9_:]*", line).group(0)
            family = re.sub(r"_(bucket|sum|count)$", "", name)
            assert name in announced or family in announced, (
                f"sample before HELP/TYPE announcement: {line!r}"
            )
            count += 1
    assert count > 0, "no metric samples"
    return count


def main():
    trace_path, queries_path, metrics_path = sys.argv[1:4]
    events = check_trace(trace_path)
    with open(queries_path) as f:
        queries = json.load(f)
    assert isinstance(queries, list) and queries, "empty /v1/query list"
    samples = check_metrics(metrics_path)
    print(
        f"OK: {events} trace events, {len(queries)} queries, "
        f"{samples} metric samples"
    )


if __name__ == "__main__":
    main()
