#!/usr/bin/env python3
"""CI smoke check for the planning-path caches (ISSUE 8).

Usage: check_planning.py BENCH_PLANNING_JSON

Validates BENCH_planning.json from bench_planning_qps:
  - warm (caches on) p99 planning latency beats cold (caches off) p99;
  - the plan-cache hit ratio of the repeated-query workload is > 0.9;
  - the staleness segment observed zero stale reads (every mutation
    invalidated the cached plan before the next query ran).
"""

import json
import sys


def load_samples(path):
    with open(path) as f:
        report = json.load(f)
    samples = {}
    for s in report["samples"]:
        samples[(s["label"], s["metric"])] = s["value"]
    return samples


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    samples = load_samples(sys.argv[1])

    cold_p99 = samples[("cold", "planning_p99")]
    warm_p99 = samples[("warm", "planning_p99")]
    hit_ratio = samples[("warm", "plan_cache_hit_ratio")]
    stale = samples[("staleness", "stale_reads")]

    assert warm_p99 < cold_p99, (
        f"warm p99 {warm_p99:.1f}us not better than cold p99 {cold_p99:.1f}us"
    )
    assert hit_ratio > 0.9, f"plan-cache hit ratio {hit_ratio:.3f} <= 0.9"
    assert stale == 0, f"{stale:.0f} stale reads after invalidation"

    print(
        f"planning OK: cold p99 {cold_p99:.1f}us -> warm p99 {warm_p99:.1f}us "
        f"({cold_p99 / warm_p99:.1f}x), hit ratio {hit_ratio:.3f}, "
        f"0 stale reads"
    )


if __name__ == "__main__":
    main()
