#!/usr/bin/env python3
"""CI smoke check for the out-of-process cluster.

Usage: check_cluster.py CLUSTER_LOG

Validates the KEY=VALUE output of examples/process_cluster:
  - both worker daemons heartbeated and were counted alive;
  - the distributed multi-fragment join produced rows identical to the
    in-process engine;
  - a worker's own /v1/metrics endpoint served the expected Prometheus
    families, the coordinator's federated /v1/cluster/metrics scraped both
    workers with relabeled samples, and the join query's merged Chrome
    trace held shipped spans from both worker processes with zero spans
    dropped (ISSUE 10);
  - with one worker deterministically stalled (not dead), the coordinator
    launched at least one speculative replica that won the race (ISSUE 9),
    the speculated result matched the in-process engine, and no exchange
    bytes were leaked by the aborted loser;
  - after kill -9 of a worker mid-query, the query SUCCEEDED via task
    retry (ISSUE 7) with rows identical to the in-process engine and at
    least one recorded retry, well within the recovery budget;
  - the liveness gauge dropped to one and no exchange buffers (live,
    inflight, or retained-for-replay) were leaked on the coordinator;
  - with retries disabled (max_task_retries=0) the dead worker still
    fails the query cleanly instead of hanging.
"""

import sys

RECOVERY_BUDGET_MICROS = 20_000_000


def parse(path):
    values = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if "=" in line:
                key, _, value = line.partition("=")
                values.setdefault(key, value)
    return values


def main():
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} CLUSTER_LOG", file=sys.stderr)
        return 2
    v = parse(sys.argv[1])

    required = [
        "WORKERS_ALIVE",
        "JOIN_ROWS",
        "JOIN_MATCHES_LOCAL",
        "WORKER_METRICS_OK",
        "CLUSTER_METRICS_WORKERS",
        "CLUSTER_METRICS_RELABELED",
        "TRACE_WORKER_PIDS",
        "TRACE_DROPPED",
        "SPECULATIONS",
        "SPECULATION_WINS",
        "SPECULATION_MATCHES_LOCAL",
        "SPECULATION_BUFFERS_LEAKED",
        "SPECULATION_RETAINED_LEAKED",
        "KILL_RECOVERED",
        "RECOVERED_MATCHES_LOCAL",
        "TASK_RETRIES",
        "RECOVERY_MICROS",
        "ALIVE_AFTER_KILL",
        "BUFFERS_LEAKED",
        "RETAINED_LEAKED",
        "NO_RETRY_FAILED",
    ]
    missing = [key for key in required if key not in v]
    assert not missing, f"missing markers: {missing}"

    assert v["WORKERS_ALIVE"] == "2", f"workers alive: {v['WORKERS_ALIVE']}"
    assert int(v["JOIN_ROWS"]) > 0, "distributed join returned no rows"
    assert v["JOIN_MATCHES_LOCAL"] == "1", "distributed != in-process result"

    assert v["WORKER_METRICS_OK"] == "1", (
        "worker /v1/metrics did not serve the expected families"
    )
    assert v["CLUSTER_METRICS_WORKERS"] == "2", (
        f"federated scrape covered {v['CLUSTER_METRICS_WORKERS']} workers, "
        f"want 2"
    )
    assert v["CLUSTER_METRICS_RELABELED"] == "1", (
        "federated exposition is missing worker-relabeled samples"
    )
    assert int(v["TRACE_WORKER_PIDS"]) >= 2, (
        f"merged Chrome trace has spans from {v['TRACE_WORKER_PIDS']} "
        f"worker pids, want >= 2"
    )
    assert v["TRACE_DROPPED"] == "0", (
        f"worker trace spans were dropped before shipping: "
        f"{v['TRACE_DROPPED']}"
    )

    assert int(v["SPECULATIONS"]) >= 1, (
        f"no speculative replica launched against the stalled worker, "
        f"got {v['SPECULATIONS']}"
    )
    assert int(v["SPECULATION_WINS"]) >= 1, (
        f"no speculative replica won its race, got {v['SPECULATION_WINS']}"
    )
    assert v["SPECULATION_MATCHES_LOCAL"] == "1", (
        "speculated result != in-process result"
    )
    assert v["SPECULATION_BUFFERS_LEAKED"] == "0", (
        f"speculation leaked exchange bytes: {v['SPECULATION_BUFFERS_LEAKED']}"
    )
    assert v["SPECULATION_RETAINED_LEAKED"] == "0", (
        f"speculation leaked replay-retention bytes: "
        f"{v['SPECULATION_RETAINED_LEAKED']}"
    )

    assert v["KILL_RECOVERED"] == "1", (
        "query did not survive a killed worker"
    )
    assert v["RECOVERED_MATCHES_LOCAL"] == "1", (
        "recovered result != in-process result"
    )
    assert int(v["TASK_RETRIES"]) >= 1, (
        f"expected at least one task retry, got {v['TASK_RETRIES']}"
    )
    recovery = int(v["RECOVERY_MICROS"])
    assert 0 <= recovery < RECOVERY_BUDGET_MICROS, (
        f"recovery took {recovery}us (budget {RECOVERY_BUDGET_MICROS})"
    )
    assert v["ALIVE_AFTER_KILL"] == "1", (
        f"liveness gauge after kill: {v['ALIVE_AFTER_KILL']}"
    )
    assert v["BUFFERS_LEAKED"] == "0", (
        f"leaked exchange bytes: {v['BUFFERS_LEAKED']}"
    )
    assert v["RETAINED_LEAKED"] == "0", (
        f"leaked replay-retention bytes: {v['RETAINED_LEAKED']}"
    )
    assert v["NO_RETRY_FAILED"] == "1", (
        "retry-disabled engine did not fail cleanly on a dead worker"
    )

    print(
        f"cluster smoke OK: join rows={v['JOIN_ROWS']}, metrics federated "
        f"from {v['CLUSTER_METRICS_WORKERS']} workers, trace spans from "
        f"{v['TRACE_WORKER_PIDS']} worker pids (0 dropped), "
        f"{v['SPECULATION_WINS']}/{v['SPECULATIONS']} speculation wins on a "
        f"stalled worker, kill -9 recovered "
        f"in {recovery / 1e6:.2f}s with {v['TASK_RETRIES']} retr"
        f"{'y' if v['TASK_RETRIES'] == '1' else 'ies'}, no leaks"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
