#!/usr/bin/env python3
"""CI smoke check for the out-of-process cluster.

Usage: check_cluster.py CLUSTER_LOG

Validates the KEY=VALUE output of examples/process_cluster:
  - both worker daemons heartbeated and were counted alive;
  - the distributed multi-fragment join produced rows identical to the
    in-process engine;
  - after kill -9 of a worker mid-query, the query failed cleanly (no
    hang) well within the detection budget, the liveness gauge dropped to
    one, and no exchange buffers were leaked on the coordinator.
"""

import sys

DETECTION_BUDGET_MICROS = 20_000_000


def parse(path):
    values = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if "=" in line:
                key, _, value = line.partition("=")
                values.setdefault(key, value)
    return values


def main():
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} CLUSTER_LOG", file=sys.stderr)
        return 2
    v = parse(sys.argv[1])

    required = [
        "WORKERS_ALIVE",
        "JOIN_ROWS",
        "JOIN_MATCHES_LOCAL",
        "KILL_DETECTED_MICROS",
        "KILL_STATUS",
        "ALIVE_AFTER_KILL",
        "BUFFERS_LEAKED",
    ]
    missing = [key for key in required if key not in v]
    assert not missing, f"missing markers: {missing}"

    assert v["WORKERS_ALIVE"] == "2", f"workers alive: {v['WORKERS_ALIVE']}"
    assert int(v["JOIN_ROWS"]) > 0, "distributed join returned no rows"
    assert v["JOIN_MATCHES_LOCAL"] == "1", "distributed != in-process result"

    detect = int(v["KILL_DETECTED_MICROS"])
    assert 0 <= detect < DETECTION_BUDGET_MICROS, (
        f"kill detection took {detect}us (budget {DETECTION_BUDGET_MICROS})"
    )
    assert v["KILL_STATUS"] != "unexpected-success", (
        "query survived a killed worker"
    )
    assert v["ALIVE_AFTER_KILL"] == "1", (
        f"liveness gauge after kill: {v['ALIVE_AFTER_KILL']}"
    )
    assert v["BUFFERS_LEAKED"] == "0", (
        f"leaked exchange bytes: {v['BUFFERS_LEAKED']}"
    )

    print(
        f"cluster smoke OK: join rows={v['JOIN_ROWS']}, "
        f"kill detected in {detect / 1e6:.2f}s, no leaks"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
